"""A full client/server analyst session over HTTP.

Run with::

    python examples/server_demo.py

Starts the ONEX HTTP server in-process (the demo's web backend), then
plays an analyst session through the JSON API exactly as the browser
front end would: load the MATTERS data, look at the overview pane, brush
a query, run the similarity search, and ask for threshold suggestions.
"""

import json
import urllib.request

from repro.server.http import OnexHttpServer


def call(url: str, op: str, **params):
    body = json.dumps({"op": op, "params": params}).encode()
    request = urllib.request.Request(
        f"{url}/api", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        payload = json.loads(response.read())
    if not payload["ok"]:
        raise RuntimeError(f"{op} failed: {payload['error']}")
    return payload["result"]


def main() -> None:
    with OnexHttpServer() as server:
        print(f"ONEX server listening on {server.url}")

        result = call(
            server.url,
            "load_dataset",
            source="matters",
            indicators=["GrowthRate"],  # the demo's "MATTERS GrowthRate"
            similarity_threshold=0.1,
            min_length=4,
            max_length=7,
            years=12,
            min_years=8,
        )
        print(f"\nLoaded {result['dataset']}: {result['series']} series, "
              f"{result['subsequences']} subsequences -> {result['groups']} groups "
              f"({result['compaction_ratio']:.1f}x) in {result['build_seconds']:.2f}s")

        overview = call(server.url, "overview", dataset="MATTERS-sim", limit=3)
        print("\nOverview pane (top groups by cardinality):")
        for entry in overview["groups"]:
            print(f"  group {tuple(entry['group'])}: cardinality "
                  f"{entry['cardinality']}, intensity {entry['intensity']:.2f}")

        preview = call(
            server.url,
            "query_preview",
            dataset="MATTERS-sim",
            series="MA/GrowthRate",
            start=0,
            length=6,
        )
        print(f"\nBrushed {preview['series']} -> {len(preview['selection'])} points")

        match = call(
            server.url,
            "best_match",
            dataset="MATTERS-sim",
            query={"series": "MA/GrowthRate", "start": 0, "length": 6},
        )
        print(f"Best match: {match['match_series']} at offset "
              f"{match['match_start']}, distance {match['distance']:.4f}, "
              f"{len(match['connectors'])} warped point pairs")

        suggestions = call(server.url, "thresholds", dataset="MATTERS-sim", length=6)
        print(f"\nThreshold suggestions: {suggestions['suggestions']}")
        print(f"Recommended default: {suggestions['default']:.4f}")

        health = json.loads(
            urllib.request.urlopen(f"{server.url}/health", timeout=30).read()
        )
        print(f"\nServer health: {health}")
    print("Server stopped.")


if __name__ == "__main__":
    main()
