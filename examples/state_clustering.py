"""Cluster the fifty states by growth-rate trajectory shape.

Run with::

    python examples/state_clustering.py

The overview pane's question turned inside out: instead of grouping
subsequences, cluster whole states by the DTW similarity of their
growth-rate series (variable lengths included — medoids make that
painless), then compare against the generator's planted regional
archetypes.
"""

from collections import Counter

from repro.analytics.kmedoids import kmedoids
from repro.data.matters import build_matters_collection
from repro.viz.ascii_chart import sparkline


def main() -> None:
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=20, min_years=12, seed=2013
    )
    states = [s for s in dataset]
    names = [s.metadata["state"] for s in states]
    truth = [s.metadata["cluster"] for s in states]

    result = kmedoids([s.values for s in states], 6, seed=7)
    print(f"k-medoids (k=6, normalised DTW) converged in "
          f"{result.iterations} iterations, objective {result.objective:.2f}\n")

    for c in range(result.k):
        members = result.cluster_members(c)
        medoid = states[result.medoid_indices[c]]
        member_states = [names[i] for i in members]
        dominant_truth = Counter(truth[i] for i in members).most_common(1)[0]
        print(f"cluster {c} (medoid {medoid.metadata['state']}, "
              f"{len(members)} states, dominant archetype "
              f"{dominant_truth[0]} x{dominant_truth[1]}):")
        print(f"  shape: {sparkline(medoid.values)}")
        print(f"  states: {', '.join(sorted(member_states))}\n")

    # Purity against the planted archetypes.
    pure = 0
    for c in range(result.k):
        members = result.cluster_members(c)
        if members:
            pure += Counter(truth[i] for i in members).most_common(1)[0][1]
    print(f"cluster purity vs planted archetypes: {pure}/{len(states)} "
          f"({100 * pure / len(states):.0f}%)")


if __name__ == "__main__":
    main()
