"""Quickstart: load a collection, build the ONEX base, run a query.

Run with::

    python examples/quickstart.py

Loads a slice of the simulated MATTERS panel, builds the ONEX base
server-side, and answers the demo's headline question — "which state has
the most similar economic growth rate to Massachusetts?" — printing the
matched pair as terminal charts.
"""

from repro import OnexEngine, QueryConfig, build_matters_collection
from repro.viz.ascii_chart import multi_line_chart, sparkline


def main() -> None:
    # The demo's "Data Loading into ONEX": one call preprocesses the
    # collection into similarity groups.
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=14, min_years=8, seed=7
    )
    engine = OnexEngine(QueryConfig(mode="fast", refine_groups=2))
    stats = engine.load_dataset(
        dataset, similarity_threshold=0.08, min_length=4, max_length=8
    )
    print(f"Loaded {len(dataset)} series from {dataset.name}")
    print(
        f"ONEX base: {stats.subsequences} subsequences -> {stats.groups} "
        f"groups ({stats.compaction_ratio:.1f}x compaction) "
        f"in {stats.build_seconds:.2f}s"
    )

    # Brush the most recent 6 years of MA's growth rate as the query.
    ma = dataset["MA/GrowthRate"]
    start = len(ma) - 6
    query = engine.query_from_series(dataset.name, "MA/GrowthRate", start, 6)
    print(f"\nQuery: MA/GrowthRate, last 6 years  {sparkline(ma.values[start:])}")

    # Best matches under DTW over the compact base.
    matches = engine.k_best_matches(dataset.name, query, 5)
    print("\nTop matches (normalised DTW):")
    for rank, match in enumerate(matches, start=1):
        values = engine.base(dataset.name).member_values(match.ref)
        print(
            f"  {rank}. {match.series_name:<18} start={match.start:<3} "
            f"len={match.length:<3} dist={match.distance:.4f}  "
            f"{sparkline(values)}"
        )

    others = [m for m in matches if m.series_name != "MA/GrowthRate"]
    best = others[0] if others else matches[0]
    best_values = engine.base(dataset.name).member_values(best.ref)
    query_values = engine.base(dataset.name).dataset.values(query)
    print(f"\nQuery (*) vs {best.series_name} (o):")
    print(multi_line_chart(query_values, best_values, width=48, height=10))


if __name__ == "__main__":
    main()
