"""Live stream monitoring under DTW with SPRING (reference [7]).

Run with::

    python examples/stream_monitoring.py

Simulates the monitoring deployment the paper's related work discusses:
a household's electricity readings arrive one sample at a time, and a
SPRING matcher watches for recurrences of a known habit pattern, firing
the moment a time-warped occurrence completes — without ever buffering
the stream or recomputing DTW from scratch.
"""

from repro.baselines.spring import SpringMatcher
from repro.data.electricity import build_electricity_collection
from repro.data.resample import detrend_moving_average
from repro.viz.ascii_chart import sparkline


def main() -> None:
    dataset = build_electricity_collection(households=1, seed=417)
    series = dataset["household-0"]
    length = series.metadata["pattern_length"]
    starts = series.metadata["pattern_starts"]

    # Detrend the yearly seasonal level so the habit's *shape* is the
    # signal (same preprocessing a deployment would stream through).
    values = detrend_moving_average(series.values, 45)

    template = values[starts[0] : starts[0] + length]
    print(f"Monitoring for a {length}-day habit pattern: {sparkline(template)}")
    print(f"Ground truth occurrences start on days {list(starts)}\n")

    matcher = SpringMatcher(template, epsilon=length * 2.0)
    for day, reading in enumerate(values):
        for match in matcher.append(float(reading)):
            planted = any(abs(match.start - s) <= length // 2 for s in starts)
            tag = "planted" if planted else "novel"
            print(
                f"day {day:>3}: match on days {match.start}-{match.end} "
                f"(DTW {match.distance:.1f}, {tag}) "
                f"{sparkline(values[match.start : match.end + 1])}"
            )
    for match in matcher.finish():
        print(
            f"end of stream: match on days {match.start}-{match.end} "
            f"(DTW {match.distance:.1f})"
        )
    print(f"\nProcessed {matcher.samples_seen} samples at "
          f"O(pattern length) work per sample.")


if __name__ == "__main__":
    main()
