"""Varying-parameter exploration and base persistence.

Run with::

    python examples/sensitivity_and_persistence.py

Demonstrates the two operational features around the core demo flow:
(1) §2's "showing the changes in the similarity between sequences for
varying parameters" — the match-count sensitivity profile with its
certain/possible bounds from the ED→DTW transfer inequality — and
(2) the server-side preprocessing artifact: saving a built ONEX base to
disk and reattaching it without re-clustering.
"""

import tempfile
import time
from pathlib import Path

from repro import BuildConfig, OnexBase, QueryProcessor, build_matters_collection
from repro.core.sensitivity import similarity_profile
from repro.data.dataset import SubsequenceRef


def main() -> None:
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=16, min_years=10, seed=42
    )
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=8)
    )
    stats = base.build()
    print(f"Built base: {stats.subsequences} windows -> {stats.groups} groups "
          f"in {stats.build_seconds:.2f}s")

    # --- Sensitivity: how does the answer set grow with the threshold?
    ma = dataset.index_of("MA/GrowthRate")
    query = SubsequenceRef(ma, 0, 6)
    grid = (0.01, 0.02, 0.05, 0.1, 0.15, 0.2)
    profile = similarity_profile(base, query, grid, verify=True)
    print(f"\nMatch counts for MA/GrowthRate[0:6] over {profile.candidates} "
          "candidate subsequences:")
    print(f"  {'ST':>6}  {'certain':>8}  {'exact':>6}  {'possible':>9}")
    for point in profile.points:
        print(f"  {point.threshold:>6.2f}  {point.certain:>8}  "
              f"{point.exact:>6}  {point.possible:>9}")
    print(f"Suggested knee threshold: ST = {profile.knee()}")

    # --- Persistence: save once, reattach instantly.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "matters-growth-base.npz"
        base.save(path)
        size_kb = path.stat().st_size / 1024
        started = time.perf_counter()
        reloaded = OnexBase.load(path, dataset)
        load_seconds = time.perf_counter() - started
        print(f"\nSaved base: {size_kb:.0f} KiB; reloaded in "
              f"{load_seconds * 1000:.1f} ms "
              f"(vs {stats.build_seconds * 1000:.0f} ms to rebuild)")
        match = QueryProcessor(reloaded).best_match(query)
        print(f"Query against the reloaded base: best match "
              f"{match.series_name} (dist {match.distance:.4f})")


if __name__ == "__main__":
    main()
