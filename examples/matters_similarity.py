"""The Fig. 2/Fig. 3 walk-through: MA growth rate vs the other 49 states.

Run with::

    python examples/matters_similarity.py

Reproduces the demo's Similarity View session: load the MATTERS panel,
brush the recent half of Massachusetts' growth rate, retrieve the best
time-warped match, and regenerate all three linked visualizations
(multiple-lines with warped connectors, radial chart, connected scatter)
as SVG files under ``examples/output/``.
"""

from pathlib import Path

from repro import OnexEngine, QueryConfig, build_matters_collection
from repro.viz.ascii_chart import multi_line_chart
from repro.viz.payloads import (
    connected_scatter_payload,
    query_preview_payload,
    similarity_view_payload,
)
from repro.viz.svg import (
    svg_connected_scatter,
    svg_radial_chart,
    svg_similarity_view,
)

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    # Load the "MATTERS GrowthRate" dataset, as in the demo: indicators
    # live on wildly different scales (percentages vs headcounts), so each
    # is loaded — and normalised — as its own collection.
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=20, min_years=10, seed=2013
    )
    engine = OnexEngine(QueryConfig(mode="fast", refine_groups=8))
    stats = engine.load_dataset(
        dataset, similarity_threshold=0.12, min_length=5, max_length=10
    )
    print(f"ONEX base over {len(dataset)} series: {stats.groups} groups, "
          f"{stats.compaction_ratio:.1f}x compaction")

    # --- Query Preview Pane: brush the second half of MA's growth rate.
    ma = dataset["MA/GrowthRate"]
    brush_start = len(ma) // 2
    brush_length = min(len(ma) - brush_start, 10)
    preview = query_preview_payload(ma, brush_start, brush_length)
    print(f"Brushed {preview['series']} [{brush_start}:{brush_start + brush_length}]")

    # --- Similarity search over the compact base (DTW on representatives).
    query = engine.query_from_series(
        dataset.name, "MA/GrowthRate", brush_start, brush_length
    )
    matches = engine.k_best_matches(dataset.name, query, 30)
    others = [m for m in matches if not m.series_name.startswith("MA/")]
    if not others:  # all nearby matches were MA itself; widen the search
        matches = engine.k_best_matches(dataset.name, query, 200)
        others = [m for m in matches if not m.series_name.startswith("MA/")]
    best = others[0]
    print(f"\nBest match: {best.series_name} (start={best.start}, "
          f"len={best.length}), normalised DTW = {best.distance:.4f}")
    print("Runner-ups:")
    for m in others[1:4]:
        print(f"  {m.series_name:<22} dist={m.distance:.4f}")

    base = engine.base(dataset.name)
    query_values = base.dataset.values(query)
    match_values = base.member_values(best.ref)

    # --- Results Pane: multiple-lines chart with warped-point connectors.
    payload = similarity_view_payload(query_values, match_values, best)
    print(f"\nWarping path has {len(payload['connectors'])} matched point pairs")
    print(multi_line_chart(query_values, match_values, width=52, height=10))

    # --- Regenerate the three linked visualizations as SVG (Figs. 2-3).
    OUTPUT.mkdir(exist_ok=True)
    svg_similarity_view(
        query_values,
        match_values,
        payload["connectors"],
        OUTPUT / "fig2_similarity_view.svg",
        title=f"MA/GrowthRate vs {best.series_name}",
    )
    svg_radial_chart(
        match_values,
        OUTPUT / "fig3a_radial_chart.svg",
        title=f"{best.series_name} (radial)",
    )
    scatter = connected_scatter_payload(query_values, match_values, best)
    svg_connected_scatter(
        scatter["points"],
        OUTPUT / "fig3b_connected_scatter.svg",
        title=f"diagonal deviation = {scatter['diagonal_deviation']:.4f}",
    )
    print(f"\nWrote Fig. 2/3 SVGs to {OUTPUT}/")
    print(f"Connected-scatter diagonal deviation: "
          f"{scatter['diagonal_deviation']:.4f} (0 = identical sequences)")


if __name__ == "__main__":
    main()
