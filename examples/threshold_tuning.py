"""Data-driven threshold recommendation across heterogeneous indicators.

Run with::

    python examples/threshold_tuning.py

The paper's §3.3 point: growth-rate percentages need tiny similarity
thresholds while unemployment counts (tens of thousands of people) need
huge ones.  This example shows (a) raw-unit recommendations differing by
orders of magnitude across indicators, (b) how collection-level
normalisation unifies them, and (c) how the chosen ST trades base
compaction against group tightness.
"""

from repro import BuildConfig, OnexBase, TimeSeriesDataset, recommend_thresholds
from repro.data.matters import build_matters_collection


def indicator_slice(dataset, indicator):
    return TimeSeriesDataset(
        [s for s in dataset if s.metadata["indicator"] == indicator],
        name=indicator,
    )


def main() -> None:
    dataset = build_matters_collection(years=16, min_years=10, seed=99)

    print("Raw-unit threshold recommendations (length-6 windows, 5% quantile):")
    for indicator in ("GrowthRate", "TaxRate", "Unemployment", "TechEmployment"):
        sliced = indicator_slice(dataset, indicator)
        rec = recommend_thresholds(sliced, 6, normalize=False, seed=1)
        print(f"  {indicator:<18} ST = {rec.default:>14.4f}   "
              f"(sampled mean distance {rec.mean_distance:.4f})")

    print("\nSame recommendations after collection-level [0,1] normalisation:")
    for indicator in ("GrowthRate", "TaxRate", "Unemployment", "TechEmployment"):
        sliced = indicator_slice(dataset, indicator)
        rec = recommend_thresholds(sliced, 6, normalize=True, seed=1)
        print(f"  {indicator:<18} ST = {rec.default:>14.4f}")

    print("\nEffect of ST on the ONEX base (GrowthRate slice):")
    growth = indicator_slice(dataset, "GrowthRate")
    print(f"  {'ST':>6}  {'groups':>7}  {'compaction':>11}  {'build (s)':>9}")
    for st in (0.02, 0.05, 0.10, 0.20):
        base = OnexBase(
            growth,
            BuildConfig(similarity_threshold=st, min_length=5, max_length=8),
        )
        stats = base.build()
        print(f"  {st:>6.2f}  {stats.groups:>7}  "
              f"{stats.compaction_ratio:>10.1f}x  {stats.build_seconds:>9.2f}")
    print("\nSmaller ST -> tighter groups but less compaction; the")
    print("recommender's 5% quantile is a good interactive starting point.")


if __name__ == "__main__":
    main()
