"""The Fig. 4 walk-through: recurring patterns in household electricity.

Run with::

    python examples/electricity_seasonal.py

Loads the simulated ElectricityLoad collection, focuses on one
household's year of daily consumption, and runs ONEX's seasonal
similarity to find recurring monthly habit patterns — then renders the
Seasonal View (alternating shaded occurrences) to SVG and the terminal.
"""

from pathlib import Path

from repro import OnexEngine, build_electricity_collection, find_seasonal_patterns
from repro.viz.ascii_chart import sparkline
from repro.viz.payloads import seasonal_view_payload
from repro.viz.svg import svg_seasonal_view

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    dataset = build_electricity_collection(households=4, seed=417)
    engine = OnexEngine()
    engine.load_dataset(
        dataset, similarity_threshold=0.06, min_length=6, max_length=10
    )

    household = dataset["household-0"]
    pattern_length = household.metadata["pattern_length"]
    print(f"Household-0: {len(household)} days of consumption "
          f"({household.metadata['units']})")
    print(sparkline(household.values))

    # Seasonal similarity: monthly-scale recurring habits.  Shapes recur
    # at different seasonal load levels (winter vs summer), so match with
    # the window level removed — the Fig. 4 narrative.
    patterns = find_seasonal_patterns(
        household,
        pattern_length,
        threshold=0.06,
        step=2,
        remove_level=True,
        ed_threshold=0.18,
        max_patterns=3,
    )
    print(f"\nFound {len(patterns)} recurring pattern(s) of ~{pattern_length} days:")
    truth = household.metadata["pattern_starts"]
    for rank, pattern in enumerate(patterns, start=1):
        marks = []
        for start in pattern.starts:
            hit = any(abs(start - t) <= pattern_length // 3 for t in truth)
            marks.append(f"day {start}{' (planted)' if hit else ''}")
        print(f"  {rank}. {pattern.occurrences} occurrences "
              f"(max pairwise DTW {pattern.max_pairwise_dtw:.4f}): "
              + ", ".join(marks))
        print(f"     shape: {sparkline(pattern.centroid)}")

    if patterns:
        OUTPUT.mkdir(exist_ok=True)
        best = patterns[0]
        payload = seasonal_view_payload(household, [best])
        segments = [
            (seg["start"], seg["stop"])
            for seg in payload["patterns"][0]["segments"]
        ]
        svg_seasonal_view(
            household.values,
            segments,
            OUTPUT / "fig4_seasonal_view.svg",
            title=f"household-0: {best.occurrences} recurring segments",
        )
        print(f"\nWrote Fig. 4 SVG to {OUTPUT}/fig4_seasonal_view.svg")
    print(f"\nGround truth (planted habit starts): {list(truth)}")


if __name__ == "__main__":
    main()
