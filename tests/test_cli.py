"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = [
    "--source", "matters", "--indicators", "GrowthRate",
    "--st", "0.1", "--min-length", "4", "--max-length", "6",
    "--years", "10", "--min-years", "8",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_query_requires_series(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.source == "matters"
        assert args.st is None


class TestCommands:
    def test_describe_human(self, capsys):
        assert main(["describe", *FAST]) == 0
        out = capsys.readouterr().out
        assert "MATTERS-sim" in out
        assert "compaction" in out

    def test_describe_json(self, capsys):
        assert main(["--json", "describe", *FAST]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series"] == 50

    def test_query(self, capsys):
        code = main(
            ["query", *FAST, "--series", "MA/GrowthRate", "--start", "0",
             "--length", "5", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top 3 matches" in out
        assert "dist=" in out

    def test_query_json(self, capsys):
        code = main(
            ["--json", "query", *FAST, "--series", "MA/GrowthRate",
             "--length", "5", "--k", "2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["matches"]) == 2

    def test_seasonal(self, capsys):
        code = main(
            ["seasonal", *FAST, "--series", "MA/GrowthRate", "--length", "4",
             "--threshold", "0.1"]
        )
        assert code == 0
        assert "recurring pattern" in capsys.readouterr().out

    def test_thresholds(self, capsys):
        assert main(["thresholds", *FAST, "--length", "5"]) == 0
        out = capsys.readouterr().out
        assert "default:" in out
        assert "5%" in out

    def test_sensitivity(self, capsys):
        code = main(
            ["sensitivity", *FAST, "--series", "MA/GrowthRate",
             "--length", "5", "--grid", "0.05", "0.1", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certain=" in out
        assert "exact=" in out
        assert "knee" in out

    def test_recommend(self, capsys):
        code = main(
            ["--json", "recommend", *FAST, "--length", "5",
             "--samples", "500", "--sample-seed", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["length"] == 5
        assert payload["samples"] == 500
        assert "5%" in payload["suggestions"]

    def test_recommend_matches_thresholds_defaults(self, capsys):
        assert main(["--json", "thresholds", *FAST, "--length", "5"]) == 0
        base = json.loads(capsys.readouterr().out)
        assert main(["--json", "recommend", *FAST, "--length", "5"]) == 0
        rec = json.loads(capsys.readouterr().out)
        assert rec["suggestions"] == base["suggestions"]

    def test_profile_default_grid(self, capsys):
        code = main(
            ["--json", "profile", *FAST, "--series", "MA/GrowthRate",
             "--length", "5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["view"] == "sensitivity"
        # Verified by default: every grid point carries an exact count
        # bracketed by the bounds.
        assert all(e is not None for e in payload["exact"])
        for certain, exact, possible in zip(
            payload["certain"], payload["exact"], payload["possible"]
        ):
            assert certain <= exact <= possible
        # The default grid is the recommender's quantiles plus 2x default.
        assert len(payload["thresholds"]) >= 4

    def test_profile_explicit_grid_no_verify(self, capsys):
        code = main(
            ["--json", "profile", *FAST, "--series", "MA/GrowthRate",
             "--length", "5", "--grid", "0.05", "0.1", "--no-verify"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["thresholds"] == [0.05, 0.1]
        assert payload["exact"] == [None, None]

    def test_error_is_exit_code_one(self, capsys):
        code = main(
            ["query", "--source", "nasdaq", "--series", "MA/GrowthRate"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_series_reports_error(self, capsys):
        code = main(["query", *FAST, "--series", "ZZ/Nothing"])
        assert code == 1
        assert "DatasetError" in capsys.readouterr().err

    def test_ucr_source(self, capsys, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text(
            "1,0.1,0.5,0.9,0.7,0.3,0.2\n2,0.2,0.6,1.0,0.8,0.4,0.1\n"
        )
        code = main(
            ["describe", "--source", f"ucr:{path}", "--st", "0.2",
             "--min-length", "3", "--max-length", "4"]
        )
        assert code == 0
        assert "2 series" in capsys.readouterr().out


class TestStreamCommand:
    def test_stream_requires_pattern_length(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--series", "x"])

    def test_stream_replay_human(self, capsys):
        code = main(
            ["stream", *FAST, "--series", "MA/GrowthRate",
             "--pattern-length", "5", "--chunk", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "monitor" in out
        assert "event(s):" in out
        # Replaying the very series the pattern was brushed from must fire
        # at least one exact match event at distance ~0.
        assert "match" in out

    def test_stream_replay_json(self, capsys):
        code = main(
            ["--json", "stream", *FAST, "--series", "MA/GrowthRate",
             "--pattern-length", "5", "--epsilon", "0.4", "--chunk", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["monitor"]["epsilon"] == 0.4
        assert payload["points_appended"] > 0
        kinds = {e["kind"] for e in payload["events"]}
        assert "match" in kinds
        seqs = [e["seq"] for e in payload["events"]]
        assert seqs == sorted(seqs)


class TestServerRouting:
    """`--server URL` routes every operation through OnexClient."""

    @pytest.fixture()
    def server(self):
        from repro.server.http import OnexHttpServer
        from repro.server.service import OnexService

        with OnexHttpServer(OnexService()) as srv:
            yield srv

    def test_query_over_http(self, server, capsys):
        code = main(
            ["query", "--server", server.url, *FAST,
             "--series", "MA/GrowthRate", "--start", "0",
             "--length", "5", "--k", "2"]
        )
        assert code == 0
        assert "top 2 matches" in capsys.readouterr().out

    def test_reuses_dataset_already_loaded_on_server(self, server, capsys):
        # Two CLI invocations against one shared server: the second must
        # reuse the loaded dataset instead of dying on "already loaded".
        argv = ["query", "--server", server.url, *FAST,
                "--series", "MA/GrowthRate", "--length", "5", "--k", "2"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "top 2 matches" in capsys.readouterr().out

    def test_remote_errors_surface_with_type(self, server, capsys):
        code = main(
            ["query", "--server", server.url, *FAST,
             "--series", "no-such/Series", "--length", "5"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "ValidationError" in err or "DatasetError" in err
