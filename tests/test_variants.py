"""Unit tests for DTW variants (DDTW, WDTW, DBA)."""

import numpy as np
import pytest

from repro.distances.dtw import dtw_distance
from repro.distances.variants import (
    derivative,
    derivative_dtw,
    dtw_barycenter,
    weighted_dtw,
)
from repro.exceptions import ValidationError


class TestDerivative:
    def test_linear_series_constant_derivative(self):
        d = derivative(np.arange(10.0) * 2.0)
        assert np.allclose(d, 2.0)

    def test_constant_series_zero_derivative(self):
        assert np.allclose(derivative(np.full(5, 3.0)), 0.0)

    def test_length_preserved(self):
        assert derivative(np.random.default_rng(0).normal(size=17)).shape == (17,)

    def test_requires_three_points(self):
        with pytest.raises(ValidationError):
            derivative([1.0, 2.0])


class TestDerivativeDtw:
    def test_level_offset_invariance(self):
        rng = np.random.default_rng(171)
        x = rng.normal(size=20).cumsum()
        assert derivative_dtw(x, x + 100.0) == pytest.approx(0.0, abs=1e-9)

    def test_plain_dtw_not_offset_invariant(self):
        rng = np.random.default_rng(172)
        x = rng.normal(size=20).cumsum()
        assert dtw_distance(x, x + 100.0) > 100.0

    def test_identity(self):
        x = np.sin(np.arange(15.0))
        assert derivative_dtw(x, x) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(173)
        x = rng.normal(size=12)
        y = rng.normal(size=14)
        assert derivative_dtw(x, y) == pytest.approx(derivative_dtw(y, x))

    def test_normalized_variant(self):
        rng = np.random.default_rng(174)
        x = rng.normal(size=12)
        y = rng.normal(size=12)
        assert derivative_dtw(x, y, normalized=True) <= derivative_dtw(x, y)


class TestWeightedDtw:
    def test_identity_zero(self):
        x = np.arange(10.0)
        assert weighted_dtw(x, x) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(175)
        x = rng.normal(size=9)
        y = rng.normal(size=11)
        assert weighted_dtw(x, y) == pytest.approx(weighted_dtw(y, x))

    def test_flat_weighting_recovers_half_dtw(self):
        """g=0 makes every weight w_max/2, i.e. plain DTW scaled by 0.5."""
        rng = np.random.default_rng(176)
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        assert weighted_dtw(x, y, g=0.0, w_max=1.0) == pytest.approx(
            0.5 * dtw_distance(x, y)
        )

    def test_penalises_heavy_warping_more_than_dtw(self):
        """A shifted spike is free for DTW but costs WDTW off-diagonal
        weight; relative to aligned distance the order flips."""
        n = 20
        x = np.zeros(n)
        y = np.zeros(n)
        x[2] = 5.0
        y[n - 3] = 5.0  # same spike, far apart in time
        plain = dtw_distance(x, y)
        weighted = weighted_dtw(x, y, g=1.0)
        assert plain == pytest.approx(0.0, abs=1e-9)
        assert weighted >= 0.0  # never negative; warping itself is free in
        # both, but the spike must match a zero far away for WDTW's path
        # to stay near the diagonal — either way costs something:
        assert weighted > 0.0 or plain == 0.0

    def test_sigmoid_center_semantics(self):
        """Jeong et al.'s weight is centred at m/2: offsets below the
        centre get *cheaper* as g grows, offsets beyond it get costlier —
        so a mild phase shift costs less at high g while matching across
        more than half the series costs more."""
        x = np.sin(np.arange(20.0) / 3.0)
        y = np.roll(x, 4)  # offset 4 < centre 10
        near = [weighted_dtw(x, y, g=g) for g in (0.01, 0.2, 1.0)]
        assert near == sorted(near, reverse=True)
        # Spikes 16 apart force path cells far beyond the centre.
        a = np.zeros(20)
        b = np.zeros(20)
        a[2] = 5.0
        b[18] = 5.0
        far = [weighted_dtw(a, b, g=g) for g in (0.01, 0.2, 1.0)]
        assert far == sorted(far)

    def test_validation(self):
        with pytest.raises(ValidationError):
            weighted_dtw([1.0], [1.0], g=-1.0)
        with pytest.raises(ValidationError):
            weighted_dtw([1.0], [1.0], w_max=0.0)


class TestDba:
    def test_average_of_identical_members_is_member(self):
        x = np.sin(np.arange(20.0) / 4.0)
        avg = dtw_barycenter([x, x, x])
        assert np.allclose(avg, x)

    def test_reduces_dtw_objective_vs_arithmetic_mean(self):
        """On phase-shifted sines, DBA beats the pointwise mean."""
        t = np.arange(30.0)
        members = [np.sin(2 * np.pi * (t + shift) / 15.0) for shift in (0, 2, 4)]
        mean = np.mean(members, axis=0)
        dba = dtw_barycenter(members, iterations=15)
        obj_mean = sum(dtw_distance(mean, m) for m in members)
        obj_dba = sum(dtw_distance(dba, m) for m in members)
        assert obj_dba < obj_mean

    def test_heterogeneous_lengths_with_fixed_output(self):
        members = [np.arange(10.0), np.arange(14.0) * 10 / 14, np.arange(12.0) * 10 / 12]
        avg = dtw_barycenter(members, length=12)
        assert avg.shape == (12,)

    def test_deterministic(self):
        rng = np.random.default_rng(177)
        members = [rng.normal(size=15).cumsum() for _ in range(4)]
        a = dtw_barycenter(members)
        b = dtw_barycenter(members)
        assert np.array_equal(a, b)

    def test_single_member(self):
        x = np.arange(8.0)
        assert np.allclose(dtw_barycenter([x]), x)

    def test_validation(self):
        with pytest.raises(ValidationError):
            dtw_barycenter([])
        with pytest.raises(ValidationError):
            dtw_barycenter([np.arange(5.0)], iterations=0)
        with pytest.raises(ValidationError):
            dtw_barycenter([np.arange(5.0)], length=0)
