"""Unit and integration tests for repro.core.sensitivity."""

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.core.query import QueryProcessor
from repro.core.sensitivity import (
    SensitivityPoint,
    similarity_profile,
)
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.dtw import dtw_path
from repro.exceptions import ValidationError

GRID = (0.01, 0.03, 0.05, 0.1, 0.2)


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(151)
    dataset = TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (24, 20, 22)], name="sens"
    )
    b = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=7)
    )
    b.build()
    return b


def exact_counts(base, q, grid):
    distances = []
    for length in base.lengths:
        for ref in base.dataset.iter_subsequences(length):
            distances.append(
                dtw_path(q, base.dataset.values(ref)).normalized_distance
            )
    distances = np.array(distances)
    return [int((distances <= st).sum()) for st in grid]


class TestBounds:
    def test_certain_below_exact_below_possible(self, base):
        rng = np.random.default_rng(152)
        q = rng.uniform(size=6)
        profile = similarity_profile(base, q, GRID, normalize=False)
        truth = exact_counts(base, q, GRID)
        for point, exact in zip(profile.points, truth):
            assert point.certain <= exact <= point.possible

    def test_verified_counts_are_exact(self, base):
        rng = np.random.default_rng(153)
        q = rng.uniform(size=6)
        profile = similarity_profile(base, q, GRID, normalize=False, verify=True)
        truth = exact_counts(base, q, GRID)
        assert [p.exact for p in profile.points] == truth

    def test_counts_monotone_in_threshold(self, base):
        q = SubsequenceRef(0, 0, 6)
        profile = similarity_profile(base, q, GRID)
        certains = [p.certain for p in profile.points]
        possibles = [p.possible for p in profile.points]
        assert certains == sorted(certains)
        assert possibles == sorted(possibles)

    def test_candidates_counts_all_members(self, base):
        q = SubsequenceRef(0, 0, 6)
        profile = similarity_profile(base, q, GRID)
        total = sum(bucket.member_count for bucket in base.buckets())
        assert profile.candidates == total

    def test_lengths_restriction(self, base):
        q = SubsequenceRef(0, 0, 6)
        profile = similarity_profile(base, q, GRID, lengths=[5])
        assert profile.candidates == base.bucket(5).member_count

    def test_self_query_certain_at_loose_threshold(self, base):
        """The query itself is an indexed member: upper bound 0 at its ref."""
        q = SubsequenceRef(1, 2, 6)
        profile = similarity_profile(base, q, (0.2,), verify=True)
        assert profile.points[0].exact >= 1


class TestProfileApi:
    def test_as_dict_shape(self, base):
        profile = similarity_profile(base, SubsequenceRef(0, 0, 5), GRID)
        payload = profile.as_dict()
        assert payload["view"] == "sensitivity"
        assert len(payload["certain"]) == len(GRID)
        assert payload["knee"] in GRID

    def test_knee_is_biggest_jump(self, base):
        profile = similarity_profile(base, SubsequenceRef(0, 0, 5), GRID)
        counts = [0] + [p.certain for p in profile.points]
        jumps = np.diff(counts)
        assert profile.knee() == GRID[int(np.argmax(jumps))]

    def test_grid_is_sorted_deduplicated_output(self, base):
        profile = similarity_profile(base, SubsequenceRef(0, 0, 5), (0.2, 0.05))
        assert profile.thresholds == (0.05, 0.2)

    def test_point_invariants_enforced(self):
        with pytest.raises(ValidationError):
            SensitivityPoint(threshold=0.1, certain=5, possible=3)
        with pytest.raises(ValidationError):
            SensitivityPoint(threshold=0.1, certain=1, possible=3, exact=4)

    def test_invalid_grid(self, base):
        with pytest.raises(ValidationError):
            similarity_profile(base, SubsequenceRef(0, 0, 5), ())
        with pytest.raises(ValidationError):
            similarity_profile(base, SubsequenceRef(0, 0, 5), (0.0, 0.1))


class TestConsistencyWithQueryProcessor:
    def test_certain_counts_match_matches_within(self, base):
        """matches_within returns exactly the verified exact count."""
        q = SubsequenceRef(2, 1, 6)
        st = 0.05
        profile = similarity_profile(base, q, (st,), verify=True)
        processor = QueryProcessor(base)
        found = processor.matches_within(q, st)
        assert profile.points[0].exact == len(found)
