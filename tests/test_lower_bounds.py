"""Unit tests for repro.distances.lower_bounds."""

import numpy as np
import pytest

from repro.distances.dtw import dtw_distance
from repro.distances.envelope import keogh_envelope
from repro.distances.lower_bounds import lb_cascade, lb_keogh, lb_keogh_terms, lb_kim
from repro.exceptions import ValidationError


class TestLbKim:
    def test_lower_bounds_dtw_random(self):
        rng = np.random.default_rng(41)
        for _ in range(50):
            n, m = rng.integers(1, 12, size=2)
            x = rng.normal(size=n)
            y = rng.normal(size=m)
            assert lb_kim(x, y) <= dtw_distance(x, y) + 1e-9

    def test_lower_bounds_dtw_squared(self):
        rng = np.random.default_rng(42)
        for _ in range(30):
            n, m = rng.integers(1, 10, size=2)
            x = rng.normal(size=n)
            y = rng.normal(size=m)
            got = lb_kim(x, y, ground="squared")
            assert got <= dtw_distance(x, y, ground="squared") + 1e-9

    def test_three_by_three_no_double_count(self):
        # Regression: diagonal 3x3 paths share the (1,1) cell between the
        # second and penultimate positions.
        x = [0.0, 10.0, 0.0]
        y = [0.0, 0.0, 0.0]
        assert lb_kim(x, y) <= dtw_distance(x, y) + 1e-9

    def test_identical_sequences(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert lb_kim(x, x) == 0.0

    def test_single_points(self):
        assert lb_kim([1.0], [4.0]) == 3.0


class TestLbKeogh:
    def test_zero_for_candidate_inside_envelope(self):
        q = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        lower, upper = keogh_envelope(q, 1)
        assert lb_keogh(q, lower, upper) == 0.0

    def test_lower_bounds_banded_dtw(self):
        rng = np.random.default_rng(43)
        for radius in (0, 1, 2, 4):
            for _ in range(20):
                q = rng.normal(size=16)
                c = rng.normal(size=16)
                lower, upper = keogh_envelope(q, radius)
                lb = lb_keogh(c, lower, upper)
                assert lb <= dtw_distance(q, c, window=radius) + 1e-9

    def test_lower_bounds_banded_dtw_squared(self):
        rng = np.random.default_rng(44)
        q = rng.normal(size=20)
        c = rng.normal(size=20)
        lower, upper = keogh_envelope(q, 2)
        lb = lb_keogh(c, lower, upper, ground="squared")
        assert lb <= dtw_distance(q, c, window=2, ground="squared") + 1e-9

    def test_radius_zero_equals_euclidean(self):
        rng = np.random.default_rng(45)
        q = rng.normal(size=10)
        c = rng.normal(size=10)
        lower, upper = keogh_envelope(q, 0)
        assert lb_keogh(c, lower, upper) == pytest.approx(np.abs(q - c).sum())

    def test_terms_sum_to_bound(self):
        rng = np.random.default_rng(46)
        q = rng.normal(size=12)
        c = rng.normal(size=12)
        lower, upper = keogh_envelope(q, 1)
        terms = lb_keogh_terms(c, lower, upper)
        assert terms.sum() == pytest.approx(lb_keogh(c, lower, upper))
        assert (terms >= 0).all()

    def test_length_mismatch_rejected(self):
        lower, upper = keogh_envelope([1.0, 2.0], 0)
        with pytest.raises(ValidationError, match="lengths differ"):
            lb_keogh([1.0, 2.0, 3.0], lower, upper)


class TestLbCascade:
    def test_never_prunes_true_matches(self):
        rng = np.random.default_rng(47)
        for _ in range(40):
            q = rng.normal(size=14)
            c = rng.normal(size=14)
            radius = 2
            true = dtw_distance(q, c, window=radius)
            pruned, bound = lb_cascade(q, c, true, radius=radius)
            assert not pruned
            assert bound <= true + 1e-9

    def test_prunes_clearly_far_candidates(self):
        q = np.zeros(10)
        c = np.full(10, 50.0)
        pruned, bound = lb_cascade(q, c, 1.0, radius=1)
        assert pruned
        assert bound > 1.0

    def test_uses_supplied_envelope(self):
        rng = np.random.default_rng(48)
        q = rng.normal(size=10)
        c = rng.normal(size=10)
        env = keogh_envelope(q, 1)
        pruned_a, bound_a = lb_cascade(q, c, 1e9, radius=1, envelope=env)
        pruned_b, bound_b = lb_cascade(q, c, 1e9, radius=1)
        assert pruned_a == pruned_b
        assert bound_a == pytest.approx(bound_b)

    def test_different_lengths_skip_keogh(self):
        # LB_Keogh needs equal lengths; cascade must fall back to LB_Kim.
        q = np.zeros(8)
        c = np.zeros(5)
        pruned, bound = lb_cascade(q, c, 0.5)
        assert not pruned
        assert bound == 0.0
