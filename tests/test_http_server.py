"""End-to-end tests of the HTTP JSON API (client/server architecture, §4)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.server.http import OnexHttpServer
from repro.server.service import OnexService


@pytest.fixture(scope="module")
def server():
    svc = OnexService()
    with OnexHttpServer(svc) as srv:
        yield srv


def post(server, payload):
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        f"{server.url}/api", data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=30) as resp:
        return resp.status, json.loads(resp.read())


class TestHttpApi:
    def test_health(self, server):
        status, payload = get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_full_analyst_session(self, server):
        """Load -> overview -> brush -> similarity search over HTTP."""
        status, payload = post(
            server,
            {
                "op": "load_dataset",
                "params": {
                    "source": "matters",
                    "similarity_threshold": 0.08,
                    "min_length": 4,
                    "max_length": 5,
                    "years": 10,
                    "min_years": 6,
                },
            },
        )
        assert status == 200
        assert payload["ok"], payload
        assert payload["result"]["compaction_ratio"] > 1.0

        status, payload = post(
            server, {"op": "overview", "params": {"dataset": "MATTERS-sim", "limit": 3}}
        )
        assert payload["ok"]
        assert payload["result"]["groups"]

        status, payload = post(
            server,
            {
                "op": "best_match",
                "params": {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "MA/GrowthRate", "start": 0, "length": 5},
                },
            },
        )
        assert payload["ok"], payload
        assert payload["result"]["view"] == "similarity"
        assert payload["result"]["connectors"]

    def test_query_batch_round_trip(self, server):
        """One request answers a whole batch, identically to singles."""
        queries = [
            {"series": "MA/GrowthRate", "start": 0, "length": 5},
            {"series": "CA/GrowthRate", "start": 1, "length": 4},
        ]
        status, payload = post(
            server,
            {
                "op": "query_batch",
                "params": {"dataset": "MATTERS-sim", "queries": queries},
            },
        )
        assert status == 200
        assert payload["ok"], payload
        results = payload["result"]["results"]
        assert len(results) == 2
        for entry, query in zip(results, queries):
            _, single = post(
                server,
                {
                    "op": "best_match",
                    "params": {"dataset": "MATTERS-sim", "query": query},
                },
            )
            assert single["ok"]
            best = entry["matches"][0]
            assert best["match_series"] == single["result"]["match_series"]
            assert best["match_start"] == single["result"]["match_start"]
            assert best["distance"] == pytest.approx(single["result"]["distance"])

    def test_health_reports_loaded_datasets(self, server):
        status, payload = get(server, "/health")
        assert "MATTERS-sim" in payload["datasets"]

    def test_application_error_is_200_ok_false(self, server):
        status, payload = post(
            server, {"op": "describe", "params": {"dataset": "ghost"}}
        )
        assert status == 200
        assert payload["ok"] is False
        assert payload["error"]["type"] == "DatasetError"

    def test_malformed_envelope_is_400(self, server):
        data = json.dumps({"op": "no_such_op"}).encode()
        req = urllib.request.Request(f"{server.url}/api", data=data)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "ProtocolError"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_post_wrong_path_404(self, server):
        req = urllib.request.Request(f"{server.url}/elsewhere", data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 404

    def test_stop_idempotent(self):
        srv = OnexHttpServer(OnexService())
        srv.start()
        srv.stop()
        srv.stop()  # second stop must be a no-op


class TestReadWriteLock:
    def test_readers_share(self):
        import threading

        from repro.server.http import ReadWriteLock

        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # both readers must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        import threading

        from repro.server.http import ReadWriteLock

        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read():
                order.append("reader")

        def writer():
            with lock.write():
                order.append("writer")

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.05)
        assert order == []  # both blocked behind the held write lock
        lock.release_write()
        for t in threads:
            t.join(timeout=5)
        assert sorted(order) == ["reader", "writer"]

    def test_waiting_writer_blocks_new_readers(self):
        import threading
        import time

        from repro.server.http import ReadWriteLock

        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = threading.Event()
        late_read = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            late_read.set()
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # let the writer start waiting
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert not late_read.is_set()  # writer preference holds it back
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert got_write.is_set() and late_read.is_set()


class TestConcurrentRequests:
    def test_parallel_reads_are_consistent(self, server):
        """Many simultaneous queries against one dataset all succeed and
        agree (they hold the shared side of the dataset lock)."""
        from concurrent.futures import ThreadPoolExecutor

        payload = {
            "op": "best_match",
            "params": {
                "dataset": "MATTERS-sim",
                "query": {"series": "MA/GrowthRate", "start": 0, "length": 5},
            },
        }
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda _: post(server, payload), range(16)))
        bodies = [body for status, body in results]
        assert all(b["ok"] for b in bodies)
        distances = {b["result"]["distance"] for b in bodies}
        assert len(distances) == 1

    def test_reads_interleave_with_stream_writes(self, server):
        """Queries and appends to one dataset race without corruption."""
        from concurrent.futures import ThreadPoolExecutor

        def append(i):
            return post(
                server,
                {
                    "op": "append_points",
                    "params": {
                        "dataset": "MATTERS-sim",
                        "series": "live-concurrent",
                        "values": [float(i), float(i) + 0.5],
                    },
                },
            )

        def query(_):
            return post(
                server,
                {
                    "op": "best_match",
                    "params": {
                        "dataset": "MATTERS-sim",
                        "query": {"series": "MA/GrowthRate", "start": 0,
                                  "length": 5},
                    },
                },
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            appends = [pool.submit(append, i) for i in range(10)]
            queries = [pool.submit(query, i) for i in range(10)]
            for f in appends + queries:
                status, body = f.result(timeout=30)
                assert body["ok"], body
        status, body = post(
            server,
            {"op": "describe", "params": {"dataset": "MATTERS-sim"}},
        )
        assert body["ok"]
        assert "live-concurrent" in body["result"]["series_names"]


def test_lock_table_ignores_unknown_dataset_names():
    """Garbage dataset names must not grow the lock table unboundedly."""
    from repro.server.http import DatasetLockManager
    from repro.server.protocol import Request

    loaded = ["real"]
    manager = DatasetLockManager(known=lambda: loaded)
    for i in range(50):
        with manager.guard(Request("describe", {"dataset": f"ghost-{i}"})):
            pass
    assert manager._locks == {}
    with manager.guard(Request("describe", {"dataset": "real"})):
        pass
    assert list(manager._locks) == ["real"]


def raw_http(server, request_bytes: bytes) -> bytes:
    """One raw-socket HTTP exchange (read to EOF; the server closes)."""
    import socket

    host, port = server.address
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(request_bytes)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


def parse_raw(response: bytes) -> tuple[int, dict]:
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)


class TestMalformedRequestsSurvived:
    """Regression: malformed requests must 400, never kill the handler.

    A non-numeric ``Content-Length`` used to raise ``ValueError`` out of
    ``do_POST`` (connection severed, no response); so did pathological
    bodies whose decoding failure was not a ``ProtocolError``.
    """

    def test_malformed_content_length_gets_400(self, server):
        response = raw_http(
            server,
            b"POST /api HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\n\r\n",
        )
        status, payload = parse_raw(response)
        assert status == 400
        assert payload["ok"] is False
        assert "Content-Length" in payload["error"]["message"]

    def test_negative_content_length_gets_400(self, server):
        response = raw_http(
            server,
            b"POST /api HTTP/1.1\r\nHost: t\r\nContent-Length: -7\r\n\r\n",
        )
        status, payload = parse_raw(response)
        assert status == 400
        assert payload["ok"] is False

    def test_non_utf8_body_gets_400(self, server):
        body = b"\xff\xfe\x00garbage\x9c"
        request = (
            b"POST /api HTTP/1.1\r\nHost: t\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        status, payload = parse_raw(raw_http(server, request))
        assert status == 400
        assert payload["ok"] is False

    def test_pathologically_nested_body_gets_400(self, server):
        """Deep nesting blows the JSON parser's recursion limit — a
        non-ProtocolError escape path before the fix."""
        body = b"[" * 100_000
        request = (
            b"POST /api HTTP/1.1\r\nHost: t\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        status, payload = parse_raw(raw_http(server, request))
        assert status == 400
        assert payload["ok"] is False
        assert "malformed request body" in payload["error"]["message"]

    def test_server_keeps_serving_after_malformed_requests(self, server):
        for _ in range(3):
            raw_http(
                server,
                b"POST /api HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: nope\r\n\r\n",
            )
        status, payload = get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        status, payload = post(server, {"op": "list_datasets", "params": {}})
        assert status == 200
        assert payload["ok"] is True


class TestSlowClientTimeout:
    """Regression: a client that sends headers with a Content-Length but
    then stalls used to pin a handler thread forever in the body read.
    The per-connection read timeout turns the stall into a 408 envelope;
    a half-body followed by EOF is a clean 400, never a hang."""

    def test_stalled_body_gets_408(self):
        import socket
        import time

        svc = OnexService()
        with OnexHttpServer(svc, read_timeout_s=0.5) as srv:
            host, port = srv.address
            started = time.monotonic()
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(
                    b"POST /api HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 64\r\n\r\n"
                    b'{"op": "list'  # ... and then the client goes quiet
                )
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
            elapsed = time.monotonic() - started
            status, payload = parse_raw(b"".join(chunks))
            assert status == 408
            assert payload["ok"] is False
            assert payload["error"]["type"] == "ProtocolError"
            assert "timed out" in payload["error"]["message"]
            assert elapsed < 5.0  # bounded by read_timeout_s, not 30s
            # The handler thread is free again: the server still serves.
            status, payload = get(srv, "/health")
            assert status == 200 and payload["status"] == "ok"

    def test_truncated_body_gets_400(self):
        import socket

        svc = OnexService()
        with OnexHttpServer(svc, read_timeout_s=5.0) as srv:
            host, port = srv.address
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(
                    b"POST /api HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 64\r\n\r\n"
                    b'{"op":'
                )
                sock.shutdown(socket.SHUT_WR)  # EOF long before 64 bytes
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
            status, payload = parse_raw(b"".join(chunks))
            assert status == 400
            assert payload["ok"] is False
            assert "truncated" in payload["error"]["message"]
