"""End-to-end tests of the HTTP JSON API (client/server architecture, §4)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.server.http import OnexHttpServer
from repro.server.service import OnexService


@pytest.fixture(scope="module")
def server():
    svc = OnexService()
    with OnexHttpServer(svc) as srv:
        yield srv


def post(server, payload):
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        f"{server.url}/api", data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=30) as resp:
        return resp.status, json.loads(resp.read())


class TestHttpApi:
    def test_health(self, server):
        status, payload = get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_full_analyst_session(self, server):
        """Load -> overview -> brush -> similarity search over HTTP."""
        status, payload = post(
            server,
            {
                "op": "load_dataset",
                "params": {
                    "source": "matters",
                    "similarity_threshold": 0.08,
                    "min_length": 4,
                    "max_length": 5,
                    "years": 10,
                    "min_years": 6,
                },
            },
        )
        assert status == 200
        assert payload["ok"], payload
        assert payload["result"]["compaction_ratio"] > 1.0

        status, payload = post(
            server, {"op": "overview", "params": {"dataset": "MATTERS-sim", "limit": 3}}
        )
        assert payload["ok"]
        assert payload["result"]["groups"]

        status, payload = post(
            server,
            {
                "op": "best_match",
                "params": {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "MA/GrowthRate", "start": 0, "length": 5},
                },
            },
        )
        assert payload["ok"], payload
        assert payload["result"]["view"] == "similarity"
        assert payload["result"]["connectors"]

    def test_health_reports_loaded_datasets(self, server):
        status, payload = get(server, "/health")
        assert "MATTERS-sim" in payload["datasets"]

    def test_application_error_is_200_ok_false(self, server):
        status, payload = post(
            server, {"op": "describe", "params": {"dataset": "ghost"}}
        )
        assert status == 200
        assert payload["ok"] is False
        assert payload["error"]["type"] == "DatasetError"

    def test_malformed_envelope_is_400(self, server):
        data = json.dumps({"op": "no_such_op"}).encode()
        req = urllib.request.Request(f"{server.url}/api", data=data)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "ProtocolError"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_post_wrong_path_404(self, server):
        req = urllib.request.Request(f"{server.url}/elsewhere", data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 404

    def test_stop_idempotent(self):
        srv = OnexHttpServer(OnexService())
        srv.start()
        srv.stop()
        srv.stop()  # second stop must be a no-op
