"""Unit tests for the ASCII and SVG renderers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.viz.ascii_chart import line_chart, multi_line_chart, sparkline
from repro.viz.svg import (
    svg_connected_scatter,
    svg_line_chart,
    svg_radial_chart,
    svg_seasonal_view,
    svg_similarity_view,
)


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_series_monotone_blocks(self):
        out = sparkline(np.arange(8.0))
        assert out == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([2.0, 2.0]) == "▄▄"


class TestLineCharts:
    def test_grid_dimensions(self):
        out = line_chart(np.sin(np.arange(30.0)), width=40, height=8)
        lines = out.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 40 for line in lines)

    def test_every_column_has_marker(self):
        out = line_chart(np.arange(10.0), width=20, height=6)
        cols = list(zip(*out.split("\n")))
        assert all("*" in "".join(col) for col in cols)

    def test_multi_line_shares_scale(self):
        a = np.zeros(10)
        b = np.full(10, 10.0)
        out = multi_line_chart(a, b, width=10, height=5)
        lines = out.split("\n")
        assert set(lines[0]) == {"o"}  # high series on top row
        assert set(lines[-1]) == {"*"}  # low series on bottom row

    def test_overlap_marker(self):
        a = np.arange(10.0)
        out = multi_line_chart(a, a, width=10, height=5)
        assert "@" in out
        assert "*" not in out

    def test_validation(self):
        with pytest.raises(ValidationError):
            line_chart([1.0, 2.0], width=1)
        with pytest.raises(ValidationError):
            multi_line_chart([1.0], [1.0], height=1)


class TestRadialChartAscii:
    def test_grid_shape(self):
        from repro.viz.ascii_chart import radial_chart

        out = radial_chart(np.sin(np.arange(24.0)), size=15)
        lines = out.split("\n")
        assert len(lines) == 15
        assert all(len(line) == 15 for line in lines)
        assert "+" in out  # centre marker
        assert "*" in out

    def test_validation(self):
        from repro.viz.ascii_chart import radial_chart

        with pytest.raises(ValidationError):
            radial_chart([1.0, 2.0], size=4)  # even
        with pytest.raises(ValidationError):
            radial_chart([1.0, 2.0], size=3)  # too small


class TestSeasonalChartAscii:
    def test_ruler_marks_segments(self):
        from repro.viz.ascii_chart import seasonal_chart

        values = np.sin(np.arange(100.0) / 5.0)
        out = seasonal_chart(values, [(0, 20), (50, 70)], width=50, height=6)
        lines = out.split("\n")
        assert len(lines) == 7  # chart + ruler
        ruler = lines[-1]
        assert "=" in ruler
        assert "#" in ruler

    def test_bad_segment_rejected(self):
        from repro.viz.ascii_chart import seasonal_chart

        with pytest.raises(ValidationError):
            seasonal_chart(np.arange(10.0), [(5, 50)])


class TestOverviewStrip:
    def test_one_line_per_group_with_bars(self):
        from repro.viz.ascii_chart import overview_strip

        reps = [(np.arange(5.0), 10), (np.ones(5), 5)]
        out = overview_strip(reps, labels=["big", "small"])
        lines = out.split("\n")
        assert len(lines) == 2
        assert lines[0].startswith("big")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        from repro.viz.ascii_chart import overview_strip

        assert overview_strip([]) == "(no groups)"


class TestSvg:
    def test_line_chart_file(self, tmp_path):
        path = svg_line_chart(np.arange(20.0), tmp_path / "line.svg", title="t")
        text = path.read_text()
        assert text.startswith("<svg")
        assert "polyline" in text
        assert ">t<" in text

    def test_similarity_view_connectors(self, tmp_path):
        path = svg_similarity_view(
            [0.0, 1.0, 2.0],
            [0.0, 2.0],
            [(0, 0), (1, 0), (2, 1)],
            tmp_path / "sim.svg",
        )
        text = path.read_text()
        assert text.count("<line") == 3
        assert "stroke-dasharray" in text

    def test_similarity_view_bad_connector(self, tmp_path):
        with pytest.raises(ValidationError):
            svg_similarity_view([0.0, 1.0], [0.0], [(0, 5)], tmp_path / "x.svg")

    def test_radial_chart(self, tmp_path):
        path = svg_radial_chart(np.sin(np.arange(24.0)), tmp_path / "rad.svg")
        text = path.read_text()
        assert "<circle" in text
        assert "polyline" in text

    def test_connected_scatter(self, tmp_path):
        path = svg_connected_scatter(
            [(0.1, 0.1), (0.2, 0.25), (0.3, 0.3)], tmp_path / "sc.svg"
        )
        text = path.read_text()
        assert text.count("<circle") == 3

    def test_connected_scatter_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            svg_connected_scatter([], tmp_path / "bad.svg")
        with pytest.raises(ValidationError):
            svg_connected_scatter([(1.0, 2.0, 3.0)], tmp_path / "bad.svg")

    def test_seasonal_view(self, tmp_path):
        values = np.sin(np.arange(100.0) / 5.0)
        path = svg_seasonal_view(
            values, [(0, 20), (50, 70)], tmp_path / "sea.svg", title="patterns"
        )
        text = path.read_text()
        assert text.count("<rect") == 3  # background + 2 segments

    def test_seasonal_view_bad_segment(self, tmp_path):
        with pytest.raises(ValidationError):
            svg_seasonal_view(np.arange(10.0), [(5, 50)], tmp_path / "bad.svg")
