"""Recovery × serving interleaving (PR 10, satellite 3).

A server that binds before WAL replay finishes must answer honestly
during the warm-up window: ``/ready`` says false with a clean 503,
``/api`` sheds with a ``NotReadyError`` envelope plus ``Retry-After``,
and **no request ever observes partially-replayed state**.  Once
recovery completes and the server flips ready, answers reflect the
fully replayed dataset — fingerprint-identical to the pre-crash state.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.durability import DurabilityManager
from repro.server.http import OnexHttpServer
from repro.server.protocol import Request
from repro.server.service import OnexService
from repro.testing import faults

_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def call(service, op, params, request_id=None):
    response = service.handle(Request(op, dict(params), request_id=request_id))
    assert response.ok, (op, response.error_type, response.error_message)
    return response.result


def make_service(data_dir):
    manager = DurabilityManager(data_dir, wal_sync="never")
    return OnexService(durability=manager)


def seed_durable_state(data_dir, appends=5):
    """Load + append acknowledged mutations; returns the pre-crash view."""
    service = make_service(data_dir)
    call(service, "load_dataset", _LOAD)
    rng = np.random.default_rng(42)
    for i in range(appends):
        call(
            service,
            "append_points",
            {
                "dataset": _DATASET,
                "series": "live",
                "values": [float(v) for v in rng.normal(size=3).cumsum()],
            },
            request_id=f"seed-{i}",
        )
    described = call(service, "describe", {"dataset": _DATASET})
    service.close()
    return described


def http_get(url):
    """(status, json payload) without raising on 503."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_post(url, op, params):
    request = urllib.request.Request(
        f"{url}/api",
        data=json.dumps({"op": op, "params": params}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), json.loads(exc.read())


class TestNotReadyGate:
    def test_unready_server_sheds_and_flips(self):
        service = OnexService()
        with OnexHttpServer(service, ready=False) as server:
            status, payload = http_get(f"{server.url}/ready")
            assert status == 503 and payload["ready"] is False
            health_status, health = http_get(f"{server.url}/health")
            assert health_status == 200  # liveness stays green
            assert health["ready"] is False

            status, headers, envelope = http_post(
                server.url, "list_datasets", {}
            )
            assert status == 503
            assert envelope["ok"] is False
            assert envelope["error"]["type"] == "NotReadyError"
            assert "Retry-After" in headers

            server.set_ready(True)
            status, payload = http_get(f"{server.url}/ready")
            assert status == 200 and payload["ready"] is True
            status, _, envelope = http_post(server.url, "list_datasets", {})
            assert status == 200 and envelope["ok"] is True


class TestRecoveryServingInterleave:
    def test_requests_during_recovery_never_see_partial_state(self, tmp_path):
        data_dir = tmp_path / "durable"
        before = seed_durable_state(data_dir)

        service = make_service(data_dir)
        with OnexHttpServer(service, ready=False) as server:
            # Slow the replay down so the serving window provably
            # overlaps recovery.
            faults.arm("recovery.dataset", "sleep", seconds=1.0, times=1)
            recovered = threading.Event()

            def run_recovery():
                service.recover()
                recovered.set()

            worker = threading.Thread(target=run_recovery)
            worker.start()
            try:
                observed = []
                deadline = time.monotonic() + 10
                while not recovered.is_set() and time.monotonic() < deadline:
                    status, _, envelope = http_post(
                        server.url, "describe", {"dataset": _DATASET}
                    )
                    observed.append((status, envelope))
                    time.sleep(0.05)
            finally:
                worker.join(timeout=30)
            assert recovered.is_set()
            # Every answer inside the window was a clean shed — a 503
            # NotReadyError envelope — never a 200 over half-replayed
            # state and never a raw 500.
            assert observed, "recovery finished before any probe ran"
            for status, envelope in observed:
                assert status == 503
                assert envelope["error"]["type"] == "NotReadyError"

            server.set_ready(True)
            status, _, envelope = http_post(
                server.url, "describe", {"dataset": _DATASET}
            )
            assert status == 200 and envelope["ok"]
            after = envelope["result"]
            assert (
                after["structure_fingerprint"]
                == before["structure_fingerprint"]
            )
            assert after["total_points"] == before["total_points"]
        service.close()

    def test_ready_flip_requires_full_replay(self, tmp_path):
        """The serve wiring contract: ready only flips after recover()
        returns, so a ready server always answers from replayed state."""
        data_dir = tmp_path / "durable"
        before = seed_durable_state(data_dir)
        service = make_service(data_dir)
        with OnexHttpServer(service, ready=False) as server:
            report = service.recover()
            assert report is not None and report.datasets
            server.set_ready(True)
            status, payload = http_get(f"{server.url}/ready")
            assert status == 200 and payload["ready"] is True
            status, _, envelope = http_post(
                server.url,
                "describe",
                {"dataset": _DATASET},
            )
            assert envelope["result"]["structure_fingerprint"] == (
                before["structure_fingerprint"]
            )
        service.close()
