"""Tests for the sharded, vectorised base-construction pipeline (PR 5).

Covers the three layers of the rebuild:

- **Extraction** — the strided window kernel (:mod:`repro.data.windows`)
  against the definitional per-ref gather, at unit and non-unit steps.
- **Clustering** — Hypothesis properties that the batched execution of
  :func:`cluster_subsequence_rows` is *bit-identical* to the retained
  scalar reference, and that the repair rounds re-establish the strict
  mean-L1 radius invariant for every finalized group (including the
  singleton-fallback round at an exhausted budget).
- **Scheduling** — serial, thread-pool, and process-pool builds produce
  structure-fingerprint-identical bases, persist identically, and report
  the per-length telemetry.

Plus the step>1 end-to-end coverage the refinement matrix's row ordering
was missing.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import LengthBuildStats, OnexBase
from repro.core.config import BuildConfig
from repro.core.grouping import cluster_subsequence_rows, cluster_subsequences
from repro.core.query import QueryProcessor
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.windows import (
    rows_to_series_starts,
    window_counts,
    window_matrix,
    window_view,
)
from repro.distances.dtw import dtw_distance
from repro.exceptions import ValidationError

_EPS = 1e-9


def walks(seed, sizes=(20, 16, 24, 12), name="walks"):
    rng = np.random.default_rng(seed)
    return TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in sizes], name=name
    )


# ----------------------------------------------------------------------
# Extraction layer
# ----------------------------------------------------------------------


class TestWindowKernel:
    @pytest.mark.parametrize("step", [1, 2, 3, 5])
    def test_subsequence_matrix_matches_per_ref_gather(self, step):
        ds = walks(7)
        for length in (2, 4, 9, 13):
            matrix, refs = ds.subsequence_matrix(length, step=step)
            assert matrix.shape == (len(refs), length)
            for k, ref in enumerate(refs):
                assert np.array_equal(matrix[k], ds.values(ref))

    def test_window_view_rows_are_windows(self):
        values = np.arange(10.0)
        view = window_view(values, 4, step=2)
        assert view.shape == (4, 4)
        for i in range(4):
            assert np.array_equal(view[i], values[2 * i : 2 * i + 4])

    def test_window_view_short_series_empty(self):
        assert window_view(np.arange(3.0), 5).shape == (0, 5)

    def test_window_counts_match_enumeration(self):
        ds = walks(8)
        for length in (3, 12, 25):
            for step in (1, 2, 4):
                counts = window_counts([len(s) for s in ds], length, step)
                expected = [
                    sum(
                        1
                        for r in ds.iter_subsequences(length, step=step)
                        if r.series_index == i
                    )
                    for i in range(len(ds))
                ]
                assert counts.tolist() == expected

    @pytest.mark.parametrize("step", [1, 3])
    def test_rows_to_series_starts_inverts_enumeration(self, step):
        ds = walks(9)
        length = 5
        refs = list(ds.iter_subsequences(length, step=step))
        counts = window_counts([len(s) for s in ds], length, step)
        rows = np.arange(len(refs))
        series, starts = rows_to_series_starts(rows, counts, step)
        assert [
            SubsequenceRef(int(si), int(stt), length)
            for si, stt in zip(series, starts)
        ] == refs


# ----------------------------------------------------------------------
# Clustering layer (Hypothesis properties)
# ----------------------------------------------------------------------


@st.composite
def matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=180))
    length = draw(st.integers(min_value=2, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["walk", "iid", "dupes"]))
    if kind == "walk":
        matrix = rng.normal(size=(rows, length)).cumsum(axis=1)
    elif kind == "iid":
        matrix = rng.uniform(-1, 1, size=(rows, length))
    else:
        # Repeated rows stress the first-of-ties argmin semantics.
        pool = rng.normal(size=(max(2, rows // 4), length))
        matrix = pool[rng.integers(0, pool.shape[0], size=rows)]
    return matrix


@settings(max_examples=60, deadline=None)
@given(
    matrices(),
    st.floats(min_value=0.01, max_value=1.2),
    st.integers(min_value=0, max_value=4),
)
def test_batched_repair_identical_to_reference(matrix, radius, rounds):
    """Satellite: batched repair/scan == the retained per-draft path."""
    batched = cluster_subsequence_rows(
        matrix, radius, max_repair_rounds=rounds, batched=True
    )
    reference = cluster_subsequence_rows(
        matrix, radius, max_repair_rounds=rounds, batched=False
    )
    assert len(batched) == len(reference)
    for a, b in zip(batched, reference):
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.centroid, b.centroid)
        assert a.ed_radius == b.ed_radius
        assert a.cheb_radius == b.cheb_radius


@settings(max_examples=60, deadline=None)
@given(
    matrices(),
    st.floats(min_value=0.01, max_value=1.2),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)
def test_repair_establishes_radius_invariant(matrix, radius, rounds, batched):
    """After any round budget — including 0, which exercises the
    singleton-fallback path directly — every finalized group strictly
    satisfies the mean-L1 radius invariant and covers every row once."""
    groups = cluster_subsequence_rows(
        matrix, radius, max_repair_rounds=rounds, batched=batched
    )
    seen = np.concatenate([g.rows for g in groups])
    assert sorted(seen.tolist()) == list(range(matrix.shape[0]))
    for g in groups:
        deviations = np.abs(matrix[g.rows] - g.centroid)
        eds = deviations.mean(axis=1)
        assert float(eds.max(initial=0.0)) <= radius + _EPS
        assert float(eds.max(initial=0.0)) <= g.ed_radius + _EPS
        assert float(deviations.max(initial=0.0)) <= g.cheb_radius + _EPS


def test_cluster_subsequences_wrapper_resolves_refs():
    rng = np.random.default_rng(4)
    matrix = rng.normal(size=(40, 6))
    refs = [SubsequenceRef(0, i, 6) for i in range(40)]
    groups = cluster_subsequences(matrix, refs, 0.4)
    rows = cluster_subsequence_rows(matrix, 0.4)
    assert [g.members for g in groups] == [
        tuple(refs[k] for k in rg.rows.tolist()) for rg in rows
    ]


def test_cluster_subsequences_validation_unchanged():
    refs = [SubsequenceRef(0, i, 2) for i in range(3)]
    with pytest.raises(ValidationError, match="2-D"):
        cluster_subsequences(np.zeros(3), refs, 0.5)
    with pytest.raises(ValidationError, match="refs"):
        cluster_subsequences(np.zeros((3, 2)), refs[:2], 0.5)
    with pytest.raises(ValidationError, match="group_radius"):
        cluster_subsequence_rows(np.zeros((3, 2)), 0.0)


# ----------------------------------------------------------------------
# Scheduling layer
# ----------------------------------------------------------------------


BUILD = dict(similarity_threshold=0.1, min_length=4, max_length=8)


def built(dataset, **overrides):
    config = {**BUILD, **overrides}
    base = OnexBase(dataset, BuildConfig(**config))
    base.build()
    return base


class TestParallelBuild:
    def test_workers_and_backends_build_identical_bases(self):
        serial = built(walks(31))
        process = built(walks(31), num_workers=3)
        threads = built(walks(31), num_workers=4, build_executor="thread")
        assert (
            serial.structure_fingerprint()
            == process.structure_fingerprint()
            == threads.structure_fingerprint()
        )
        assert serial._fingerprint() == process._fingerprint()
        assert serial.stats.subsequences == process.stats.subsequences
        assert serial.stats.groups == process.stats.groups
        assert serial.stats.lengths == process.stats.lengths
        process.validate()

    def test_workers_capped_by_length_count(self):
        # More workers than lengths must not break the deterministic merge.
        base = built(walks(32), num_workers=32)
        assert base.structure_fingerprint() == built(walks(32)).structure_fingerprint()

    def test_parallel_build_saves_and_loads_like_serial(self, tmp_path):
        serial = built(walks(33))
        parallel = built(walks(33), num_workers=3)
        serial.save(tmp_path / "serial.npz")
        parallel.save(tmp_path / "parallel.npz")
        loaded_serial = OnexBase.load(tmp_path / "serial.npz", walks(33))
        loaded_parallel = OnexBase.load(tmp_path / "parallel.npz", walks(33))
        assert (
            loaded_serial.structure_fingerprint()
            == loaded_parallel.structure_fingerprint()
            == serial.structure_fingerprint()
        )
        # The archives themselves are interchangeable modulo timings.
        assert loaded_parallel.config == loaded_serial.config
        loaded_parallel.validate()

    def test_num_workers_not_persisted(self, tmp_path):
        parallel = built(walks(34), num_workers=4)
        parallel.save(tmp_path / "base.npz")
        loaded = OnexBase.load(tmp_path / "base.npz", walks(34))
        assert loaded.config.num_workers == 1

    def test_invalid_scheduling_config_rejected(self):
        with pytest.raises(ValidationError, match="num_workers"):
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6,
                        num_workers=0)
        with pytest.raises(ValidationError, match="build_executor"):
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6,
                        build_executor="gpu")


class TestPerLengthTelemetry:
    def test_breakdown_sums_to_totals(self):
        base = built(walks(41), num_workers=2)
        stats = base.stats
        assert [s.length for s in stats.per_length] == base.lengths
        assert sum(s.subsequences for s in stats.per_length) == stats.subsequences
        assert sum(s.groups for s in stats.per_length) == stats.groups
        assert all(s.seconds >= 0.0 for s in stats.per_length)

    def test_breakdown_round_trips_through_save(self, tmp_path):
        base = built(walks(42))
        base.save(tmp_path / "base.npz")
        loaded = OnexBase.load(tmp_path / "base.npz", walks(42))
        assert loaded.stats.per_length == base.stats.per_length

    def test_incremental_ingestion_updates_breakdown(self):
        from repro.data.timeseries import TimeSeries

        base = built(walks(43))
        before = {s.length: s for s in base.stats.per_length}
        rng = np.random.default_rng(43)
        base.add_series(TimeSeries("extra", rng.normal(size=10).cumsum()))
        after = {s.length: s for s in base.stats.per_length}
        for length in base.lengths:
            added = 10 - length + 1 if length <= 10 else 0
            assert after[length].subsequences == before[length].subsequences + added
        assert sum(s.subsequences for s in base.stats.per_length) == (
            base.stats.subsequences
        )

    def test_describe_payload_and_cli_formatting(self, capsys):
        from repro.cli import main

        code = main(
            ["describe", "--source", "matters", "--years", "10",
             "--min-years", "6", "--st", "0.15", "--min-length", "4",
             "--max-length", "6", "--build-workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-length build breakdown:" in out
        assert "len   4:" in out

    def test_describe_json_carries_per_length(self, capsys):
        from repro.cli import main

        code = main(
            ["--json", "describe", "--source", "matters", "--years", "10",
             "--min-years", "6", "--st", "0.15", "--min-length", "4",
             "--max-length", "6"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["length"] for e in payload["per_length"]] == [4, 5, 6]
        assert isinstance(payload["per_length"][0]["seconds"], float)
        assert LengthBuildStats(**payload["per_length"][0]).length == 4


# ----------------------------------------------------------------------
# step > 1 end-to-end (build -> query -> save/load)
# ----------------------------------------------------------------------


class TestStridedStep:
    @pytest.fixture(scope="class")
    def strided_base(self):
        return built(walks(55, sizes=(30, 26, 22)), step=3)

    def test_member_matrix_rows_match_refs_in_group_order(self, strided_base):
        for bucket in strided_base.buckets():
            row = 0
            for g_idx, group in enumerate(bucket.groups):
                values = bucket.member_rows(g_idx)
                for m, ref in enumerate(group.members):
                    assert ref.start % 3 == 0
                    assert np.array_equal(
                        values[m], strided_base.dataset.values(ref)
                    )
                    assert np.array_equal(
                        bucket.member_matrix[row],
                        strided_base.dataset.values(ref),
                    )
                    row += 1

    def test_exact_query_hits_true_best_indexed_window(self, strided_base):
        from repro.core.config import QueryConfig

        rng = np.random.default_rng(56)
        query = rng.uniform(size=5)
        processor = QueryProcessor(strided_base, QueryConfig(mode="exact"))
        match = processor.best_match(query, normalize=False)
        # Brute force over exactly the step-grid windows the base indexes.
        best = min(
            (
                dtw_distance(
                    query, strided_base.dataset.values(ref), normalized=True
                ),
                ref,
            )
            for length in strided_base.lengths
            for ref in strided_base.dataset.iter_subsequences(length, step=3)
        )
        assert match.distance == pytest.approx(best[0], abs=1e-9)

    def test_step_survives_save_load_and_queries_identically(
        self, strided_base, tmp_path
    ):
        from repro.core.config import QueryConfig

        path = tmp_path / "strided.npz"
        strided_base.save(path)
        loaded = OnexBase.load(path, walks(55, sizes=(30, 26, 22)))
        assert loaded.config.step == 3
        assert (
            loaded.structure_fingerprint()
            == strided_base.structure_fingerprint()
        )
        rng = np.random.default_rng(57)
        query = rng.uniform(size=6)
        a = QueryProcessor(
            strided_base, QueryConfig(mode="exact")
        ).best_match(query, normalize=False)
        b = QueryProcessor(loaded, QueryConfig(mode="exact")).best_match(
            query, normalize=False
        )
        assert a.ref == b.ref and a.distance == pytest.approx(b.distance)

    def test_parallel_strided_build_identical(self):
        serial = built(walks(58, sizes=(30, 26, 22)), step=2)
        parallel = built(
            walks(58, sizes=(30, 26, 22)), step=2, num_workers=3
        )
        assert (
            serial.structure_fingerprint() == parallel.structure_fingerprint()
        )


# ----------------------------------------------------------------------
# Member-matrix rebuild path (pre-v2 archives)
# ----------------------------------------------------------------------


def test_ensure_member_matrix_strided_rebuild_matches_values():
    from repro.core.base import LengthBucket

    base = built(walks(61))
    for length in base.lengths:
        bucket = base.bucket(length)
        rebuilt = LengthBucket(length, list(bucket.groups), None)
        matrix = rebuilt.ensure_member_matrix(base.dataset)
        expected = np.vstack(
            [
                base.dataset.values(ref)
                for g in bucket.groups
                for ref in g.members
            ]
        )
        assert np.array_equal(matrix, expected)
