"""Integration tests for repro.server.service (the demo's backend)."""

import pytest

from repro.server.protocol import Request
from repro.server.service import OnexService


@pytest.fixture(scope="module")
def service():
    svc = OnexService()
    resp = svc.handle(
        Request(
            "load_dataset",
            {
                "source": "matters",
                "similarity_threshold": 0.08,
                "min_length": 4,
                "max_length": 6,
                "years": 12,
                "min_years": 8,
            },
        )
    )
    assert resp.ok, resp.error_message
    return svc


class TestLoading:
    def test_load_reports_compaction(self, service):
        resp = service.handle(Request("list_datasets"))
        assert resp.ok
        assert resp.result["datasets"] == ["MATTERS-sim"]

    def test_load_electricity(self):
        svc = OnexService()
        resp = svc.handle(
            Request(
                "load_dataset",
                {
                    "source": "electricity",
                    "households": 2,
                    "similarity_threshold": 0.06,
                    "min_length": 4,
                    "max_length": 5,
                },
            )
        )
        assert resp.ok
        assert resp.result["dataset"] == "ElectricityLoad-sim"
        assert resp.result["compaction_ratio"] > 1.0

    def test_load_ucr_file(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("1,0.5,0.6,0.7,0.8,0.9,1.0\n2,0.9,0.8,0.7,0.6,0.5,0.4\n")
        svc = OnexService()
        resp = svc.handle(
            Request(
                "load_dataset",
                {"source": f"ucr:{path}", "similarity_threshold": 0.1,
                 "min_length": 3, "max_length": 4},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["series"] == 2

    def test_unknown_source(self):
        svc = OnexService()
        resp = svc.handle(Request("load_dataset", {"source": "nasdaq"}))
        assert not resp.ok
        assert resp.error_type == "ProtocolError"

    def test_unload(self):
        svc = OnexService()
        svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 4},
            )
        )
        resp = svc.handle(Request("unload_dataset", {"dataset": "ElectricityLoad-sim"}))
        assert resp.ok
        assert svc.handle(Request("list_datasets")).result["datasets"] == []


class TestExploration:
    def test_describe(self, service):
        resp = service.handle(Request("describe", {"dataset": "MATTERS-sim"}))
        assert resp.ok
        assert resp.result["series"] == 250
        assert resp.result["groups"] > 0
        assert "MA/GrowthRate" in resp.result["series_names"]

    def test_overview(self, service):
        resp = service.handle(
            Request("overview", {"dataset": "MATTERS-sim", "limit": 5})
        )
        assert resp.ok
        assert resp.result["view"] == "overview"
        assert 1 <= len(resp.result["groups"]) <= 5
        assert resp.result["groups"][0]["intensity"] == 1.0

    def test_query_preview(self, service):
        resp = service.handle(
            Request(
                "query_preview",
                {"dataset": "MATTERS-sim", "series": "MA/GrowthRate",
                 "start": 0, "length": 5},
            )
        )
        assert resp.ok
        assert resp.result["brush"] == {"start": 0, "length": 5}
        assert len(resp.result["selection"]) == 5

    def test_best_match_with_brushed_query(self, service):
        resp = service.handle(
            Request(
                "best_match",
                {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "MA/GrowthRate", "start": 0, "length": 5},
                },
            )
        )
        assert resp.ok, resp.error_message
        payload = resp.result
        assert payload["view"] == "similarity"
        assert payload["distance"] >= 0
        assert payload["connectors"]
        assert len(payload["query"]) == 5

    def test_best_match_with_raw_values(self, service):
        resp = service.handle(
            Request(
                "best_match",
                {"dataset": "MATTERS-sim", "query": [1.0, 1.5, 2.0, 2.5]},
            )
        )
        assert resp.ok
        assert resp.result["match_series"]

    def test_k_best(self, service):
        resp = service.handle(
            Request(
                "k_best",
                {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "CA/GrowthRate", "start": 0, "length": 5},
                    "k": 3,
                },
            )
        )
        assert resp.ok
        matches = resp.result["matches"]
        assert len(matches) == 3
        dists = [m["distance"] for m in matches]
        assert dists == sorted(dists)

    def test_query_batch(self, service):
        queries = [
            {"series": "CA/GrowthRate", "start": 0, "length": 5},
            {"series": "NY/GrowthRate", "start": 2, "length": 5},
            [0.2, 0.4, 0.5, 0.3, 0.1],
        ]
        resp = service.handle(
            Request(
                "query_batch",
                {"dataset": "MATTERS-sim", "queries": queries, "k": 2},
            )
        )
        assert resp.ok, resp.error_message
        results = resp.result["results"]
        assert len(results) == 3
        for entry, query in zip(results, queries):
            assert len(entry["matches"]) == 2
            single = service.handle(
                Request(
                    "k_best",
                    {"dataset": "MATTERS-sim", "query": query, "k": 2},
                )
            )
            assert single.ok
            want = [
                (m["match_series"], m["match_start"], m["distance"])
                for m in single.result["matches"]
            ]
            got = [
                (m["match_series"], m["match_start"], m["distance"])
                for m in entry["matches"]
            ]
            assert got == want

    def test_query_batch_rejects_empty(self, service):
        resp = service.handle(
            Request("query_batch", {"dataset": "MATTERS-sim", "queries": []})
        )
        assert not resp.ok
        assert "non-empty" in resp.error_message

    def test_matches_within(self, service):
        resp = service.handle(
            Request(
                "matches_within",
                {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "NY/GrowthRate", "start": 0, "length": 5},
                    "threshold": 0.03,
                },
            )
        )
        assert resp.ok
        for m in resp.result["matches"]:
            assert m["distance"] <= 0.03 + 1e-12

    def test_seasonal(self, service):
        resp = service.handle(
            Request(
                "seasonal",
                {"dataset": "MATTERS-sim", "series": "MA/GrowthRate",
                 "length": 4, "threshold": 0.08, "step": 1},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["view"] == "seasonal"

    def test_thresholds(self, service):
        resp = service.handle(Request("thresholds", {"dataset": "MATTERS-sim", "length": 5}))
        assert resp.ok
        assert resp.result["default"] > 0

    def test_sensitivity(self, service):
        resp = service.handle(
            Request(
                "sensitivity",
                {
                    "dataset": "MATTERS-sim",
                    "query": {"series": "MA/GrowthRate", "start": 0, "length": 5},
                    "thresholds": [0.02, 0.05, 0.1],
                    "verify": True,
                },
            )
        )
        assert resp.ok, resp.error_message
        payload = resp.result
        assert payload["view"] == "sensitivity"
        assert len(payload["certain"]) == 3
        for certain, exact, possible in zip(
            payload["certain"], payload["exact"], payload["possible"]
        ):
            assert certain <= exact <= possible

    def test_add_series_then_query(self):
        svc = OnexService()
        svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 5},
            )
        )
        resp = svc.handle(
            Request(
                "add_series",
                {"dataset": "ElectricityLoad-sim", "name": "late-arrival",
                 "values": [12.0, 13.5, 11.0, 12.5, 14.0, 13.0]},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["windows"] == (6 - 4 + 1) + (6 - 5 + 1)
        match = svc.handle(
            Request(
                "best_match",
                {"dataset": "ElectricityLoad-sim",
                 "query": {"series": "late-arrival", "start": 0, "length": 5}},
            )
        )
        assert match.ok
        # Fast mode (the service default) guarantees a match within the
        # similarity threshold for an indexed query, not exactness.
        assert match.result["distance"] <= 0.1

    def test_save_base(self, service, tmp_path):
        path = tmp_path / "matters-base.npz"
        resp = service.handle(
            Request("save_base", {"dataset": "MATTERS-sim", "path": str(path)})
        )
        assert resp.ok, resp.error_message
        assert path.exists()

    def test_engine_error_becomes_response(self, service):
        resp = service.handle(Request("describe", {"dataset": "missing"}))
        assert not resp.ok
        assert resp.error_type == "DatasetError"

    def test_handle_raw_json(self, service):
        resp = service.handle('{"op": "list_datasets"}')
        assert resp.ok

    def test_handle_malformed_json(self, service):
        resp = service.handle("{broken")
        assert not resp.ok
        assert resp.error_type == "ProtocolError"


class TestStreamOps:
    @pytest.fixture()
    def svc(self):
        svc = OnexService()
        resp = svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 6},
            )
        )
        assert resp.ok, resp.error_message
        return svc

    def test_append_points_creates_and_extends(self, svc):
        resp = svc.handle(
            Request(
                "append_points",
                {"dataset": "ElectricityLoad-sim", "series": "live",
                 "values": [10.0, 11.0, 12.0, 11.5]},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["points"] == 4
        assert resp.result["windows"] == 1  # the first length-4 window
        resp = svc.handle(
            Request(
                "append_points",
                {"dataset": "ElectricityLoad-sim", "series": "live",
                 "values": [12.5]},
            )
        )
        assert resp.ok
        assert resp.result["total_points"] == 5
        assert resp.result["windows"] == 2  # lengths 4 and 5 complete

    def test_monitor_lifecycle_and_events(self, svc):
        resp = svc.handle(
            Request(
                "register_monitor",
                {"dataset": "ElectricityLoad-sim",
                 "pattern": [10.0, 12.0, 14.0, 12.0, 10.0],
                 "series": "live", "monitor": "ramp"},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["monitor"] == "ramp"
        assert resp.result["pattern_length"] == 5
        # Replay the pattern itself: a certain match.
        resp = svc.handle(
            Request(
                "append_points",
                {"dataset": "ElectricityLoad-sim", "series": "live",
                 "values": [10.0, 12.0, 14.0, 12.0, 10.0]},
            )
        )
        assert resp.ok
        assert resp.result["events"], "replaying the pattern must fire events"
        polled = svc.handle(
            Request("poll_events", {"dataset": "ElectricityLoad-sim"})
        )
        assert polled.ok
        assert polled.result["events"]
        assert polled.result["last_seq"] >= len(polled.result["events"])
        assert polled.result["monitors"][0]["monitor"] == "ramp"
        # Incremental polling from the last seen seq returns nothing new.
        last = polled.result["events"][-1]["seq"]
        again = svc.handle(
            Request(
                "poll_events",
                {"dataset": "ElectricityLoad-sim", "since": last},
            )
        )
        assert again.ok
        assert again.result["events"] == []
        resp = svc.handle(
            Request(
                "unregister_monitor",
                {"dataset": "ElectricityLoad-sim", "monitor": "ramp"},
            )
        )
        assert resp.ok
        resp = svc.handle(
            Request(
                "unregister_monitor",
                {"dataset": "ElectricityLoad-sim", "monitor": "ramp"},
            )
        )
        assert not resp.ok
        assert resp.error_type == "DatasetError"

    def test_register_monitor_with_brushed_pattern(self, svc):
        resp = svc.handle(
            Request(
                "register_monitor",
                {"dataset": "ElectricityLoad-sim",
                 "pattern": {"series": "household-0", "start": 3, "length": 6},
                 "epsilon": 2.5},
            )
        )
        assert resp.ok, resp.error_message
        assert resp.result["pattern_length"] == 6
        assert resp.result["epsilon"] == 2.5

    def test_append_points_unknown_dataset_fails(self, svc):
        resp = svc.handle(
            Request(
                "append_points",
                {"dataset": "ghost", "series": "x", "values": [1.0]},
            )
        )
        assert not resp.ok
        assert resp.error_type == "DatasetError"


class TestStreamReadPath:
    def test_poll_before_any_streaming_is_empty_and_side_effect_free(self):
        svc = OnexService()
        svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 5},
            )
        )
        resp = svc.handle(
            Request("poll_events", {"dataset": "ElectricityLoad-sim"})
        )
        assert resp.ok, resp.error_message
        assert resp.result == {
            "events": [], "last_seq": 0, "monitors": [], "dropped": 0
        }
        # The read did not create the stream machinery.
        entry = svc.engine._entry("ElectricityLoad-sim")
        assert entry.ingestor is None

    def test_flush_monitors_op(self):
        svc = OnexService()
        svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 6},
            )
        )
        resp = svc.handle(
            Request("flush_monitors", {"dataset": "ElectricityLoad-sim"})
        )
        assert resp.ok
        assert resp.result == {"events": []}
        svc.handle(
            Request(
                "register_monitor",
                {"dataset": "ElectricityLoad-sim",
                 "pattern": [10.0, 12.0, 14.0, 12.0, 10.0], "series": "live",
                 "epsilon": 0.3},
            )
        )
        svc.handle(
            Request(
                "append_points",
                {"dataset": "ElectricityLoad-sim", "series": "live",
                 "values": [10.0, 12.0, 14.0, 12.0, 10.0]},
            )
        )
        resp = svc.handle(
            Request("flush_monitors", {"dataset": "ElectricityLoad-sim"})
        )
        assert resp.ok
        assert resp.result["events"], "tail match must flush"
        assert resp.result["events"][-1]["kind"] == "match"


class TestUnexpectedErrorGuard:
    """Regression: a handler bug must return a structured failure, not
    propagate and sever the connection mid-request."""

    def test_unexpected_exception_becomes_internal_error(self, service):
        def exploding_handler(params):
            raise AttributeError("handler bug")

        original = service._op_describe
        service._op_describe = exploding_handler
        try:
            resp = service.handle(
                Request("describe", {"dataset": "MATTERS-sim"})
            )
        finally:
            service._op_describe = original
        assert not resp.ok
        assert resp.error_type == "InternalError"
        assert "AttributeError" in resp.error_message
        assert "handler bug" in resp.error_message

    def test_numpy_style_exception_becomes_internal_error(self, service):
        import numpy as np

        def exploding_handler(params):
            with np.errstate(divide="raise"):
                return np.float64(1.0) / np.float64(0.0)

        original = service._op_describe
        service._op_describe = exploding_handler
        try:
            resp = service.handle(
                Request("describe", {"dataset": "MATTERS-sim"})
            )
        finally:
            service._op_describe = original
        assert not resp.ok
        assert resp.error_type == "InternalError"
        assert "FloatingPointError" in resp.error_message

    def test_contract_errors_keep_their_own_type(self, service):
        resp = service.handle(Request("describe", {"dataset": "missing"}))
        assert not resp.ok
        assert resp.error_type == "DatasetError"
