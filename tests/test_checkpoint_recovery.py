"""Checkpoint and recovery tests (repro.durability).

Covers the manifest commit protocol (atomic replace, two-deep retention,
sha-verified fallback), and in-process crash/recover cycles through the
service: every acknowledged mutating op survives, recovered state is
*identical* (structure fingerprint and query results) to the pre-crash
state, event sequence numbers stay monotonic, and the idempotency window
is reseeded so post-restart client retries still dedupe.  Subprocess
SIGKILL chaos lives in test_durability_chaos.py.
"""

import json

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.data.dataset import TimeSeriesDataset
from repro.durability import DurabilityManager, dataset_slug
from repro.durability import checkpoint as cp
from repro.server.protocol import Request
from repro.server.service import OnexService
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def make_base(seed=301):
    rng = np.random.default_rng(seed)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=18).cumsum() for _ in range(3)], name="ckpt-base"
    )
    base = OnexBase(
        ds,
        BuildConfig(similarity_threshold=0.15, min_length=4, max_length=6),
    )
    base.build()
    return base


class TestCheckpointModule:
    def test_write_load_round_trip(self, tmp_path):
        base = make_base()
        stream_state = {
            "event_seq": 7,
            "monitors": [],
            "stream_counters": {"points_ingested": 3, "windows_indexed": 9},
        }
        entry = cp.write_checkpoint(
            tmp_path, base, wal_seq=5, stream_state=stream_state
        )
        assert entry["seq"] == 5 and entry["event_seq"] == 7
        picked = cp.latest_valid_checkpoint(tmp_path)
        assert picked == entry
        dataset, loaded = cp.load_checkpoint(tmp_path, picked)
        assert dataset.name == base.raw_dataset.name
        assert loaded.structure_fingerprint() == base.structure_fingerprint()

    def test_retention_keeps_two_and_unlinks_older_artifacts(self, tmp_path):
        base = make_base()
        for seq in (1, 2, 3):
            cp.write_checkpoint(tmp_path, base, wal_seq=seq)
        manifest = cp.read_manifest(tmp_path)
        assert [c["seq"] for c in manifest["checkpoints"]] == [2, 3]
        assert not (tmp_path / "base-1.npz").exists()
        assert not (tmp_path / "data-1.npz").exists()
        assert (tmp_path / "base-2.npz").exists()

    def test_falls_back_when_newest_artifact_is_corrupt(self, tmp_path):
        base = make_base()
        cp.write_checkpoint(tmp_path, base, wal_seq=1)
        cp.write_checkpoint(tmp_path, base, wal_seq=2)
        (tmp_path / "base-2.npz").write_bytes(b"bitrot")
        picked = cp.latest_valid_checkpoint(tmp_path)
        assert picked["seq"] == 1
        dataset, loaded = cp.load_checkpoint(tmp_path, picked)
        assert loaded.structure_fingerprint() == base.structure_fingerprint()

    def test_falls_back_when_newest_artifact_is_missing(self, tmp_path):
        base = make_base()
        cp.write_checkpoint(tmp_path, base, wal_seq=1)
        cp.write_checkpoint(tmp_path, base, wal_seq=2)
        (tmp_path / "data-2.npz").unlink()
        assert cp.latest_valid_checkpoint(tmp_path)["seq"] == 1

    def test_manifest_failpoint_leaves_previous_commit(self, tmp_path):
        """A crash before the manifest replace keeps the old checkpoint
        authoritative — half-written artifacts are invisible garbage."""
        base = make_base()
        cp.write_checkpoint(tmp_path, base, wal_seq=1)
        with faults.inject("checkpoint.manifest", "raise"):
            with pytest.raises(faults.FaultInjectedError):
                cp.write_checkpoint(tmp_path, base, wal_seq=2)
        manifest = cp.read_manifest(tmp_path)
        assert [c["seq"] for c in manifest["checkpoints"]] == [1]
        assert cp.latest_valid_checkpoint(tmp_path)["seq"] == 1

    def test_garbled_manifest_reads_as_no_checkpoints(self, tmp_path):
        (tmp_path / cp.MANIFEST_NAME).write_text("{not json")
        assert cp.read_manifest(tmp_path) is None
        assert cp.latest_valid_checkpoint(tmp_path) is None
        (tmp_path / cp.MANIFEST_NAME).write_text(json.dumps({"no": "key"}))
        assert cp.read_manifest(tmp_path) is None


class TestDatasetSlug:
    def test_safe_names_unchanged(self):
        assert dataset_slug("MATTERS-sim") == "MATTERS-sim"
        assert dataset_slug("a.b_c-4") == "a.b_c-4"

    def test_exotic_names_get_hash_suffix_and_never_collide(self):
        a, b = dataset_slug("a/b"), dataset_slug("a_b")
        assert a != b and a != "a_b"
        assert dataset_slug("a/b") == a  # stable
        assert "/" not in dataset_slug("x/../../etc")

    def test_empty_name(self):
        slug = dataset_slug("")
        assert slug and "/" not in slug


# ---------------------------------------------------------------------------
# Service-level crash/recover cycles (in-process)
# ---------------------------------------------------------------------------

_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"
_QUERY = {"dataset": _DATASET, "query": [0.1, 0.3, 0.2, 0.4], "k": 2}


def call(service, op, params, request_id=None):
    response = service.handle(Request(op, dict(params), request_id=request_id))
    assert response.ok, (op, response.error_type, response.error_message)
    return response.result


def make_service(data_dir, **kwargs):
    kwargs.setdefault("wal_sync", "never")  # tests simulate SIGKILL, not power loss
    manager = DurabilityManager(data_dir, **kwargs)
    return OnexService(durability=manager)


def seed_state(service, appends=6):
    """Load + monitor + a run of keyed mutating ops; returns pre-crash view."""
    call(service, "load_dataset", _LOAD)
    call(
        service,
        "register_monitor",
        {
            "dataset": _DATASET,
            "pattern": [0.1, 0.5, 0.2, 0.6],
            "epsilon": 50.0,
            "series": "live",
            "monitor": "m1",
        },
        request_id="req-mon",
    )
    rng = np.random.default_rng(99)
    for i in range(appends):
        call(
            service,
            "append_points",
            {
                "dataset": _DATASET,
                "series": "live",
                "values": [float(v) for v in rng.normal(size=3).cumsum()],
            },
            request_id=f"req-{i}",
        )
    call(
        service,
        "add_series",
        {
            "dataset": _DATASET,
            "name": "bulk",
            "values": [0.4, 0.1, 0.9, 0.3, 0.8],
        },
        request_id="req-add",
    )
    return {
        "fingerprint": call(service, "describe", {"dataset": _DATASET})[
            "structure_fingerprint"
        ],
        "matches": call(service, "k_best", _QUERY)["matches"],
        "events": call(service, "poll_events", {"dataset": _DATASET}),
    }


class TestServiceRecovery:
    def test_recovered_state_is_identical(self, tmp_path):
        # checkpoint_every high: only the load-time checkpoint commits, so
        # recovery replays the *entire* mutation history through the same
        # handlers — the strongest determinism exercise.
        service = make_service(tmp_path, checkpoint_every=100)
        before = seed_state(service)
        # Crash: no close(), no checkpoint — a second service recovers
        # purely from what already hit the data dir.
        revived = make_service(tmp_path, checkpoint_every=100)
        report = revived.recover()
        assert not report.errors
        assert _DATASET in report.datasets
        summary = report.datasets[_DATASET]
        assert summary["replayed"] == 8  # monitor + 6 appends + add_series
        assert summary["torn_bytes"] == 0
        assert summary["fingerprint"] == before["fingerprint"]
        after_fp = call(revived, "describe", {"dataset": _DATASET})[
            "structure_fingerprint"
        ]
        assert after_fp == before["fingerprint"]
        assert call(revived, "k_best", _QUERY)["matches"] == before["matches"]
        events = call(revived, "poll_events", {"dataset": _DATASET})
        assert events["last_seq"] == before["events"]["last_seq"]
        assert [m["monitor"] for m in events["monitors"]] == ["m1"]

    def test_recovery_with_mid_run_checkpoints(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=3)
        before = seed_state(service)
        handle = service.durability.get(_DATASET)
        assert handle.checkpoint_seq > 0  # cadence fired mid-run
        revived = make_service(tmp_path, checkpoint_every=3)
        report = revived.recover()
        assert not report.errors
        summary = report.datasets[_DATASET]
        assert summary["replayed"] < 8  # the checkpoint absorbed a prefix
        assert summary["fingerprint"] == before["fingerprint"]
        assert call(revived, "k_best", _QUERY)["matches"] == before["matches"]

    def test_event_seq_monotonic_across_restart(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=100)
        before = seed_state(service)
        pre_seqs = [e["seq"] for e in before["events"]["events"]]
        assert pre_seqs, "the wide-epsilon monitor must have fired"
        revived = make_service(tmp_path, checkpoint_every=100)
        revived.recover()
        result = call(
            revived,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [9.0, 1.0, 8.0]},
            request_id="req-post",
        )
        fresh = [e["seq"] for e in result["events"]]
        assert fresh and min(fresh) > max(pre_seqs)
        polled = call(revived, "poll_events", {"dataset": _DATASET})
        seqs = [e["seq"] for e in polled["events"]]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_retry_of_replayed_request_dedupes(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=100)
        seed_state(service)
        length_before = len(
            call(service, "query_preview", {"dataset": _DATASET, "series": "live"})[
                "values"
            ]
        )
        revived = make_service(tmp_path, checkpoint_every=100)
        revived.recover()
        # The retry of a tail-replayed request returns the re-executed
        # response without mutating again.
        result = call(
            revived,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0]},
            request_id="req-3",
        )
        assert "windows" in result  # the real append summary, not a marker
        length_after = len(
            call(revived, "query_preview", {"dataset": _DATASET, "series": "live"})[
                "values"
            ]
        )
        assert length_after == length_before

    def test_retry_of_checkpoint_covered_request_dedupes(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=3)
        seed_state(service)
        handle = service.durability.get(_DATASET)
        covered = handle.checkpoint_seq
        revived = make_service(tmp_path, checkpoint_every=3)
        report = revived.recover()
        length_before = len(
            call(revived, "query_preview", {"dataset": _DATASET, "series": "live"})[
                "values"
            ]
        )
        # Pick a request whose record is checkpoint-covered but retained
        # by compaction (everything after the *previous* checkpoint).
        retained = {r.seq: r for r in revived.durability.get(_DATASET).wal.records()}
        candidates = [
            r for r in retained.values() if r.seq <= covered and r.request_id
        ]
        assert candidates, (covered, sorted(retained))
        record = candidates[-1]
        response = revived.handle(
            Request(record.op, dict(record.params), request_id=record.request_id)
        )
        assert response.ok
        assert response.result.get("deduplicated") is True
        assert response.result.get("recovered") is True
        length_after = len(
            call(revived, "query_preview", {"dataset": _DATASET, "series": "live"})[
                "values"
            ]
        )
        assert length_after == length_before
        assert report.datasets[_DATASET]["checkpoint_seq"] == covered

    def test_unacknowledged_write_is_not_resurrected(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=100)
        call(service, "load_dataset", _LOAD)
        call(
            service,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0, 4.0]},
            request_id="req-ok",
        )
        with faults.inject("wal.written", "torn-tail", cut_bytes=3):
            response = service.handle(
                Request(
                    "append_points",
                    {"dataset": _DATASET, "series": "live", "values": [9.0]},
                    request_id="req-torn",
                )
            )
        assert not response.ok  # never acknowledged
        revived = make_service(tmp_path, checkpoint_every=100)
        report = revived.recover()
        assert not report.errors
        assert report.datasets[_DATASET]["torn_bytes"] > 0
        values = call(
            revived, "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        assert len(values) == 4  # only the acknowledged append
        # And the failed request was never recorded: its retry executes.
        result = call(
            revived,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [9.0]},
            request_id="req-torn",
        )
        assert "deduplicated" not in result

    def test_dataset_without_checkpoint_reports_error(self, tmp_path):
        slug_dir = tmp_path / "ghost"
        slug_dir.mkdir()
        (slug_dir / "dataset.json").write_text(json.dumps({"dataset": "ghost"}))
        service = make_service(tmp_path)
        report = service.recover()
        assert report.datasets == {}
        assert len(report.errors) == 1
        assert report.errors[0]["dataset"] == "ghost"
        assert "checkpoint" in report.errors[0]["error"]

    def test_unload_deletes_durable_state(self, tmp_path):
        service = make_service(tmp_path)
        call(service, "load_dataset", _LOAD)
        slug_dir = tmp_path / dataset_slug(_DATASET)
        assert slug_dir.is_dir()
        call(service, "unload_dataset", {"dataset": _DATASET})
        assert not slug_dir.exists()
        assert service.durability.stored_datasets() == []

    def test_durability_status_surface(self, tmp_path):
        service = make_service(tmp_path, checkpoint_every=100)
        seed_state(service)
        revived = make_service(tmp_path, checkpoint_every=100)
        revived.recover()
        status = revived.durability_status()
        assert status["data_dir"] == str(tmp_path)
        per_dataset = status["datasets"][_DATASET]
        assert per_dataset["wal_seq"] >= per_dataset["checkpoint_seq"]
        assert status["last_recovery"]["replayed_records"] == 8
        assert status["last_recovery"]["errors"] == []

    def test_dedup_within_one_lifetime(self, tmp_path):
        """The always-on idempotency window, no restart involved."""
        service = OnexService()  # no durability at all
        call(service, "load_dataset", _LOAD)
        first = call(
            service,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0, 4.0]},
            request_id="req-dup",
        )
        second = call(
            service,
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0, 4.0]},
            request_id="req-dup",
        )
        assert second == first
        values = call(
            service, "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        assert len(values) == 4
