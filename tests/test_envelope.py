"""Unit tests for repro.distances.envelope."""

import numpy as np
import pytest

from repro.distances.envelope import keogh_envelope, sliding_max, sliding_min
from repro.exceptions import ValidationError


def naive_envelope(values, radius):
    values = np.asarray(values, dtype=float)
    n = len(values)
    lower = np.empty(n)
    upper = np.empty(n)
    for i in range(n):
        lo = max(0, i - radius)
        hi = min(n, i + radius + 1)
        lower[i] = values[lo:hi].min()
        upper[i] = values[lo:hi].max()
    return lower, upper


class TestSlidingExtremes:
    def test_radius_zero_is_identity(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert sliding_max(values, 0).tolist() == values
        assert sliding_min(values, 0).tolist() == values

    def test_matches_naive_on_random_data(self):
        rng = np.random.default_rng(31)
        for radius in (0, 1, 2, 5, 20):
            values = rng.normal(size=40)
            lower, upper = keogh_envelope(values, radius)
            ref_lower, ref_upper = naive_envelope(values, radius)
            assert np.allclose(lower, ref_lower)
            assert np.allclose(upper, ref_upper)

    def test_radius_larger_than_input(self):
        values = [2.0, 9.0, 4.0]
        lower, upper = keogh_envelope(values, 100)
        assert lower.tolist() == [2.0, 2.0, 2.0]
        assert upper.tolist() == [9.0, 9.0, 9.0]

    def test_single_point(self):
        lower, upper = keogh_envelope([7.0], 3)
        assert lower.tolist() == [7.0]
        assert upper.tolist() == [7.0]

    def test_envelope_contains_input(self):
        rng = np.random.default_rng(33)
        values = rng.normal(size=64)
        for radius in (1, 3, 7):
            lower, upper = keogh_envelope(values, radius)
            assert (lower <= values).all()
            assert (values <= upper).all()

    def test_envelope_widens_with_radius(self):
        rng = np.random.default_rng(34)
        values = rng.normal(size=30)
        l1, u1 = keogh_envelope(values, 1)
        l4, u4 = keogh_envelope(values, 4)
        assert (l4 <= l1).all()
        assert (u4 >= u1).all()

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            keogh_envelope([1.0], -1)
        with pytest.raises(ValidationError):
            sliding_max([1.0], -2)
        with pytest.raises(ValidationError):
            sliding_min([1.0], -2)
