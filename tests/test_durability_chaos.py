"""Kill -9 chaos suite: a real server process, really killed.

Each scenario starts ``python -m repro serve --data-dir ...`` as a
subprocess, drives it over HTTP, SIGKILLs it (no drain, no atexit, no
flush), restarts it over the same data dir, and asserts the recovery
invariants from DESIGN.md §8:

- every *acknowledged* mutating op survives — structure fingerprint and
  query results equal a never-crashed in-process reference;
- at most the single in-flight (unacknowledged) op at kill time may be
  missing, and a torn final WAL record is dropped, never repaired;
- the idempotency window is reseeded: a pre-crash request id retried
  after the restart does not double-execute;
- /health reports the per-dataset wal/checkpoint positions and the
  recovery summary.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.durability import dataset_slug
from repro.server.client import OnexClient
from repro.server.protocol import Request
from repro.server.service import OnexService

REPO_ROOT = Path(__file__).resolve().parent.parent

_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"
_QUERY = {"dataset": _DATASET, "query": [0.1, 0.3, 0.2, 0.4], "k": 2}
_MONITOR = {
    "dataset": _DATASET,
    "pattern": [0.1, 0.5, 0.2, 0.6],
    "epsilon": 50.0,
    "series": "live",
    "monitor": "m1",
}


class ServerProcess:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, data_dir, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--data-dir",
                str(data_dir),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.banner = []
        self.url = None
        deadline = time.monotonic() + 120
        for line in self.proc.stdout:
            self.banner.append(line.rstrip("\n"))
            match = re.search(r"listening on (http://\S+)", line)
            if match:
                self.url = match.group(1)
                break
            if time.monotonic() > deadline:
                break
        if self.url is None:
            raise RuntimeError(
                f"server never announced a URL:\n" + "\n".join(self.banner)
            )
        # The server binds (and prints the URL) *before* recovery runs,
        # so later startup lines — the recovery report, the pool banner
        # — arrive on stdout after this point; keep draining them.
        self._drain = threading.Thread(target=self._drain_stdout, daemon=True)
        self._drain.start()
        self._wait_ready()

    def _drain_stdout(self):
        for line in self.proc.stdout:
            self.banner.append(line.rstrip("\n"))

    def _wait_ready(self):
        """Ready flips only after recovery completes (bind-first serve)."""
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(f"{self.url}/ready", timeout=5) as r:
                    if json.loads(r.read()).get("ready"):
                        return
            except Exception:
                time.sleep(0.05)
        raise RuntimeError("server never became ready")

    def wait_banner_line(self, needle, timeout=10.0):
        """Whether *needle* shows up in the drained stdout lines."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if any(needle in line for line in self.banner):
                return True
            time.sleep(0.02)
        return any(needle in line for line in self.banner)

    def kill9(self):
        self.proc.kill()  # SIGKILL: no handlers, no flush, no goodbye
        self.proc.wait(timeout=30)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        drain = getattr(self, "_drain", None)
        if drain is not None:
            drain.join(timeout=10)  # EOF after the process died
        self.proc.stdout.close()


@pytest.fixture()
def spawn():
    servers = []

    def _spawn(data_dir, *extra_args):
        server = ServerProcess(data_dir, *extra_args)
        servers.append(server)
        return server

    yield _spawn
    for server in servers:
        server.cleanup()


def _chunks(count, size=3, seed=7):
    rng = np.random.default_rng(seed)
    return [[float(v) for v in rng.normal(size=size).cumsum()] for _ in range(count)]


def _reference_state(chunks):
    """The never-crashed oracle: same op sequence, one process, no kill."""
    service = OnexService()
    ops = [("load_dataset", _LOAD), ("register_monitor", _MONITOR)] + [
        (
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": chunk},
        )
        for chunk in chunks
    ]
    for op, params in ops:
        response = service.handle(Request(op, dict(params)))
        assert response.ok, (op, response.error_type, response.error_message)
    describe = service.handle(
        Request("describe", {"dataset": _DATASET})
    ).result
    matches = service.handle(Request("k_best", dict(_QUERY))).result["matches"]
    return describe["structure_fingerprint"], matches


class TestKillAndRecover:
    def test_acked_state_identical_to_never_crashed_reference(
        self, tmp_path, spawn
    ):
        chunks = _chunks(6)
        server = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(server.url)
        client.call("load_dataset", _LOAD)
        client.call("register_monitor", _MONITOR)
        for i, chunk in enumerate(chunks):
            client.call(
                "append_points",
                {"dataset": _DATASET, "series": "live", "values": chunk},
            )
        server.kill9()

        revived = spawn(tmp_path, "--checkpoint-every", "100")
        assert revived.wait_banner_line(
            "recovery: 1 dataset(s)"
        ), revived.banner
        client = OnexClient(revived.url)
        ref_fingerprint, ref_matches = _reference_state(chunks)
        describe = client.call("describe", {"dataset": _DATASET})
        assert describe["structure_fingerprint"] == ref_fingerprint
        assert client.call("k_best", _QUERY)["matches"] == ref_matches
        # The monitor survived and keeps firing with monotonic seqs.
        polled = client.call("poll_events", {"dataset": _DATASET})
        assert [m["monitor"] for m in polled["monitors"]] == ["m1"]
        result = client.call(
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [5.0, 1.0, 4.0]},
        )
        assert result["events"], "recovered monitor must still fire"
        assert min(e["seq"] for e in result["events"]) > polled["last_seq"]

        health = client.health()
        durability = health["durability"]
        status = durability["datasets"][_DATASET]
        assert status["wal_seq"] >= status["checkpoint_seq"]
        assert durability["last_recovery"]["replayed_records"] == 7
        assert durability["last_recovery"]["errors"] == []

    def test_kill_mid_checkpoint_cadence_and_survive_twice(self, tmp_path, spawn):
        """Two crash/recover cycles with live checkpoints + compaction."""
        chunks = _chunks(8, seed=21)
        server = spawn(tmp_path, "--checkpoint-every", "3")
        client = OnexClient(server.url)
        client.call("load_dataset", _LOAD)
        client.call("register_monitor", _MONITOR)
        for chunk in chunks[:5]:
            client.call(
                "append_points",
                {"dataset": _DATASET, "series": "live", "values": chunk},
            )
        server.kill9()

        second = spawn(tmp_path, "--checkpoint-every", "3")
        client = OnexClient(second.url)
        for chunk in chunks[5:]:
            client.call(
                "append_points",
                {"dataset": _DATASET, "series": "live", "values": chunk},
            )
        second.kill9()

        third = spawn(tmp_path, "--checkpoint-every", "3")
        client = OnexClient(third.url)
        ref_fingerprint, ref_matches = _reference_state(chunks)
        describe = client.call("describe", {"dataset": _DATASET})
        assert describe["structure_fingerprint"] == ref_fingerprint
        assert client.call("k_best", _QUERY)["matches"] == ref_matches
        values = client.call(
            "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        assert len(values) == sum(len(c) for c in chunks)

    def test_kill_while_appending_loses_at_most_the_unacked_tail(
        self, tmp_path, spawn
    ):
        server = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(server.url, max_retries=0)
        client.call("load_dataset", _LOAD)
        acked = []
        stop = threading.Event()

        def appender():
            writer = OnexClient(server.url, max_retries=0, timeout_s=5)
            i = 0
            while not stop.is_set():
                try:
                    writer.call(
                        "append_points",
                        {
                            "dataset": _DATASET,
                            "series": "live",
                            "values": [float(i), float(i) + 0.5, float(i) - 0.5],
                        },
                        )
                except Exception:
                    return  # the kill severed this request: not acked
                acked.append(i)
                i += 1

        thread = threading.Thread(target=appender)
        thread.start()
        time.sleep(0.8)  # let a few appends land, then pull the plug
        server.kill9()
        stop.set()
        thread.join(timeout=30)
        assert acked, "the appender never got a single ack"

        revived = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(revived.url)
        values = client.call(
            "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        # Every acknowledged append survived; at most the one in-flight
        # (written-but-unacked) chunk may additionally have been logged.
        assert len(values) >= 3 * len(acked)
        assert len(values) <= 3 * (len(acked) + 1)
        # And the acked prefix is bit-identical, in order.
        for i in acked:
            assert values[3 * i : 3 * i + 3] == [
                float(i),
                float(i) + 0.5,
                float(i) - 0.5,
            ]

    def test_torn_wal_tail_is_dropped_not_repaired(self, tmp_path, spawn):
        server = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(server.url)
        client.call("load_dataset", _LOAD)
        for chunk in _chunks(3, seed=33):
            client.call(
                "append_points",
                {"dataset": _DATASET, "series": "live", "values": chunk},
            )
        server.kill9()
        # Simulate the torn final record a mid-write power cut leaves.
        wal_path = tmp_path / dataset_slug(_DATASET) / "wal.log"
        size = wal_path.stat().st_size
        with open(wal_path, "r+b") as fh:
            fh.truncate(size - 4)

        revived = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(revived.url)
        values = client.call(
            "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        assert len(values) == 6  # chunks 1+2 survive, the torn third is gone
        health = client.health()
        recovery = health["durability"]["last_recovery"]
        assert recovery["errors"] == []
        assert recovery["datasets"][_DATASET]["torn_bytes"] > 0
        # The server keeps accepting appends after truncating the tail.
        result = client.call(
            "append_points",
            {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0]},
        )
        assert result["points" if "points" in result else "total_points"] == 3

    def test_pre_crash_request_id_dedupes_after_restart(self, tmp_path, spawn):
        server = spawn(tmp_path, "--checkpoint-every", "100")
        client = OnexClient(server.url)
        client.call("load_dataset", _LOAD)
        envelope = {
            "op": "append_points",
            "params": {
                "dataset": _DATASET,
                "series": "live",
                "values": [1.0, 2.0, 3.0, 4.0],
            },
            "request_id": "precrash-1",
        }
        req = urllib.request.Request(
            f"{server.url}/api",
            data=json.dumps(envelope).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert json.loads(resp.read())["ok"]
        server.kill9()

        revived = spawn(tmp_path, "--checkpoint-every", "100")
        req = urllib.request.Request(
            f"{revived.url}/api",
            data=json.dumps(envelope).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            retry = json.loads(resp.read())
        assert retry["ok"]
        client = OnexClient(revived.url)
        values = client.call(
            "query_preview", {"dataset": _DATASET, "series": "live"}
        )["values"]
        assert len(values) == 4  # the retry deduped, no double append
