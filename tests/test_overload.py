"""Overload and shutdown tests: admission control, shedding, draining.

Pins the server's behaviour at and past its concurrency budget — at most
``max_in_flight`` requests execute, ``max_queue`` more wait, the rest get
an immediate structured 503 with ``Retry-After`` — plus the health/ready
surface, the draining ``stop()``, and the client's narrow retry policy
(read-only operations only, honouring ``Retry-After``).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import OverloadedError, RemoteError, ValidationError
from repro.server.client import OnexClient
from repro.server.http import AdmissionGate, OnexHttpServer, _ServerMetrics
from repro.server.service import OnexService
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm_all()
    yield
    faults.disarm_all()


def _post(url: str, op: str, params: dict) -> tuple[int, dict | None, dict]:
    """POST one request; returns (status, headers, body) without raising."""
    req = urllib.request.Request(
        f"{url}/api",
        data=json.dumps({"op": op, "params": params}).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), json.loads(exc.read())


_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"
_QUERY = {"dataset": _DATASET, "query": [0.1, 0.3, 0.2, 0.4], "k": 2}


class TestAdmissionGate:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionGate(0)
        with pytest.raises(ValidationError):
            AdmissionGate(1, -1)

    def test_acquire_release(self):
        gate = AdmissionGate(2, 0)
        assert gate.try_acquire() and gate.try_acquire()
        assert gate.in_flight == 2
        assert not gate.try_acquire()  # full, no queue
        assert gate.shed == 1
        gate.release()
        assert gate.try_acquire()

    def test_queued_request_runs_when_slot_frees(self):
        gate = AdmissionGate(1, 1)
        assert gate.try_acquire()
        outcome = []
        waiter = threading.Thread(
            target=lambda: outcome.append(gate.try_acquire())
        )
        waiter.start()
        time.sleep(0.05)
        assert not outcome  # parked in the queue
        gate.release()
        waiter.join(timeout=2)
        assert outcome == [True]
        gate.release()

    def test_close_sheds_new_and_parked(self):
        gate = AdmissionGate(1, 4)
        assert gate.try_acquire()
        outcome = []
        waiter = threading.Thread(
            target=lambda: outcome.append(gate.try_acquire())
        )
        waiter.start()
        time.sleep(0.05)
        gate.close()
        waiter.join(timeout=2)
        assert outcome == [False]
        assert not gate.try_acquire()
        assert gate.shed == 2

    def test_wait_idle(self):
        gate = AdmissionGate(1, 0)
        assert gate.try_acquire()
        assert gate.wait_idle(0.05) == 1  # times out, one still running
        threading.Timer(0.05, gate.release).start()
        assert gate.wait_idle(2.0) == 0


class TestServerMetrics:
    def test_snapshot_quantiles(self):
        metrics = _ServerMetrics(ring_size=8)
        for ms in (1.0, 2.0, 3.0, 4.0):
            metrics.record("k_best", ms)
        snap = metrics.latency_snapshot()
        assert snap["k_best"]["count"] == 4
        assert snap["k_best"]["p50_ms"] == pytest.approx(3.0)
        assert snap["k_best"]["p99_ms"] == pytest.approx(4.0)
        assert metrics.handled == 4

    def test_ring_is_bounded(self):
        metrics = _ServerMetrics(ring_size=4)
        for ms in range(100):
            metrics.record("op", float(ms))
        snap = metrics.latency_snapshot()
        assert snap["op"]["count"] == 4
        assert snap["op"]["p50_ms"] >= 96.0
        assert metrics.handled == 100


class TestOverloadShedding:
    @pytest.fixture()
    def server(self):
        with OnexHttpServer(
            OnexService(), max_in_flight=1, max_queue=1
        ) as srv:
            status, _, body = _post(srv.url, "load_dataset", _LOAD)
            assert status == 200 and body["ok"], body
            yield srv

    def test_sheds_past_capacity_and_accepted_stay_exact(self, server):
        """4x the in-flight cap: extras get 503s, accepted answers exact."""
        results = []
        lock = threading.Lock()

        def one_request():
            outcome = _post(server.url, "k_best", _QUERY)
            with lock:
                results.append(outcome)

        with faults.inject("server.handle", "sleep", seconds=0.4):
            threads = [threading.Thread(target=one_request) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert len(results) == 8
        accepted = [body for status, _, body in results if status == 200]
        shed = [(headers, body) for status, headers, body in results if status == 503]
        assert accepted and shed
        assert len(shed) >= 6  # cap 1 + queue 1 admit at most 2 of the burst
        for body in accepted:
            assert body["ok"]
            assert all(m["exact"] for m in body["result"]["matches"])
        for headers, body in shed:
            assert headers.get("Retry-After") == "1"
            assert body["error"]["type"] == "OverloadedError"
            assert "retry" in body["error"]["message"]

    def test_health_reports_counters_and_latency(self, server):
        _post(server.url, "k_best", _QUERY)
        with urllib.request.urlopen(f"{server.url}/health", timeout=30) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        assert health["datasets"] == [_DATASET]
        assert health["in_flight"] == 0
        assert health["handled"] >= 2  # the load + at least one query
        latency = health["latency_ms"]
        assert latency["k_best"]["count"] >= 1
        assert latency["k_best"]["p50_ms"] > 0
        assert latency["k_best"]["p99_ms"] >= latency["k_best"]["p50_ms"]

    def test_ready_while_serving(self, server):
        with urllib.request.urlopen(f"{server.url}/ready", timeout=30) as resp:
            assert json.loads(resp.read()) == {"ready": True, "in_flight": 0}


class TestGracefulShutdown:
    def test_stop_drains_in_flight(self):
        server = OnexHttpServer(OnexService(), max_in_flight=2).start()
        status, _, body = _post(server.url, "load_dataset", _LOAD)
        assert status == 200 and body["ok"]
        results = []
        with faults.inject("server.handle", "sleep", seconds=0.3):
            slow = threading.Thread(
                target=lambda: results.append(_post(server.url, "k_best", _QUERY))
            )
            slow.start()
            time.sleep(0.1)  # let the request reach the handler
            summary = server.stop()
        slow.join(timeout=30)
        assert summary == {"drained": 1, "aborted": 0}
        status, _, body = results[0]
        assert status == 200 and body["ok"]  # finished, not severed

    def test_stop_idempotent(self):
        server = OnexHttpServer(OnexService()).start()
        assert server.stop() == {"drained": 0, "aborted": 0}
        assert server.stop() is None


class TestClientRetries:
    @pytest.fixture()
    def server(self):
        with OnexHttpServer(
            OnexService(), max_in_flight=1, max_queue=0
        ) as srv:
            status, _, body = _post(srv.url, "load_dataset", _LOAD)
            assert status == 200 and body["ok"]
            yield srv

    def _occupy(self, server, seconds):
        """Hold the single execution slot with one slow request."""
        faults.arm("server.handle", "sleep", seconds=seconds, times=1)
        blocker = threading.Thread(
            target=lambda: _post(server.url, "k_best", _QUERY)
        )
        blocker.start()
        time.sleep(0.1)  # let it get admitted
        return blocker

    def test_plain_call_round_trip(self, server):
        client = OnexClient(server.url)
        result = client.call("k_best", _QUERY)
        assert all(m["exact"] for m in result["matches"])
        assert client.health()["datasets"] == [_DATASET]
        assert client.ready() is True

    def test_remote_error_preserves_type(self, server):
        client = OnexClient(server.url)
        with pytest.raises(RemoteError) as excinfo:
            client.call("k_best", {**_QUERY, "dataset": "ghost"})
        assert excinfo.value.error_type == "DatasetError"

    def test_read_only_retry_honours_retry_after(self, server):
        delays = []

        def fake_sleep(seconds):
            delays.append(seconds)
            time.sleep(0.15)  # wait long enough for the slot to free up

        blocker = self._occupy(server, 0.3)
        client = OnexClient(server.url, max_retries=5, sleep=fake_sleep)
        result = client.call("k_best", _QUERY)
        blocker.join(timeout=30)
        assert result["matches"]
        assert client.retries_performed >= 1
        # Every backoff was floored at the server's Retry-After hint (1s).
        assert all(delay >= 1.0 for delay in delays)

    def test_mutating_op_not_retried_when_opted_out(self, server):
        # Durable mutating ops retry by default (request-id dedup makes
        # them idempotent — see test_idempotent_retries.py); opting out
        # restores PR 6's fail-fast behaviour.
        blocker = self._occupy(server, 0.4)
        client = OnexClient(
            server.url, max_retries=5, retry_mutating=False, sleep=lambda s: None
        )
        with pytest.raises(OverloadedError) as excinfo:
            client.call(
                "append_points",
                {"dataset": _DATASET, "series": "live", "values": [0.1, 0.2]},
            )
        blocker.join(timeout=30)
        assert client.retries_performed == 0
        assert excinfo.value.retry_after == 1.0

    def test_non_durable_mutating_op_never_retried(self, server):
        # save_base is mutating but not request-id-deduplicated, so it
        # stays non-retryable even with retry_mutating on.
        blocker = self._occupy(server, 0.4)
        client = OnexClient(server.url, max_retries=5, sleep=lambda s: None)
        with pytest.raises(OverloadedError):
            client.call("save_base", {"dataset": _DATASET, "path": "/tmp/x.npz"})
        blocker.join(timeout=30)
        assert client.retries_performed == 0

    def test_exhausted_retries_raise_overloaded(self, server):
        blocker = self._occupy(server, 0.6)
        client = OnexClient(server.url, max_retries=2, sleep=lambda s: None)
        with pytest.raises(OverloadedError, match="3 attempt"):
            client.call("k_best", _QUERY)
        blocker.join(timeout=30)
        assert client.retries_performed == 2
