"""Unit tests for repro.distances.bounds (the ED->DTW transfer lemma)."""

import numpy as np
import pytest

from repro.distances.bounds import (
    TransferBound,
    group_pruning_lower_bound,
    path_multiplicities,
    transfer_bounds,
    transfer_slack,
)
from repro.distances.dtw import dtw_distance, dtw_path
from repro.exceptions import ValidationError


class TestPathMultiplicities:
    def test_counts_cells(self):
        path = [(0, 0), (1, 0), (2, 1), (3, 1)]
        assert path_multiplicities(path, 2, axis=1).tolist() == [2, 2]
        assert path_multiplicities(path, 4, axis=0).tolist() == [1, 1, 1, 1]

    def test_invalid_axis(self):
        with pytest.raises(ValidationError):
            path_multiplicities([(0, 0)], 1, axis=2)

    def test_out_of_range_index(self):
        with pytest.raises(ValidationError, match="out of range"):
            path_multiplicities([(0, 5)], 2, axis=1)


class TestTransferBounds:
    def test_contains_true_dtw_random(self):
        rng = np.random.default_rng(51)
        for _ in range(60):
            qlen = int(rng.integers(2, 12))
            slen = int(rng.integers(2, 12))
            q = rng.normal(size=qlen)
            r = rng.normal(size=slen)
            s = r + rng.normal(scale=0.2, size=slen)
            bound = transfer_bounds(q, r, s)
            true = dtw_distance(q, s)
            assert bound.lower <= true + 1e-9
            assert true <= bound.upper + 1e-9

    def test_tight_when_member_equals_representative(self):
        rng = np.random.default_rng(52)
        q = rng.normal(size=8)
        r = rng.normal(size=10)
        bound = transfer_bounds(q, r, r)
        true = dtw_distance(q, r)
        assert bound.upper == pytest.approx(true)
        assert bound.lower == pytest.approx(true)

    def test_reuses_precomputed_rep_result(self):
        rng = np.random.default_rng(53)
        q = rng.normal(size=7)
        r = rng.normal(size=7)
        s = r + 0.1
        rep = dtw_path(q, r)
        a = transfer_bounds(q, r, s, rep_result=rep)
        b = transfer_bounds(q, r, s)
        assert a.lower == pytest.approx(b.lower)
        assert a.upper == pytest.approx(b.upper)

    def test_width_grows_with_member_distance(self):
        rng = np.random.default_rng(54)
        q = rng.normal(size=10)
        r = rng.normal(size=10)
        near = transfer_bounds(q, r, r + 0.01)
        far = transfer_bounds(q, r, r + 1.0)
        assert near.width < far.width

    def test_rejects_unequal_member_lengths(self):
        with pytest.raises(ValidationError, match="equal length"):
            transfer_bounds([1.0, 2.0], [1.0, 2.0], [1.0, 2.0, 3.0])

    def test_bound_invariant_enforced(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            TransferBound(dtw_query_rep=1.0, lower=2.0, upper=1.0)


class TestTransferSlack:
    def test_zero_for_identical(self):
        q = np.array([0.0, 1.0, 2.0])
        r = np.array([0.0, 1.0, 2.0])
        res = dtw_path(q, r)
        assert transfer_slack(res.path, r, r) == 0.0

    def test_manual_example(self):
        # Path touches r[0] twice: slack = 2*|r0-s0| + 1*|r1-s1|.
        path = [(0, 0), (1, 0), (2, 1)]
        r = np.array([1.0, 2.0])
        s = np.array([1.5, 2.5])
        assert transfer_slack(path, r, s) == pytest.approx(2 * 0.5 + 0.5)


class TestGroupPruningLowerBound:
    def test_lower_bounds_all_members(self):
        rng = np.random.default_rng(55)
        for _ in range(30):
            q = rng.normal(size=9)
            r = rng.normal(size=7)
            members = [r + rng.normal(scale=0.3, size=7) for _ in range(5)]
            cheb = max(float(np.abs(r - s).max()) for s in members)
            d_qr = dtw_distance(q, r)
            bound = group_pruning_lower_bound(d_qr, 9, 7, cheb)
            for s in members:
                assert bound <= dtw_distance(q, s) + 1e-9

    def test_clamped_at_zero(self):
        assert group_pruning_lower_bound(1.0, 5, 5, 100.0) == 0.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValidationError):
            group_pruning_lower_bound(1.0, 5, 5, -0.1)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValidationError):
            group_pruning_lower_bound(1.0, 0, 5, 0.1)
