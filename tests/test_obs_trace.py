"""The span tracer: structure, the disabled fast path, and the
trace-on/off identity property (tracing is pure observation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.core.seasonal import find_seasonal_patterns
from repro.data.matters import build_matters_collection
from repro.obs.trace import (
    NULL_SPAN,
    current_trace,
    new_request_id,
    span,
    tracing,
)


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        with tracing("req-1") as trace:
            with span("outer", k=3):
                with span("inner.a", n=1):
                    pass
                with span("inner.b"):
                    pass
        tree = trace.as_dict()
        assert tree["name"] == "trace"
        (outer,) = tree["children"]
        assert outer["name"] == "outer"
        assert outer["attrs"] == {"k": 3}
        assert [c["name"] for c in outer["children"]] == ["inner.a", "inner.b"]
        assert trace.span_count() == 3  # outer + the two inner spans

    def test_durations_are_recorded_and_nested(self):
        with tracing("req-2") as trace:
            with span("outer"):
                with span("inner"):
                    pass
        outer = trace.as_dict()["children"][0]
        inner = outer["children"][0]
        assert outer["duration_ms"] >= inner["duration_ms"] >= 0.0
        assert trace.root.duration_ms >= outer["duration_ms"]

    def test_add_sums_numeric_attrs(self):
        with tracing("req-3") as trace:
            with span("work") as sp:
                sp.add(calls=2)
                sp.add(calls=3, label="x")
        node = trace.as_dict()["children"][0]
        assert node["attrs"] == {"calls": 5, "label": "x"}

    def test_early_return_still_closes_span(self):
        def helper():
            with span("early"):
                return 7

        with tracing("req-4") as trace:
            assert helper() == 7
        assert trace.as_dict()["children"][0]["name"] == "early"

    def test_exception_inside_span_propagates_and_closes(self):
        with tracing("req-5") as trace:
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
        node = trace.as_dict()["children"][0]
        assert node["duration_ms"] is not None


class TestDisabledPath:
    def test_span_without_trace_is_the_null_singleton(self):
        assert current_trace() is None
        assert span("anything", k=1) is NULL_SPAN
        with span("anything") as sp:
            sp.add(ignored=1)  # must be a silent no-op
        assert span("again") is NULL_SPAN

    def test_tracing_restores_previous_state(self):
        assert current_trace() is None
        with tracing("outer-req") as outer:
            assert current_trace() is outer
            with tracing("inner-req") as inner:
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None
        assert span("after") is NULL_SPAN

    def test_request_ids_are_unique_hex(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


@pytest.fixture(scope="module")
def small_base():
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=12, min_years=8, seed=7
    )
    base = OnexBase(
        dataset,
        BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6),
    )
    base.build()
    return base


def _matches(processor, q, k, threshold):
    return (
        [(m.ref, m.distance) for m in processor.k_best_matches(q, k=k, normalize=False)],
        (m := processor.best_match(q, normalize=False)) and (m.ref, m.distance),
        [
            (m.ref, m.distance)
            for m in processor.matches_within(q, threshold, normalize=False)
        ],
    )


class TestTraceIdentity:
    """Tracing must never change an answer — the EXPLAIN guarantee."""

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=4,
            max_size=6,
        ),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.02, max_value=0.3),
        st.sampled_from(["fast", "exact"]),
    )
    def test_query_family_identical_on_and_off(
        self, small_base, values, k, threshold, mode
    ):
        processor = QueryProcessor(small_base, QueryConfig(mode=mode))
        q = np.asarray(values)
        untraced = _matches(processor, q, k, threshold)
        with tracing("prop") as trace:
            traced = _matches(processor, q, k, threshold)
        assert traced == untraced
        assert trace.span_count() > 1  # the cascade actually emitted spans

    def test_seasonal_identical_on_and_off(self, small_base):
        series = small_base.dataset[0]
        plain = find_seasonal_patterns(series, 5, 0.15)
        with tracing("seasonal"):
            traced = find_seasonal_patterns(series, 5, 0.15)
        assert [
            (p.max_pairwise_dtw, [s.start for s in p.segments]) for p in plain
        ] == [
            (p.max_pairwise_dtw, [s.start for s in p.segments]) for p in traced
        ]
