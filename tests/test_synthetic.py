"""Unit tests for repro.data.synthetic generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    cylinder_bell_funnel,
    noisy_sine,
    planted_motif_series,
    random_walk,
    seasonal_series,
    trend_series,
    warped_copy,
)
from repro.distances.dtw import dtw_distance
from repro.exceptions import ValidationError


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: random_walk(50, seed=seed),
            lambda seed: noisy_sine(50, seed=seed),
            lambda seed: trend_series(50, shock_probability=0.1, seed=seed),
            lambda seed: seasonal_series(50, seed=seed),
            lambda seed: cylinder_bell_funnel("bell", 50, seed=seed),
            lambda seed: warped_copy(np.arange(20.0), seed=seed),
        ],
    )
    def test_same_seed_same_output(self, factory):
        assert np.array_equal(factory(7), factory(7))

    def test_different_seed_different_output(self):
        assert not np.array_equal(random_walk(50, seed=1), random_walk(50, seed=2))

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(3)
        out = random_walk(10, seed=rng)
        assert out.shape == (10,)


class TestShapes:
    def test_random_walk_starts_at_start(self):
        assert random_walk(5, start=3.5, seed=1)[0] == 3.5

    def test_noisy_sine_period(self):
        clean = noisy_sine(100, period=25.0, noise=0.0, seed=0)
        # Zero crossings every half period.
        assert clean[0] == pytest.approx(0.0, abs=1e-9)
        assert clean[25] / max(abs(clean).max(), 1e-9) == pytest.approx(0.0, abs=0.05)

    def test_trend_series_slope(self):
        values = trend_series(200, slope=0.5, noise=0.0, seed=0)
        assert values[-1] - values[0] == pytest.approx(0.5 * 199)

    def test_seasonal_series_components(self):
        values = seasonal_series(96, components=((24.0, 2.0), (8.0, 0.5)), noise=0.0, seed=0)
        assert values.shape == (96,)
        # Dominant component should create visible 24-step periodicity.
        assert np.corrcoef(values[:-24], values[24:])[0, 1] > 0.9

    @pytest.mark.parametrize("kind", ["cylinder", "bell", "funnel"])
    def test_cbf_kinds(self, kind):
        values = cylinder_bell_funnel(kind, 128, seed=5)
        assert values.shape == (128,)
        assert abs(values).max() > 1.0  # the event is visible above noise

    def test_cbf_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            cylinder_bell_funnel("sphere", 64)


class TestPlantedMotifs:
    def test_positions_are_nonoverlapping_and_sorted(self):
        _, positions = planted_motif_series(
            500, motif_length=40, occurrences=5, seed=11
        )
        assert positions == sorted(positions)
        for a, b in zip(positions, positions[1:]):
            assert b - a >= 40

    def test_occurrences_are_mutually_similar_under_dtw(self):
        values, positions = planted_motif_series(
            600, motif_length=50, occurrences=4, noise=0.02, seed=13
        )
        windows = [values[p : p + 50] for p in positions]
        # Compare shapes with the level removed: occurrences ride on a walk.
        windows = [w - w.mean() for w in windows]
        for a in windows:
            for b in windows:
                assert dtw_distance(a, b, normalized=True) < 0.35

    def test_rejects_impossible_packing(self):
        with pytest.raises(ValidationError, match="fit"):
            planted_motif_series(100, motif_length=60, occurrences=2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            planted_motif_series(100, motif_length=1, occurrences=1)
        with pytest.raises(ValidationError):
            planted_motif_series(100, motif_length=10, occurrences=0)


class TestWarpedCopy:
    def test_preserves_length(self):
        values = noisy_sine(80, seed=3)
        out = warped_copy(values, max_stretch=3, seed=4)
        assert out.shape == values.shape

    def test_dtw_close_but_euclidean_far(self):
        values = noisy_sine(100, period=25.0, noise=0.0, seed=5)
        out = warped_copy(values, max_stretch=3, seed=6)
        dtw_n = dtw_distance(values, out, normalized=True)
        ed_n = float(np.abs(values - out).mean())
        assert dtw_n < ed_n  # warping hides from DTW what ED sees

    def test_max_stretch_one_is_identity(self):
        values = np.arange(10.0)
        assert np.array_equal(warped_copy(values, max_stretch=1, seed=0), values)

    def test_rejects_bad_stretch(self):
        with pytest.raises(ValidationError):
            warped_copy([1.0, 2.0], max_stretch=0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            warped_copy([], max_stretch=2)


class TestValidation:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: random_walk(0),
            lambda: noisy_sine(10, period=0.0),
            lambda: trend_series(10, shock_probability=1.5),
            lambda: seasonal_series(10, components=((0.0, 1.0),)),
        ],
    )
    def test_bad_arguments_raise(self, call):
        with pytest.raises(ValidationError):
            call()
