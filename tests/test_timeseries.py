"""Unit tests for repro.data.timeseries."""

import numpy as np
import pytest

from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError


class TestConstruction:
    def test_basic(self):
        ts = TimeSeries("ma", [1.0, 2.0, 3.0])
        assert ts.name == "ma"
        assert len(ts) == 3
        assert ts.values.tolist() == [1.0, 2.0, 3.0]

    def test_values_are_read_only(self):
        ts = TimeSeries("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            ts.values[0] = 9.0

    def test_defensive_copy_of_input(self):
        source = np.array([1.0, 2.0])
        ts = TimeSeries("x", source)
        source[0] = 99.0
        assert ts.values[0] == 1.0

    def test_metadata_is_read_only_mapping(self):
        ts = TimeSeries("x", [1.0], metadata={"state": "MA"})
        assert ts.metadata["state"] == "MA"
        with pytest.raises(TypeError):
            ts.metadata["state"] = "NY"

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError, match="name"):
            TimeSeries("", [1.0])

    def test_rejects_non_string_name(self):
        with pytest.raises(ValidationError, match="name"):
            TimeSeries(7, [1.0])

    def test_rejects_empty_values(self):
        with pytest.raises(ValidationError, match="non-empty"):
            TimeSeries("x", [])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            TimeSeries("x", [1.0, np.nan])

    def test_accepts_2d_multichannel(self):
        ts = TimeSeries("x", [[1.0, 2.0], [3.0, 4.0]])
        assert ts.channels == 2
        assert len(ts) == 2
        assert ts.values.shape == (2, 2)

    def test_univariate_channels(self):
        assert TimeSeries("x", [1.0, 2.0]).channels == 1

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="1-D|2-D"):
            TimeSeries("x", np.zeros((2, 2, 2)))

    def test_rejects_zero_channels(self):
        with pytest.raises(ValidationError, match="channel"):
            TimeSeries("x", np.zeros((3, 0)))

    def test_multichannel_subsequence(self):
        ts = TimeSeries("x", np.arange(10.0).reshape(5, 2))
        window = ts.subsequence(1, 3)
        assert window.shape == (3, 2)
        assert window.tolist() == [[2.0, 3.0], [4.0, 5.0], [6.0, 7.0]]


class TestSubsequence:
    def test_returns_window(self):
        ts = TimeSeries("x", [0.0, 1.0, 2.0, 3.0, 4.0])
        assert ts.subsequence(1, 3).tolist() == [1.0, 2.0, 3.0]

    def test_full_series(self):
        ts = TimeSeries("x", [1.0, 2.0])
        assert ts.subsequence(0, 2).tolist() == [1.0, 2.0]

    def test_out_of_range_start(self):
        ts = TimeSeries("x", [1.0, 2.0])
        with pytest.raises(ValidationError, match="outside"):
            ts.subsequence(2, 1)

    def test_window_past_end(self):
        ts = TimeSeries("x", [1.0, 2.0, 3.0])
        with pytest.raises(ValidationError, match="outside"):
            ts.subsequence(2, 2)

    def test_negative_start(self):
        ts = TimeSeries("x", [1.0, 2.0])
        with pytest.raises(ValidationError):
            ts.subsequence(-1, 1)

    def test_zero_length(self):
        ts = TimeSeries("x", [1.0, 2.0])
        with pytest.raises(ValidationError, match="positive"):
            ts.subsequence(0, 0)


class TestEqualityAndCopy:
    def test_equality(self):
        a = TimeSeries("x", [1.0, 2.0])
        b = TimeSeries("x", [1.0, 2.0])
        c = TimeSeries("x", [1.0, 3.0])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_inequality_different_name(self):
        assert TimeSeries("x", [1.0]) != TimeSeries("y", [1.0])

    def test_with_values_keeps_name_and_metadata(self):
        ts = TimeSeries("x", [1.0, 2.0], metadata={"k": 1})
        out = ts.with_values([5.0, 6.0])
        assert out.name == "x"
        assert out.metadata["k"] == 1
        assert out.values.tolist() == [5.0, 6.0]

    def test_repr_mentions_name(self):
        assert "x" in repr(TimeSeries("x", [1.0]))
