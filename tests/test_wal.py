"""Write-ahead log unit tests: framing, torn tails, compaction, faults.

The WAL's contract (DESIGN.md §8): an append that returned has its
record's bytes in the OS page cache (SIGKILL-safe) in every sync mode;
a crash mid-append damages at most the final record; a tolerant scan
keeps every earlier record and reports the torn bytes; compaction drops
a checkpoint-covered prefix atomically.
"""

import os

import pytest

from repro.core import persist
from repro.durability.wal import MAGIC, WalRecord, WriteAheadLog, scan
from repro.exceptions import PersistenceError
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def make_wal(tmp_path, **kwargs):
    wal = WriteAheadLog(tmp_path / "wal.log", **kwargs)
    wal.open()
    return wal


class TestFraming:
    def test_round_trip(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append("append_points", {"series": "s", "values": [1.0, 2.0]}, "r1")
        wal.append("add_series", {"name": "x", "values": [0.5]}, None)
        wal.close()
        result = scan(tmp_path / "wal.log")
        assert result.torn_bytes == 0
        assert [r.seq for r in result.records] == [1, 2]
        assert result.records[0] == WalRecord(
            1, "append_points", {"series": "s", "values": [1.0, 2.0]}, "r1"
        )
        assert result.records[1].request_id is None

    def test_sequence_continues_across_reopen(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append("a", {})
        wal.append("b", {})
        wal.close()
        wal2 = WriteAheadLog(tmp_path / "wal.log")
        assert wal2.open().last_seq == 2
        assert wal2.append("c", {}).seq == 3
        wal2.close()

    def test_not_a_wal_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"definitely not a WAL header")
        with pytest.raises(PersistenceError, match="bad magic"):
            scan(path)

    @pytest.mark.parametrize("mode", ["always", "interval", "never"])
    def test_all_sync_modes_persist_records(self, tmp_path, mode):
        wal = make_wal(tmp_path / mode, sync=mode, interval_ms=5.0)
        for i in range(10):
            wal.append("op", {"i": i})
        # No close(): records must be readable from the file as written
        # (flush-before-ack), which is the SIGKILL-safety property.
        assert len(scan(tmp_path / mode / "wal.log").records) == 10
        wal.close()

    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sync mode"):
            WriteAheadLog(tmp_path / "w.log", sync="sometimes")


class TestTornTail:
    def _torn(self, tmp_path, cut):
        wal = make_wal(tmp_path)
        for i in range(5):
            wal.append("op", {"i": i})
        wal.close()
        path = tmp_path / "wal.log"
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - cut)
        return path

    def test_cut_mid_payload_drops_only_final_record(self, tmp_path):
        path = self._torn(tmp_path, 3)
        result = scan(path)
        assert [r.params["i"] for r in result.records] == [0, 1, 2, 3]
        assert result.torn_bytes > 0

    def test_cut_mid_header_drops_only_final_record(self, tmp_path):
        wal = make_wal(tmp_path)
        frame_len = None
        for i in range(3):
            before = wal.size()
            wal.append("op", {"i": i})
            frame_len = wal.size() - before
        wal.close()
        path = tmp_path / "wal.log"
        with open(path, "r+b") as fh:  # leave 2 header bytes of record 3
            fh.truncate(os.path.getsize(path) - (frame_len - 2))
        result = scan(path)
        assert [r.seq for r in result.records] == [1, 2]

    def test_corrupt_crc_stops_scan(self, tmp_path):
        wal = make_wal(tmp_path)
        for i in range(4):
            wal.append("op", {"i": i})
        wal.close()
        path = tmp_path / "wal.log"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the final record
        path.write_bytes(bytes(data))
        result = scan(path)
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.torn_bytes > 0

    def test_open_truncates_torn_tail_and_appends_cleanly(self, tmp_path):
        path = self._torn(tmp_path, 5)
        wal = WriteAheadLog(path)
        result = wal.open()
        assert result.last_seq == 4
        assert os.path.getsize(path) == result.valid_bytes
        wal.append("fresh", {})
        wal.close()
        post = scan(path)
        assert post.torn_bytes == 0
        assert [r.seq for r in post.records] == [1, 2, 3, 4, 5]

    def test_empty_file_without_magic_is_not_a_wal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        with pytest.raises(PersistenceError):
            scan(path)

    def test_header_only_file_scans_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(MAGIC)
        result = scan(path)
        assert result.records == [] and result.torn_bytes == 0


class TestCompaction:
    def test_compact_drops_covered_prefix(self, tmp_path):
        wal = make_wal(tmp_path)
        for i in range(8):
            wal.append("op", {"i": i})
        freed = wal.compact(5)
        assert freed > 0
        assert [r.seq for r in wal.records()] == [6, 7, 8]
        # Appends keep the global sequence, not a restarted one.
        assert wal.append("op", {"i": 8}).seq == 9
        wal.close()

    def test_compact_to_zero_keeps_everything(self, tmp_path):
        wal = make_wal(tmp_path)
        for i in range(3):
            wal.append("op", {"i": i})
        wal.compact(0)
        assert len(list(wal.records())) == 3
        wal.close()


class TestFailpoints:
    def test_wal_append_fault_leaves_no_record(self, tmp_path):
        wal = make_wal(tmp_path)
        wal.append("op", {"i": 0})
        with faults.inject("wal.append", "raise"):
            with pytest.raises(faults.FaultInjectedError):
                wal.append("op", {"i": 1})
        # The failed append reserved nothing: no bytes, no seq.
        assert [r.seq for r in wal.records()] == [1]
        assert wal.append("op", {"i": 2}).seq == 2
        wal.close()

    def test_torn_tail_fault_at_wal_written(self, tmp_path):
        """Crash-after-write-before-ack: the record is shaved and the
        append raises, so recovery must neither see it nor resurrect it."""
        wal = make_wal(tmp_path)
        wal.append("op", {"i": 0})
        with faults.inject("wal.written", "torn-tail", cut_bytes=4):
            with pytest.raises(faults.FaultInjectedError):
                wal.append("op", {"i": 1})
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        result = reopened.open()
        assert [r.params["i"] for r in result.records] == [0]
        reopened.close()

    def test_wal_fsync_fault_blocks_always_mode(self, tmp_path):
        wal = make_wal(tmp_path / "a", sync="always")
        with faults.inject("wal.fsync", "raise"):
            with pytest.raises(faults.FaultInjectedError):
                wal.append("op", {})
        wal.close()


class TestDirectoryFsyncHelpers:
    def test_fsync_dir_on_regular_dir(self, tmp_path):
        persist.fsync_dir(tmp_path)  # must not raise

    def test_atomic_json_write_replaces(self, tmp_path):
        target = tmp_path / "m.json"
        persist.atomic_json_write(target, {"a": 1})
        persist.atomic_json_write(target, {"a": 2})
        import json

        assert json.loads(target.read_text()) == {"a": 2}
        assert not (tmp_path / "m.json.tmp").exists()

    def test_atomic_write_failure_leaves_old_content(self, tmp_path):
        target = tmp_path / "m.json"
        persist.atomic_json_write(target, {"a": 1})
        with pytest.raises(TypeError):
            persist.atomic_json_write(target, {"bad": object()})
        import json

        assert json.loads(target.read_text()) == {"a": 1}
        assert not (tmp_path / "m.json.tmp").exists()

    def test_sha256_file(self, tmp_path):
        f = tmp_path / "blob"
        f.write_bytes(b"abc")
        assert persist.sha256_file(f) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
