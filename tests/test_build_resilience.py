"""Build-pool crash recovery and crash-safe persistence tests.

A killed pool worker must cost its shard a serial retry, never the
build — and the retried base must be bit-identical to a serial build
(the clustering is deterministic).  On the persistence side, a torn
write mid-``save`` must leave the previously saved archive untouched
and loadable: the temp-file + fsync + ``os.replace`` protocol never
exposes a half-written file under the real path.
"""

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.data.dataset import TimeSeriesDataset
from repro.exceptions import BuildWorkerError
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm_all()
    yield
    faults.disarm_all()


def _dataset() -> TimeSeriesDataset:
    rng = np.random.default_rng(43)
    return TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (40, 36, 44)], name="resil"
    )


def _config(**overrides) -> BuildConfig:
    options = {
        "similarity_threshold": 0.1,
        "min_length": 4,
        "max_length": 8,
        "num_workers": 1,
    }
    options.update(overrides)
    return BuildConfig(**options)


class TestWorkerCrashRecovery:
    def test_killed_worker_recovers_bit_identically(self):
        """A worker killed mid-shard loses the shard, not the build."""
        dataset = _dataset()
        serial = OnexBase(dataset, _config())
        serial.build()

        # The pool forks, so workers inherit the armed fault; the pid
        # guard makes the parent's own fires (serial retries) pass
        # through while any worker that reaches the failpoint dies.
        faults.arm("build.shard", "kill-worker")
        recovered = OnexBase(dataset, _config(num_workers=2))
        stats = recovered.build()
        faults.disarm_all()

        assert recovered.build_shard_retries >= 1
        assert recovered.structure_fingerprint() == serial.structure_fingerprint()
        assert stats.subsequences == serial.stats.subsequences
        assert stats.groups == serial.stats.groups

    def test_retries_reset_between_builds(self):
        dataset = _dataset()
        base = OnexBase(dataset, _config(num_workers=2))
        with faults.inject("build.shard", "kill-worker"):
            base.build()
        assert base.build_shard_retries >= 1
        base.build()
        assert base.build_shard_retries == 0

    def test_double_failure_raises_build_worker_error(self):
        """When the serial retry fails too, the build fails loudly."""
        base = OnexBase(_dataset(), _config(num_workers=2, build_executor="thread"))
        # An unbounded raise fault hits the pool worker AND the parent's
        # serial retry of the same shard.
        with faults.inject("build.shard", "raise"):
            with pytest.raises(BuildWorkerError, match="again on serial retry"):
                base.build()


class TestCrashSafeSave:
    def test_torn_write_leaves_previous_archive_loadable(self, tmp_path):
        dataset = _dataset()
        base = OnexBase(dataset, _config())
        base.build()
        path = tmp_path / "base.npz"
        base.save(path)
        good_bytes = path.read_bytes()

        with faults.inject("persist.save", "torn-write"):
            with pytest.raises(faults.FaultInjectedError, match="torn write"):
                base.save(path)

        # The torn temp file was cleaned up and never replaced the real
        # archive, which still loads byte-for-byte.
        assert list(tmp_path.iterdir()) == [path]
        assert path.read_bytes() == good_bytes
        reloaded = OnexBase.load(path, dataset)
        assert reloaded.structure_fingerprint() == base.structure_fingerprint()

    def test_successful_save_leaves_no_temp_file(self, tmp_path):
        base = OnexBase(_dataset(), _config())
        base.build()
        path = tmp_path / "base.npz"
        base.save(path)
        assert list(tmp_path.iterdir()) == [path]
