"""Unit tests for repro.distances.dtw."""

import math

import numpy as np
import pytest

from repro.distances.dtw import (
    dtw_cost_matrix,
    dtw_distance,
    dtw_distance_early_abandon,
    dtw_path,
    effective_band,
)
from repro.exceptions import ValidationError


def brute_force_dtw(x, y, ground="l1"):
    """Reference O(n*m) DP written independently of the library kernels."""
    n, m = len(x), len(y)
    cost = np.full((n + 1, m + 1), math.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            diff = x[i - 1] - y[j - 1]
            d = diff * diff if ground == "squared" else abs(diff)
            cost[i, j] = d + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return cost[n, m]


class TestEffectiveBand:
    def test_none_passthrough(self):
        assert effective_band(5, 5, None) is None

    def test_widened_to_length_difference(self):
        assert effective_band(10, 4, 2) == 6

    def test_kept_when_wide_enough(self):
        assert effective_band(10, 9, 5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            effective_band(5, 5, -1)


class TestDtwDistance:
    def test_identical_sequences_zero(self):
        x = [1.0, 2.0, 3.0, 2.0]
        assert dtw_distance(x, x) == 0.0

    def test_known_small_case(self):
        # x=[0,1], y=[0,0,1]: optimal path duplicates the 0.
        assert dtw_distance([0, 1], [0, 0, 1]) == 0.0

    def test_single_points(self):
        assert dtw_distance([3.0], [5.0]) == 2.0

    def test_one_vs_many(self):
        # Every element of y matches the single x point.
        assert dtw_distance([1.0], [2.0, 3.0]) == pytest.approx(3.0)

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            n, m = rng.integers(1, 15, size=2)
            x = rng.normal(size=n)
            y = rng.normal(size=m)
            assert dtw_distance(x, y) == pytest.approx(brute_force_dtw(x, y))

    def test_matches_reference_squared(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            x = rng.normal(size=9)
            y = rng.normal(size=12)
            got = dtw_distance(x, y, ground="squared")
            assert got == pytest.approx(brute_force_dtw(x, y, ground="squared"))

    def test_symmetry(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=10)
        y = rng.normal(size=13)
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_at_most_euclidean_for_equal_lengths(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        assert dtw_distance(x, y) <= np.abs(x - y).sum() + 1e-9

    def test_window_zero_equals_euclidean(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=15)
        y = rng.normal(size=15)
        assert dtw_distance(x, y, window=0) == pytest.approx(np.abs(x - y).sum())

    def test_window_monotonic_in_radius(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=18)
        y = rng.normal(size=18)
        dists = [dtw_distance(x, y, window=w) for w in (0, 1, 2, 4, 8, None)]
        for tight, loose in zip(dists, dists[1:]):
            assert loose <= tight + 1e-9

    def test_normalized_divides_by_path_length(self):
        x = [0.0, 1.0, 2.0]
        y = [0.0, 1.0, 2.0]
        assert dtw_distance(x, y, normalized=True) == 0.0
        res = dtw_path([0.0, 4.0], [0.0, 0.0, 4.0])
        assert dtw_distance([0.0, 4.0], [0.0, 0.0, 4.0], normalized=True) == (
            pytest.approx(res.distance / res.path_length)
        )

    def test_invalid_ground_rejected(self):
        with pytest.raises(ValidationError, match="ground"):
            dtw_distance([1.0], [1.0], ground="l3")


class TestDtwCostMatrix:
    def test_corner_is_distance(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=8)
        y = rng.normal(size=11)
        cost = dtw_cost_matrix(x, y)
        assert cost[-1, -1] == pytest.approx(dtw_distance(x, y))

    def test_prefix_property(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=6)
        y = rng.normal(size=7)
        cost = dtw_cost_matrix(x, y)
        for i in range(1, 6):
            for j in range(1, 7):
                assert cost[i, j] == pytest.approx(
                    brute_force_dtw(x[: i + 1], y[: j + 1])
                )

    def test_band_excludes_cells(self):
        cost = dtw_cost_matrix(np.zeros(6), np.zeros(6), window=1)
        assert math.isinf(cost[0, 3])
        assert math.isinf(cost[5, 1])
        assert cost[5, 5] == 0.0


class TestDtwPath:
    def test_path_endpoints(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=7)
        y = rng.normal(size=9)
        res = dtw_path(x, y)
        assert res.path[0] == (0, 0)
        assert res.path[-1] == (6, 8)

    def test_path_is_monotone_and_contiguous(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=10)
        y = rng.normal(size=6)
        res = dtw_path(x, y)
        for (i0, j0), (i1, j1) in zip(res.path, res.path[1:]):
            assert (i1 - i0, j1 - j0) in {(0, 1), (1, 0), (1, 1)}

    def test_path_cost_equals_distance(self):
        rng = np.random.default_rng(15)
        x = rng.normal(size=9)
        y = rng.normal(size=12)
        res = dtw_path(x, y)
        total = sum(abs(x[i] - y[j]) for i, j in res.path)
        assert total == pytest.approx(res.distance)
        assert res.distance == pytest.approx(dtw_distance(x, y))

    def test_path_length_bounds(self):
        rng = np.random.default_rng(16)
        x = rng.normal(size=8)
        y = rng.normal(size=5)
        res = dtw_path(x, y)
        assert max(8, 5) <= res.path_length <= 8 + 5 - 1

    def test_multiplicities_sum_to_path_length(self):
        rng = np.random.default_rng(17)
        x = rng.normal(size=6)
        y = rng.normal(size=9)
        res = dtw_path(x, y)
        assert res.multiplicities(0, 6).sum() == res.path_length
        assert res.multiplicities(1, 9).sum() == res.path_length
        assert (res.multiplicities(0, 6) >= 1).all()

    def test_normalized_distance(self):
        x = [0.0, 1.0]
        res = dtw_path(x, x)
        assert res.normalized_distance == 0.0

    def test_infeasible_band_raises(self):
        # A 1-point vs 5-point alignment is always feasible, but the matrix
        # band is widened automatically; verify no spurious failure.
        res = dtw_path([1.0], [1.0, 1.0, 1.0, 1.0, 1.0], window=0)
        assert res.distance == 0.0


class TestEarlyAbandon:
    def test_exact_when_under_threshold(self):
        rng = np.random.default_rng(21)
        for _ in range(20):
            x = rng.normal(size=10)
            y = rng.normal(size=10)
            exact = dtw_distance(x, y)
            got = dtw_distance_early_abandon(x, y, exact + 1.0)
            assert got == pytest.approx(exact)

    def test_inf_when_over_threshold(self):
        rng = np.random.default_rng(22)
        x = rng.normal(size=10)
        y = rng.normal(size=10) + 100.0
        assert math.isinf(dtw_distance_early_abandon(x, y, 1.0))

    def test_threshold_exactly_at_distance_not_abandoned(self):
        x = [0.0, 0.0]
        y = [1.0, 1.0]
        exact = dtw_distance(x, y)
        assert dtw_distance_early_abandon(x, y, exact) == pytest.approx(exact)

    def test_respects_window(self):
        rng = np.random.default_rng(23)
        x = rng.normal(size=12)
        y = rng.normal(size=12)
        exact = dtw_distance(x, y, window=2)
        got = dtw_distance_early_abandon(x, y, exact + 1.0, window=2)
        assert got == pytest.approx(exact)

    def test_cumulative_bound_preserves_exactness(self):
        rng = np.random.default_rng(24)
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        exact = dtw_distance(x, y)
        cb = np.zeros(len(x) + 1)  # trivial (all-zero) remaining bound
        got = dtw_distance_early_abandon(x, y, exact + 0.5, cumulative_bound=cb)
        assert got == pytest.approx(exact)

    def test_rejects_short_cumulative_bound(self):
        with pytest.raises(ValidationError, match="cumulative_bound"):
            dtw_distance_early_abandon(
                [1.0, 2.0], [1.0, 2.0], 10.0, cumulative_bound=np.zeros(1)
            )

    def test_rejects_infinite_threshold(self):
        with pytest.raises(ValidationError, match="finite"):
            dtw_distance_early_abandon([1.0], [1.0], math.inf)
