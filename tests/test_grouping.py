"""Unit tests for repro.core.grouping (ONEX similarity groups, §3.1)."""

import numpy as np
import pytest

from repro.core.grouping import SimilarityGroup, cluster_subsequences
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import InvariantError, ValidationError


def refs_for(n, length=4):
    return [SubsequenceRef(0, i, length) for i in range(n)]


class TestClustering:
    def test_tight_cluster_becomes_one_group(self):
        rng = np.random.default_rng(1)
        center = rng.normal(size=6)
        matrix = center + rng.normal(scale=0.001, size=(20, 6))
        groups = cluster_subsequences(matrix, refs_for(20, 6), 0.1)
        assert len(groups) == 1
        assert groups[0].cardinality == 20

    def test_distant_points_stay_separate(self):
        matrix = np.array([[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]])
        groups = cluster_subsequences(matrix, refs_for(3, 2), 0.5)
        assert len(groups) == 3
        assert all(g.cardinality == 1 for g in groups)

    def test_every_subsequence_assigned_exactly_once(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(100, 5))
        refs = refs_for(100, 5)
        groups = cluster_subsequences(matrix, refs, 0.3)
        seen = [m for g in groups for m in g.members]
        assert sorted(seen) == sorted(refs)

    def test_member_within_radius_invariant(self):
        """The paper's §3.1 guarantee: members within ST/2 of the rep."""
        rng = np.random.default_rng(3)
        radius = 0.25
        matrix = rng.normal(size=(200, 8))
        groups = cluster_subsequences(matrix, refs_for(200, 8), radius)
        for g in groups:
            for ref in g.members:
                ed = np.abs(matrix[ref.start] - g.centroid).mean()
                assert ed <= radius + 1e-9

    def test_pairwise_within_double_radius(self):
        """Triangle through the centroid: members pairwise within ST."""
        rng = np.random.default_rng(4)
        radius = 0.2
        matrix = rng.normal(size=(150, 6))
        groups = cluster_subsequences(matrix, refs_for(150, 6), radius)
        for g in groups:
            rows = matrix[[ref.start for ref in g.members]]
            for i in range(len(rows)):
                for j in range(i + 1, len(rows)):
                    ed = np.abs(rows[i] - rows[j]).mean()
                    assert ed <= 2 * radius + 1e-9

    def test_recorded_radii_are_exact_maxima(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(80, 7))
        groups = cluster_subsequences(matrix, refs_for(80, 7), 0.4)
        for g in groups:
            rows = matrix[[ref.start for ref in g.members]]
            eds = np.abs(rows - g.centroid).mean(axis=1)
            chebs = np.abs(rows - g.centroid).max(axis=1)
            assert g.ed_radius == pytest.approx(eds.max())
            assert g.cheb_radius == pytest.approx(chebs.max())

    def test_smaller_radius_makes_more_groups(self):
        rng = np.random.default_rng(6)
        matrix = rng.normal(size=(120, 5))
        refs = refs_for(120, 5)
        tight = cluster_subsequences(matrix, refs, 0.05)
        loose = cluster_subsequences(matrix, refs, 1.0)
        assert len(tight) > len(loose)

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(60, 4))
        refs = refs_for(60, 4)
        a = cluster_subsequences(matrix, refs, 0.3)
        b = cluster_subsequences(matrix, refs, 0.3)
        assert len(a) == len(b)
        for ga, gb in zip(a, b):
            assert ga.members == gb.members

    def test_empty_input(self):
        assert cluster_subsequences(np.empty((0, 4)), [], 0.5) == []

    def test_validation(self):
        with pytest.raises(ValidationError, match="2-D"):
            cluster_subsequences(np.zeros(3), refs_for(3), 0.5)
        with pytest.raises(ValidationError, match="refs"):
            cluster_subsequences(np.zeros((3, 2)), refs_for(2, 2), 0.5)
        with pytest.raises(ValidationError, match="group_radius"):
            cluster_subsequences(np.zeros((3, 2)), refs_for(3, 2), 0.0)


class TestSimilarityGroupValidate:
    def test_passes_for_consistent_group(self):
        ds = TimeSeriesDataset([TimeSeries("s", [1.0, 1.0, 1.0, 1.0])])
        group = SimilarityGroup(
            length=2,
            centroid=np.array([1.0, 1.0]),
            members=(SubsequenceRef(0, 0, 2), SubsequenceRef(0, 1, 2)),
            ed_radius=0.0,
            cheb_radius=0.0,
        )
        group.validate(ds, 0.1)  # should not raise

    def test_detects_member_outside_radius(self):
        ds = TimeSeriesDataset([TimeSeries("s", [5.0, 5.0])])
        group = SimilarityGroup(
            length=2,
            centroid=np.array([0.0, 0.0]),
            members=(SubsequenceRef(0, 0, 2),),
            ed_radius=10.0,
            cheb_radius=10.0,
        )
        with pytest.raises(InvariantError, match="exceeds group radius"):
            group.validate(ds, 0.1)

    def test_detects_understated_radii(self):
        ds = TimeSeriesDataset([TimeSeries("s", [1.0, 1.0])])
        group = SimilarityGroup(
            length=2,
            centroid=np.array([0.9, 0.9]),
            members=(SubsequenceRef(0, 0, 2),),
            ed_radius=0.0,
            cheb_radius=0.0,
        )
        with pytest.raises(InvariantError, match="recorded radii"):
            group.validate(ds, 1.0)


class TestRepairStress:
    def test_adversarial_drift_still_satisfies_invariant(self):
        """A chain of slowly drifting points forces centroid drift; the
        repair pass must still deliver the strict invariant."""
        radius = 0.5
        # Points at 0, 0.45, 0.9, ... each within radius of the running
        # mean when added, but far from the final centroid.
        values = np.arange(0, 10, 0.45)
        matrix = values[:, None] * np.ones((1, 3))
        groups = cluster_subsequences(matrix, refs_for(len(values), 3), radius)
        for g in groups:
            for ref in g.members:
                ed = np.abs(matrix[ref.start] - g.centroid).mean()
                assert ed <= radius + 1e-9

    def test_all_identical_rows(self):
        matrix = np.ones((50, 4))
        groups = cluster_subsequences(matrix, refs_for(50), 0.1)
        assert len(groups) == 1
        assert groups[0].ed_radius == 0.0
