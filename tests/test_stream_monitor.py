"""Tests for live pattern monitoring (repro.stream.monitor / spring_online).

Exactness contracts: the vectorised online SPRING matcher reports the
same matches as the brute-force reference implementation, monitors' SPRING
events match a reference replay of the normalised stream, and window
events match a brute-force scan of every completed pattern-length window.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.spring import SpringMatcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.data.dataset import TimeSeriesDataset
from repro.distances.dtw import dtw_distance
from repro.exceptions import DatasetError, ValidationError
from repro.stream import MonitorRegistry, OnlineSpringMatcher, StreamIngestor


def make_base(normalize=False, st_value=0.25, seed=41):
    rng = np.random.default_rng(seed)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=20).cumsum() for _ in range(2)], name="mon-base"
    )
    base = OnexBase(
        ds,
        BuildConfig(
            similarity_threshold=st_value, min_length=4, max_length=7,
            normalize=normalize,
        ),
    )
    base.build()
    return base


def assert_same_matches(got, want):
    assert [(m.start, m.end) for m in got] == [(w.start, w.end) for w in want]
    for m, w in zip(got, want):
        assert m.distance == pytest.approx(w.distance, abs=1e-9)


class TestOnlineSpringMatcher:
    def test_matches_reference_on_planted_patterns(self):
        rng = np.random.default_rng(1)
        pattern = np.sin(np.linspace(0, 3, 16))
        stream = np.concatenate(
            [
                rng.normal(scale=0.3, size=50),
                pattern + rng.normal(scale=0.05, size=16),
                rng.normal(scale=0.3, size=30),
                pattern,
                rng.normal(scale=0.3, size=20),
            ]
        )
        for epsilon in (0.8, 2.0, 6.0):
            ref = SpringMatcher(pattern, epsilon)
            vec = OnlineSpringMatcher(pattern, epsilon)
            assert_same_matches(
                vec.extend(stream) + vec.finish(),
                ref.extend(stream) + ref.finish(),
            )

    # Dyadic grid values: every ground cost and partial sum is exactly
    # representable, so the vectorised form's reassociated additions give
    # bit-identical DP values and the equivalence is exact.  (On arbitrary
    # floats the two associations can differ by an ulp, which on an *exact
    # tie* of two candidate boundaries may pick the other, equally good,
    # report — see the spring_online module docstring.)
    grid = st.integers(min_value=-64, max_value=64).map(lambda n: n / 32.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(grid, min_size=2, max_size=10),
        st.lists(grid, min_size=1, max_size=60),
        st.integers(min_value=1, max_value=160).map(lambda n: n / 32.0),
    )
    def test_property_equivalent_to_reference(self, pattern, stream, epsilon):
        ref = SpringMatcher(pattern, epsilon)
        vec = OnlineSpringMatcher(pattern, epsilon)
        got = vec.extend(stream) + vec.finish()
        want = ref.extend(stream) + ref.finish()
        assert [(m.start, m.end, m.distance) for m in got] == [
            (w.start, w.end, w.distance) for w in want
        ]

    def test_validation(self):
        with pytest.raises(ValidationError):
            OnlineSpringMatcher([1.0], 1.0)
        with pytest.raises(ValidationError):
            OnlineSpringMatcher([1.0, 2.0], 0.0)
        matcher = OnlineSpringMatcher([1.0, 2.0], 1.0)
        with pytest.raises(ValidationError):
            matcher.append(float("nan"))

    def test_counters(self):
        matcher = OnlineSpringMatcher([0.0, 1.0, 0.0], 1.0)
        assert matcher.pattern_length == 3
        assert matcher.epsilon == 1.0
        matcher.extend([0.1, 0.2])
        assert matcher.samples_seen == 2


class TestPatternMonitor:
    def test_spring_events_match_reference_replay(self):
        base = make_base()
        ing = StreamIngestor(base)
        pattern = base.dataset[0].values[2:8]
        monitor = ing.registry.register(pattern, epsilon=1.2, series="live")
        rng = np.random.default_rng(2)
        values = np.concatenate(
            [rng.normal(size=30).cumsum(), pattern, rng.normal(size=20).cumsum()]
        )
        events = []
        for i in range(0, len(values), 5):
            events += ing.append_points("live", values[i : i + 5])["events"]
        spring_events = [e for e in events if e["kind"] == "match"]
        ref = SpringMatcher(pattern, 1.2)
        want = ref.extend(base.dataset["live"].values)
        assert [(e["start"], e["end"]) for e in spring_events] == [
            (w.start, w.end) for w in want
        ]
        for e, w in zip(spring_events, want):
            assert e["distance"] == pytest.approx(w.distance, abs=1e-9)
        assert monitor.describe()["windows_checked"] > 0

    def test_window_events_match_brute_force_window_scan(self):
        base = make_base()
        ing = StreamIngestor(base)
        pattern = base.dataset[1].values[5:11]
        epsilon = 0.9
        ing.registry.register(pattern, epsilon=epsilon, series="live")
        rng = np.random.default_rng(3)
        values = np.concatenate(
            [rng.normal(size=15).cumsum(), pattern, rng.normal(size=10).cumsum()]
        )
        events = []
        for i in range(0, len(values), 4):
            events += ing.append_points("live", values[i : i + 4])["events"]
        got = sorted(
            (e["start"], e["end"]) for e in events if e["kind"] == "window"
        )
        live = base.dataset["live"].values
        m = len(pattern)
        want = sorted(
            (s, s + m - 1)
            for s in range(len(live) - m + 1)
            if dtw_distance(pattern, live[s : s + m]) <= epsilon
        )
        assert got == want

    def test_prefilter_prunes_and_stays_exact(self):
        base = make_base()
        ing = StreamIngestor(base)
        # A pattern far outside the data's range: everything prefiltered.
        pattern = np.full(6, 1e3)
        monitor = ing.registry.register(pattern, epsilon=0.5, series="live")
        rng = np.random.default_rng(4)
        for v in rng.normal(size=25).cumsum():
            ing.append_points("live", [v])
        described = monitor.describe()
        assert described["windows_checked"] > 0
        assert described["windows_pruned"] == described["windows_checked"]
        assert all(e.kind != "window" for e in ing.poll_events())

    def test_monitor_scoped_to_one_series(self):
        base = make_base()
        ing = StreamIngestor(base)
        pattern = base.dataset[0].values[:5]
        ing.registry.register(pattern, epsilon=5.0, series="only-this")
        ing.append_points("other", np.asarray(pattern, dtype=float))
        assert ing.poll_events() == []
        ing.append_points("only-this", np.asarray(pattern, dtype=float))
        assert any(e.series == "only-this" for e in ing.poll_events())

    def test_unscoped_monitor_watches_every_live_series(self):
        base = make_base()
        ing = StreamIngestor(base)
        pattern = base.dataset[0].values[:5]
        ing.registry.register(pattern, epsilon=5.0)
        ing.append_points("a", np.asarray(pattern, dtype=float))
        ing.append_points("b", np.asarray(pattern, dtype=float))
        series_seen = {e.series for e in ing.poll_events()}
        assert {"a", "b"} <= series_seen


class TestMonitorRegistry:
    def test_sequence_numbers_strictly_increase(self):
        base = make_base()
        ing = StreamIngestor(base)
        ing.registry.register(base.dataset[0].values[:5], epsilon=5.0)
        rng = np.random.default_rng(5)
        for v in rng.normal(size=20).cumsum():
            ing.append_points("live", [v])
        events = ing.poll_events()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # SPRING matches of one monitor+series arrive in stream order.
        spring = [e for e in events if e.kind == "match"]
        assert [e.start for e in spring] == sorted(e.start for e in spring)

    def test_poll_since_and_limit(self):
        base = make_base()
        ing = StreamIngestor(base)
        ing.registry.register(base.dataset[0].values[:5], epsilon=50.0)
        rng = np.random.default_rng(6)
        for v in rng.normal(size=15).cumsum():
            ing.append_points("live", [v])
        events = ing.poll_events()
        assert len(events) >= 2
        tail = ing.poll_events(since=events[0].seq)
        assert [e.seq for e in tail] == [e.seq for e in events[1:]]
        assert len(ing.poll_events(limit=1)) == 1
        assert ing.poll_events(since=events[-1].seq) == []

    def test_bounded_buffer_drops_oldest(self):
        base = make_base()
        registry = MonitorRegistry(base, max_events=5)
        ing = StreamIngestor(base, registry)
        registry.register(base.dataset[0].values[:5], epsilon=100.0)
        rng = np.random.default_rng(7)
        for v in rng.normal(size=30).cumsum():
            ing.append_points("live", [v])
        events = registry.poll()
        assert len(events) == 5
        assert registry.dropped > 0
        assert events[-1].seq == registry.last_seq

    def test_register_unregister(self):
        base = make_base()
        registry = MonitorRegistry(base)
        m1 = registry.register(base.dataset[0].values[:5], epsilon=1.0)
        m2 = registry.register(base.dataset[0].values[:5], epsilon=1.0, name="x")
        assert registry.monitor_names == sorted([m1.name, "x"])
        with pytest.raises(DatasetError, match="duplicate"):
            registry.register(base.dataset[0].values[:5], epsilon=1.0, name="x")
        registry.unregister("x")
        assert "x" not in registry.monitor_names
        with pytest.raises(DatasetError, match="no monitor"):
            registry.unregister("x")
        with pytest.raises(DatasetError, match="no monitor"):
            registry.monitor("ghost")
        assert m2.name == "x"

    def test_pattern_length_outside_index_still_streams(self):
        base = make_base()  # lengths 4..7
        ing = StreamIngestor(base)
        pattern = np.sin(np.linspace(0, 2, 12))  # length 12: no bucket
        ing.registry.register(pattern, epsilon=2.0, series="live")
        rng = np.random.default_rng(8)
        events = []
        for i in range(0, 40, 5):
            chunk = np.concatenate([pattern, rng.normal(size=3)])[:5]
            events += ing.append_points("live", chunk)["events"]
        assert all(e["kind"] == "match" for e in events)


def test_register_rejects_non_finite_epsilon():
    """A bad epsilon must fail at registration, not poison later appends."""
    base = make_base()
    registry = MonitorRegistry(base)
    for bad in (float("inf"), float("nan"), 0.0, -1.0):
        with pytest.raises(ValidationError):
            registry.register(base.dataset[0].values[:5], epsilon=bad)
    assert registry.monitor_names == []


def test_flush_reports_tail_candidate():
    """A match ending on the stream's final sample surfaces via flush."""
    base = make_base()
    ing = StreamIngestor(base)
    pattern = base.dataset[0].values[2:8]
    ing.registry.register(pattern, epsilon=0.5, series="live")
    rng = np.random.default_rng(21)
    # Noise, then the pattern exactly at the tail: the distance-0 match
    # ends on the last appended sample and stays deferred.
    ing.append_points("live", rng.normal(size=20).cumsum())
    ing.append_points("live", np.asarray(pattern, dtype=float))
    before = [e for e in ing.poll_events() if e.kind == "match"]
    flushed = ing.flush_monitors()
    tail = [e for e in flushed if e.kind == "match"]
    assert tail, "flush must report the pending tail candidate"
    assert tail[-1].end == len(base.dataset["live"].values) - 1
    assert tail[-1].distance == pytest.approx(0.0, abs=1e-9)
    assert all(e.end < tail[-1].start for e in before)
    # Flushed events land in the ordered feed like any other.
    polled = [e for e in ing.poll_events() if e.kind == "match"]
    assert polled[-1].seq == tail[-1].seq
    # Idempotent once drained.
    assert ing.flush_monitors() == []
