"""Integration tests for repro.core.engine (the Fig. 1 facade)."""

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.core.engine import OnexEngine
from repro.data.dataset import TimeSeriesDataset
from repro.data.electricity import build_electricity_collection
from repro.data.matters import build_matters_collection
from repro.exceptions import DatasetError, ValidationError


@pytest.fixture(scope="module")
def matters():
    return build_matters_collection(
        indicators=("GrowthRate",), years=14, min_years=8, seed=101
    )


@pytest.fixture(scope="module")
def engine(matters):
    eng = OnexEngine(QueryConfig(mode="fast", refine_groups=2))
    eng.load_dataset(matters, similarity_threshold=0.08, min_length=4, max_length=8)
    return eng


class TestLoading:
    def test_load_reports_stats(self, engine, matters):
        stats = engine.stats(matters.name)
        assert stats.groups > 0
        assert stats.compaction_ratio > 1.0
        assert engine.dataset_names == [matters.name]

    def test_duplicate_load_rejected(self, engine, matters):
        with pytest.raises(DatasetError, match="already loaded"):
            engine.load_dataset(matters)

    def test_unknown_dataset_rejected(self, engine):
        with pytest.raises(DatasetError, match="not loaded"):
            engine.best_match("nope", [0.1, 0.2, 0.3])

    def test_auto_threshold_and_lengths(self):
        rng = np.random.default_rng(102)
        ds = TimeSeriesDataset.from_arrays(
            [rng.normal(size=16).cumsum() for _ in range(4)], name="auto"
        )
        eng = OnexEngine()
        stats = eng.load_dataset(ds)
        base = eng.base("auto")
        assert base.config.similarity_threshold > 0
        assert base.config.max_length == 16
        assert base.config.min_length == 8
        assert stats.groups > 0

    def test_unload(self):
        rng = np.random.default_rng(103)
        ds = TimeSeriesDataset.from_arrays([rng.normal(size=12)], name="tmp")
        eng = OnexEngine()
        eng.load_dataset(ds, similarity_threshold=0.1)
        eng.unload_dataset("tmp")
        assert eng.dataset_names == []
        with pytest.raises(DatasetError):
            eng.unload_dataset("tmp")


class TestFig2Scenario:
    """The demo walk-through: find the state most similar to MA."""

    def test_ma_best_match_is_another_state(self, engine, matters):
        query = engine.query_from_series(matters.name, "MA/GrowthRate", 0, 6)
        match = engine.best_match(matters.name, query)
        assert match.distance >= 0.0
        # Self-match is excluded only by distance ties; the best distinct
        # match must still be very similar (cluster structure).
        if match.series_name == "MA/GrowthRate" and match.start == 0:
            matches = engine.k_best_matches(matters.name, query, 2)
            match = matches[1]
        assert match.distance <= 0.08

    def test_k_best_spans_states(self, engine, matters):
        query = engine.query_from_series(matters.name, "MA/GrowthRate", 0, 6)
        matches = engine.k_best_matches(matters.name, query, 8)
        states = {m.series_name.split("/")[0] for m in matches}
        assert len(states) >= 2

    def test_brushing_changes_results(self, engine, matters):
        """Brushing a different part of the preview requeries (Fig. 2)."""
        early = engine.query_from_series(matters.name, "MA/GrowthRate", 0, 5)
        late_start = len(matters["MA/GrowthRate"]) - 5
        late = engine.query_from_series(matters.name, "MA/GrowthRate", late_start, 5)
        assert early != late
        m_early = engine.best_match(matters.name, early)
        m_late = engine.best_match(matters.name, late)
        assert (m_early.ref != m_late.ref) or (
            m_early.distance != pytest.approx(m_late.distance)
        )

    def test_query_from_series_validation(self, engine, matters):
        with pytest.raises(ValidationError):
            engine.query_from_series(matters.name, "MA/GrowthRate", 0, 1)
        with pytest.raises(ValidationError):
            engine.query_from_series(matters.name, "MA/GrowthRate", 1000, 5)
        with pytest.raises(DatasetError):
            engine.query_from_series(matters.name, "XX/Nope", 0, 5)


class TestOperations:
    def test_matches_within(self, engine, matters):
        query = engine.query_from_series(matters.name, "CA/GrowthRate", 0, 5)
        matches = engine.matches_within(matters.name, query, 0.05)
        for m in matches:
            assert m.distance <= 0.05 + 1e-12

    def test_threshold_recommendation(self, engine, matters):
        rec = engine.recommend_thresholds(matters.name, 6)
        assert rec.default > 0

    def test_overview_payload(self, engine, matters):
        overview = engine.overview(matters.name, limit=10)
        assert 1 <= len(overview) <= 10
        cards = [entry["cardinality"] for entry in overview]
        assert cards == sorted(cards, reverse=True)
        assert all(len(entry["representative"]) == entry["group"][0] for entry in overview)

    def test_overview_specific_length(self, engine):
        overview = engine.overview("MATTERS-sim", length=4, limit=5)
        assert all(entry["group"][0] == 4 for entry in overview)

    def test_seasonal_on_electricity(self):
        eng = OnexEngine()
        ds = build_electricity_collection(households=2, seed=104)
        eng.load_dataset(
            ds, similarity_threshold=0.06, min_length=4, max_length=6
        )
        series = ds[0]
        length = series.metadata["pattern_length"]
        patterns = eng.seasonal_patterns(
            ds.name, series.name, length, 0.06, step=2
        )
        assert isinstance(patterns, list)

    def test_seasonal_defaults_to_base_threshold(self, engine, matters):
        patterns = engine.seasonal_patterns(matters.name, "MA/GrowthRate", 4)
        assert isinstance(patterns, list)

    def test_similarity_profile(self, engine, matters):
        query = engine.query_from_series(matters.name, "MA/GrowthRate", 0, 5)
        profile = engine.similarity_profile(
            matters.name, query, (0.02, 0.05, 0.1), verify=True
        )
        for point in profile.points:
            assert point.certain <= point.exact <= point.possible

    def test_add_series_then_query(self):
        from repro.data.timeseries import TimeSeries

        rng = np.random.default_rng(105)
        ds = TimeSeriesDataset.from_arrays(
            [rng.normal(size=14).cumsum() for _ in range(3)], name="inc-engine"
        )
        eng = OnexEngine(QueryConfig(mode="exact"))
        eng.load_dataset(ds, similarity_threshold=0.1, min_length=4, max_length=6)
        values = rng.normal(size=10).cumsum()
        summary = eng.add_series("inc-engine", TimeSeries("fresh", values))
        assert summary["windows"] > 0
        match = eng.best_match("inc-engine", values[:5])
        assert match.series_name == "fresh"
        assert match.distance == pytest.approx(0.0, abs=1e-9)
