"""Unit tests for the simulated MATTERS and ElectricityLoad collections."""

import numpy as np
import pytest

from repro.data.electricity import build_electricity_collection
from repro.data.matters import (
    DEFAULT_INDICATORS,
    STATE_ABBREVIATIONS,
    build_matters_collection,
)
from repro.exceptions import ValidationError


class TestMatters:
    def test_default_shape(self):
        ds = build_matters_collection(seed=1)
        assert len(ds) == 50 * len(DEFAULT_INDICATORS)
        assert "MA/GrowthRate" in ds

    def test_metadata_populated(self):
        ds = build_matters_collection(seed=1)
        ts = ds["MA/GrowthRate"]
        assert ts.metadata["state"] == "MA"
        assert ts.metadata["indicator"] == "GrowthRate"
        assert isinstance(ts.metadata["start_year"], int)

    def test_variable_lengths(self):
        ds = build_matters_collection(years=25, min_years=8, seed=2)
        lengths = {len(s) for s in ds}
        assert len(lengths) > 1
        assert min(lengths) >= 8
        assert max(lengths) <= 25

    def test_deterministic(self):
        a = build_matters_collection(seed=9)
        b = build_matters_collection(seed=9)
        assert np.array_equal(a["CA/TaxRate"].values, b["CA/TaxRate"].values)

    def test_indicator_scales_differ(self):
        ds = build_matters_collection(seed=3)
        growth = ds["MA/GrowthRate"].values
        unemployment = ds["MA/Unemployment"].values
        assert abs(unemployment.mean()) > 100 * abs(growth.mean())
        assert unemployment.mean() > 0, "unemployment counts should stay positive"

    def test_cluster_states_more_similar(self):
        """States sharing an archetype cluster track each other."""
        ds = build_matters_collection(seed=4)
        by_cluster = {}
        for state in STATE_ABBREVIATIONS:
            ts = ds[f"{state}/GrowthRate"]
            by_cluster.setdefault(ts.metadata["cluster"], []).append(ts)
        clusters = [g for g in by_cluster.values() if len(g) >= 2]
        assert clusters, "expected at least one cluster with two states"
        a, b = clusters[0][0], clusters[0][1]
        n = min(len(a), len(b))
        r = np.corrcoef(a.values[-n:], b.values[-n:])[0, 1]
        assert r > 0.5

    def test_indicator_subset(self):
        ds = build_matters_collection(indicators=("GrowthRate",), seed=1)
        assert len(ds) == 50

    def test_unknown_indicator_rejected(self):
        with pytest.raises(ValidationError, match="unknown indicators"):
            build_matters_collection(indicators=("GDPish",))

    def test_bad_years_rejected(self):
        with pytest.raises(ValidationError):
            build_matters_collection(years=2)
        with pytest.raises(ValidationError):
            build_matters_collection(years=10, min_years=11)


class TestElectricity:
    def test_default_shape(self):
        ds = build_electricity_collection(seed=5)
        assert len(ds) == 8
        assert all(len(s) == 365 for s in ds)

    def test_pattern_starts_recorded(self):
        ds = build_electricity_collection(pattern_repeats=4, seed=6)
        for series in ds:
            starts = series.metadata["pattern_starts"]
            assert 1 <= len(starts) <= 4
            for s in starts:
                assert 0 <= s <= 365 - series.metadata["pattern_length"]

    def test_pattern_occurrences_similar(self):
        ds = build_electricity_collection(households=1, seed=7)
        series = ds[0]
        length = series.metadata["pattern_length"]
        starts = series.metadata["pattern_starts"]
        assert len(starts) >= 2
        windows = [series.values[s : s + length] for s in starts]
        windows = [w - w.mean() for w in windows]
        base = windows[0]
        for w in windows[1:]:
            r = np.corrcoef(base, w)[0, 1]
            assert r > 0.6

    def test_seasonality_present(self):
        ds = build_electricity_collection(households=1, noise=0.01, seed=8)
        values = ds[0].values
        # Winter (Jan) consumption above summer (Jul) for the cosine profile.
        assert values[:30].mean() > values[180:210].mean()

    def test_deterministic(self):
        a = build_electricity_collection(seed=9)
        b = build_electricity_collection(seed=9)
        assert np.array_equal(a[0].values, b[0].values)

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_electricity_collection(households=0)
        with pytest.raises(ValidationError):
            build_electricity_collection(days=10)
        with pytest.raises(ValidationError):
            build_electricity_collection(pattern_length=200, pattern_repeats=4)
        with pytest.raises(ValidationError):
            build_electricity_collection(pattern_repeats=0)
