"""Unit tests for repro.core.threshold."""

import numpy as np
import pytest

from repro.core.threshold import recommend_thresholds
from repro.data.dataset import TimeSeriesDataset
from repro.data.matters import build_matters_collection
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError, ValidationError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(91)
    return TimeSeriesDataset.from_arrays(
        [rng.normal(size=30).cumsum() for _ in range(6)], name="walks"
    )


class TestRecommendation:
    def test_thresholds_sorted_with_quantiles(self, dataset):
        rec = recommend_thresholds(dataset, 8, seed=1)
        assert rec.quantiles == (0.01, 0.05, 0.10, 0.25)
        assert list(rec.thresholds) == sorted(rec.thresholds)
        assert all(t >= 0 for t in rec.thresholds)

    def test_default_is_five_percent(self, dataset):
        rec = recommend_thresholds(dataset, 8, seed=1)
        assert rec.default == rec.thresholds[1]

    def test_default_falls_back_to_tightest(self, dataset):
        rec = recommend_thresholds(dataset, 8, quantiles=(0.2, 0.4), seed=1)
        assert rec.default == rec.thresholds[0]

    def test_deterministic_given_seed(self, dataset):
        a = recommend_thresholds(dataset, 8, seed=5)
        b = recommend_thresholds(dataset, 8, seed=5)
        assert a.thresholds == b.thresholds

    def test_quantiles_bracket_distribution(self, dataset):
        """Thresholds should sit below the mean sampled distance."""
        rec = recommend_thresholds(dataset, 8, seed=2)
        assert rec.thresholds[0] < rec.mean_distance
        assert rec.std_distance > 0

    def test_sample_cap_respected(self, dataset):
        rec = recommend_thresholds(dataset, 29, samples=10_000, seed=3)
        # Only 6 series contribute 2 windows each of length 29 -> 12
        # windows -> 66 distinct pairs.
        assert rec.samples <= 66

    def test_as_dict_shape(self, dataset):
        payload = recommend_thresholds(dataset, 8, seed=4).as_dict()
        assert payload["length"] == 8
        assert "5%" in payload["suggestions"]
        assert payload["default"] == payload["suggestions"]["5%"]

    def test_scale_invariance_through_normalization(self):
        """Same shapes at different scales give the same recommendation."""
        rng = np.random.default_rng(92)
        shapes = [rng.normal(size=20).cumsum() for _ in range(4)]
        small = TimeSeriesDataset.from_arrays(shapes, name="small")
        big = TimeSeriesDataset.from_arrays([s * 1e6 for s in shapes], name="big")
        rec_small = recommend_thresholds(small, 6, seed=7)
        rec_big = recommend_thresholds(big, 6, seed=7)
        for a, b in zip(rec_small.thresholds, rec_big.thresholds):
            assert a == pytest.approx(b, rel=1e-9)

    def test_matters_indicators_need_different_raw_thresholds(self):
        """The paper's motivation: growth rates vs unemployment scales."""
        ds = build_matters_collection(years=12, min_years=8, seed=93)
        growth = TimeSeriesDataset(
            [s for s in ds if s.metadata["indicator"] == "GrowthRate"],
            name="growth",
        )
        unemployment = TimeSeriesDataset(
            [s for s in ds if s.metadata["indicator"] == "Unemployment"],
            name="unemp",
        )
        raw_growth = recommend_thresholds(growth, 6, normalize=False, seed=9)
        raw_unemp = recommend_thresholds(unemployment, 6, normalize=False, seed=9)
        assert raw_unemp.default > 100 * raw_growth.default


class TestValidation:
    def test_bad_length(self, dataset):
        with pytest.raises(ValidationError):
            recommend_thresholds(dataset, 1)

    def test_bad_samples(self, dataset):
        with pytest.raises(ValidationError):
            recommend_thresholds(dataset, 8, samples=5)

    def test_bad_quantiles(self, dataset):
        with pytest.raises(ValidationError):
            recommend_thresholds(dataset, 8, quantiles=(0.0, 0.5))
        with pytest.raises(ValidationError):
            recommend_thresholds(dataset, 8, quantiles=())

    def test_too_few_subsequences(self):
        tiny = TimeSeriesDataset([TimeSeries("one", [1.0, 2.0, 3.0])])
        with pytest.raises(DatasetError, match=">= 2"):
            recommend_thresholds(tiny, 3)
