"""Unit tests for repro.data.resample."""

import numpy as np
import pytest

from repro.data.resample import (
    detrend_moving_average,
    moving_average,
    resample_linear,
)
from repro.exceptions import ValidationError


class TestResampleLinear:
    def test_identity_when_length_matches(self):
        values = np.array([1.0, 3.0, 2.0])
        assert np.allclose(resample_linear(values, 3), values)

    def test_endpoints_preserved(self):
        values = np.array([4.0, 7.0, 1.0, 9.0])
        for length in (2, 5, 11):
            out = resample_linear(values, length)
            assert out[0] == 4.0
            assert out[-1] == 9.0
            assert out.shape == (length,)

    def test_upsampling_linear_between_points(self):
        out = resample_linear([0.0, 2.0], 5)
        assert np.allclose(out, [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_single_input_point(self):
        assert resample_linear([3.0], 4).tolist() == [3.0] * 4

    def test_length_one_output(self):
        assert resample_linear([1.0, 5.0], 1).tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            resample_linear([1.0], 0)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(moving_average(values, 1), values)

    def test_flat_input_unchanged(self):
        values = np.full(10, 4.0)
        assert np.allclose(moving_average(values, 5), 4.0)

    def test_interior_matches_numpy_convolve(self):
        rng = np.random.default_rng(191)
        values = rng.normal(size=50)
        window = 7
        out = moving_average(values, window)
        ref = np.convolve(values, np.ones(window) / window, mode="valid")
        # Interior points (full windows) must match exactly.
        assert np.allclose(out[3:-3], ref)

    def test_edges_use_truncated_windows(self):
        values = np.array([0.0, 10.0, 20.0])
        out = moving_average(values, 3)
        assert out[0] == pytest.approx(5.0)  # mean of first two
        assert out[1] == pytest.approx(10.0)
        assert out[2] == pytest.approx(15.0)

    def test_window_larger_than_series(self):
        values = np.array([2.0, 4.0])
        out = moving_average(values, 99)
        assert np.allclose(out, 3.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            moving_average([1.0], 0)


class TestDetrend:
    def test_removes_slow_trend(self):
        t = np.arange(200.0)
        slow = 0.1 * t
        fast = np.sin(2 * np.pi * t / 10.0)
        out = detrend_moving_average(slow + fast, 30)
        # The oscillation survives, the trend is (mostly) gone.
        interior = out[30:-30]
        assert abs(np.polyfit(np.arange(interior.size), interior, 1)[0]) < 0.01
        assert interior.std() > 0.5

    def test_flat_input_maps_to_zero(self):
        assert np.allclose(detrend_moving_average(np.full(20, 9.0), 5), 0.0)
