"""Failure-injection tests: corrupted artifacts, hostile inputs, edge data.

The demo runs as a long-lived server; these tests pin down how the
library behaves when the world misbehaves — corrupted persisted bases,
unparsable files, NaN-laden queries, and degenerate collections — always
a typed error or a clean error response, never a crash or silent wrong
answer.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.data.ucr_format import load_ucr_file
from repro.exceptions import (
    DatasetError,
    OnexError,
    PersistenceError,
    ValidationError,
)
from repro.server.http import OnexHttpServer
from repro.server.protocol import Request
from repro.server.service import OnexService


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(161)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=14).cumsum() for _ in range(3)], name="fi"
    )
    b = OnexBase(ds, BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6))
    b.build()
    return b


class TestCorruptedBaseFiles:
    def test_truncated_npz(self, base, tmp_path):
        path = tmp_path / "base.npz"
        base.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # The varied zipfile/numpy error surface is wrapped in one type.
        with pytest.raises(PersistenceError, match="corrupt or unreadable"):
            OnexBase.load(path, base.raw_dataset)

    def test_not_an_npz(self, base, tmp_path):
        path = tmp_path / "base.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(PersistenceError, match="corrupt or unreadable"):
            OnexBase.load(path, base.raw_dataset)

    def test_missing_file(self, base, tmp_path):
        with pytest.raises(FileNotFoundError):
            OnexBase.load(tmp_path / "ghost.npz", base.raw_dataset)

    def test_content_tampering_detected(self, base, tmp_path):
        """Flipping array bytes the zip layer accepts trips the checksum."""
        path = tmp_path / "base.npz"
        base.save(path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        victim = next(
            name
            for name in sorted(arrays)
            if name != "meta" and arrays[name].size
        )
        tampered = arrays[victim].copy()
        tampered.flat[0] += 1
        arrays[victim] = tampered
        np.savez_compressed(path, **arrays)
        with pytest.raises(PersistenceError, match="checksum"):
            OnexBase.load(path, base.raw_dataset)

    def test_meta_tampering_detected(self, base, tmp_path):
        """A base saved from different data must refuse to attach."""
        path = tmp_path / "base.npz"
        base.save(path)
        other = TimeSeriesDataset.from_arrays(
            [np.arange(14.0) for _ in range(3)], name="fi"
        )
        with pytest.raises(DatasetError, match="does not match"):
            OnexBase.load(path, other)


class TestHostileQueries:
    def test_nan_query_rejected(self, base):
        processor = QueryProcessor(base)
        with pytest.raises(ValidationError, match="NaN"):
            processor.best_match([0.1, float("nan"), 0.3])

    def test_empty_query_rejected(self, base):
        with pytest.raises(ValidationError):
            QueryProcessor(base).best_match([])

    def test_2d_query_rejected(self, base):
        with pytest.raises(ValidationError):
            QueryProcessor(base).best_match([[0.1, 0.2], [0.3, 0.4]])

    def test_inf_threshold_rejected(self, base):
        with pytest.raises(ValidationError):
            QueryProcessor(base).matches_within([0.1, 0.2], float("-inf"))

    def test_extreme_values_still_answer(self, base):
        """Huge finite values normalise and answer without overflow."""
        match = QueryProcessor(base).best_match([1e12, 2e12, 3e12, 2e12])
        assert np.isfinite(match.distance)


class TestHostileFiles:
    def test_binary_garbage_ucr(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_bytes(bytes(range(256)))
        with pytest.raises((DatasetError, UnicodeDecodeError)):
            load_ucr_file(path)

    def test_all_nan_line(self, tmp_path):
        path = tmp_path / "nan.txt"
        path.write_text("1,NaN,NaN,NaN\n")
        with pytest.raises(DatasetError):
            load_ucr_file(path)


class TestServiceRobustness:
    def test_wrong_param_types_become_errors(self):
        svc = OnexService()
        resp = svc.handle(
            Request(
                "load_dataset",
                {"source": "matters", "years": "twelve"},
            )
        )
        assert not resp.ok
        assert resp.error_type == "ValueError"

    def test_query_against_unloaded_dataset(self):
        svc = OnexService()
        resp = svc.handle(
            Request("best_match", {"dataset": "ghost", "query": [1.0, 2.0]})
        )
        assert not resp.ok
        assert resp.error_type == "DatasetError"

    def test_nan_query_over_protocol(self):
        svc = OnexService()
        svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 4},
            )
        )
        resp = svc.handle(
            Request(
                "best_match",
                {"dataset": "ElectricityLoad-sim", "query": [1.0, float("nan")]},
            )
        )
        assert not resp.ok
        assert resp.error_type == "ValidationError"


class TestHttpRobustness:
    @pytest.fixture(scope="class")
    def server(self):
        with OnexHttpServer(OnexService()) as srv:
            yield srv

    def test_empty_body(self, server):
        req = urllib.request.Request(f"{server.url}/api", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_non_json_body(self, server):
        req = urllib.request.Request(f"{server.url}/api", data=b"\x00\xff binary")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_json_array_body(self, server):
        req = urllib.request.Request(f"{server.url}/api", data=b"[1, 2, 3]")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "ProtocolError"


class TestDegenerateCollections:
    def test_single_point_series_excluded_from_lengths(self):
        ds = TimeSeriesDataset(
            [TimeSeries("long", np.arange(10.0)), TimeSeries("dot", [1.0])]
        )
        base = OnexBase(
            ds, BuildConfig(similarity_threshold=0.1, min_length=4, max_length=5)
        )
        stats = base.build()  # the 1-point series simply contributes nothing
        assert stats.subsequences == (10 - 4 + 1) + (10 - 5 + 1)

    def test_constant_collection(self):
        ds = TimeSeriesDataset([TimeSeries("flat", np.full(12, 7.0))])
        base = OnexBase(
            ds, BuildConfig(similarity_threshold=0.1, min_length=4, max_length=5)
        )
        stats = base.build()
        assert stats.groups == 2  # one group per length; all windows equal
        match = QueryProcessor(base).best_match([7.0, 7.0, 7.0, 7.0])
        assert match.distance == pytest.approx(0.0)

    def test_two_point_series(self):
        ds = TimeSeriesDataset([TimeSeries("tiny", [1.0, 2.0])])
        base = OnexBase(
            ds, BuildConfig(similarity_threshold=0.5, min_length=2, max_length=2)
        )
        base.build()
        match = QueryProcessor(base).best_match([1.0, 2.0])
        assert match.length == 2
