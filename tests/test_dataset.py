"""Unit tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError, ValidationError


def make_dataset():
    return TimeSeriesDataset(
        [
            TimeSeries("a", [0.0, 1.0, 2.0, 3.0]),
            TimeSeries("b", [10.0, 11.0, 12.0]),
            TimeSeries("c", [5.0, 5.0]),
        ],
        name="toy",
    )


class TestCollectionBasics:
    def test_len_and_iteration(self):
        ds = make_dataset()
        assert len(ds) == 3
        assert [s.name for s in ds] == ["a", "b", "c"]

    def test_lookup_by_name_and_index(self):
        ds = make_dataset()
        assert ds["b"].values.tolist() == [10.0, 11.0, 12.0]
        assert ds[0].name == "a"
        assert ds.index_of("c") == 2

    def test_contains(self):
        ds = make_dataset()
        assert "a" in ds
        assert "zzz" not in ds

    def test_unknown_name_raises(self):
        ds = make_dataset()
        with pytest.raises(DatasetError, match="zzz"):
            ds["zzz"]
        with pytest.raises(DatasetError):
            ds.index_of("zzz")

    def test_duplicate_name_rejected(self):
        ds = make_dataset()
        with pytest.raises(DatasetError, match="duplicate"):
            ds.add(TimeSeries("a", [1.0]))

    def test_add_non_series_rejected(self):
        ds = make_dataset()
        with pytest.raises(ValidationError, match="TimeSeries"):
            ds.add([1.0, 2.0])

    def test_from_arrays_autonames(self):
        ds = TimeSeriesDataset.from_arrays([[1.0], [2.0, 3.0]])
        assert ds.names == ["series-0", "series-1"]

    def test_from_arrays_explicit_names(self):
        ds = TimeSeriesDataset.from_arrays([[1.0]], names=["only"])
        assert ds.names == ["only"]


class TestNormalization:
    def test_global_bounds(self):
        assert make_dataset().global_bounds() == (0.0, 12.0)

    def test_normalized_shares_bounds(self):
        ds = make_dataset().normalized()
        assert ds["a"].values.min() == 0.0
        assert ds["b"].values.max() == 1.0
        # 'c' is flat at 5.0 within global bounds [0, 12] -> 5/12.
        assert ds["c"].values[0] == pytest.approx(5.0 / 12.0)

    def test_normalized_preserves_names_and_count(self):
        ds = make_dataset().normalized()
        assert ds.names == ["a", "b", "c"]

    def test_empty_dataset_bounds_raise(self):
        with pytest.raises(DatasetError, match="empty"):
            TimeSeriesDataset().global_bounds()


class TestSubsequences:
    def test_iter_subsequences_counts(self):
        ds = make_dataset()
        refs = list(ds.iter_subsequences(2))
        # a: 3 windows, b: 2 windows, c: 1 window.
        assert len(refs) == 6

    def test_iter_respects_step(self):
        ds = make_dataset()
        refs = list(ds.iter_subsequences(2, step=2))
        starts = [(r.series_index, r.start) for r in refs]
        assert starts == [(0, 0), (0, 2), (1, 0), (2, 0)]

    def test_values_resolve(self):
        ds = make_dataset()
        ref = SubsequenceRef(1, 1, 2)
        assert ds.values(ref).tolist() == [11.0, 12.0]

    def test_values_bad_series_index(self):
        ds = make_dataset()
        with pytest.raises(DatasetError, match="out of range"):
            ds.values(SubsequenceRef(9, 0, 1))

    def test_count_subsequences_matches_enumeration(self):
        ds = make_dataset()
        total = sum(len(list(ds.iter_subsequences(n))) for n in (2, 3))
        assert ds.count_subsequences(2, 3) == total

    def test_count_subsequences_handles_long_lengths(self):
        ds = make_dataset()
        # max_length above every series length is fine.
        assert ds.count_subsequences(4, 10) == 1  # only 'a' has length 4

    def test_count_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            make_dataset().count_subsequences(3, 2)

    def test_subsequence_matrix(self):
        ds = make_dataset()
        matrix, refs = ds.subsequence_matrix(3)
        assert matrix.shape == (3, 3)  # two from 'a', one from 'b'
        for row, ref in zip(matrix, refs):
            assert row.tolist() == ds.values(ref).tolist()

    def test_subsequence_matrix_empty(self):
        ds = make_dataset()
        matrix, refs = ds.subsequence_matrix(99)
        assert matrix.shape == (0, 99)
        assert refs == []

    def test_invalid_length_rejected(self):
        with pytest.raises(ValidationError):
            list(make_dataset().iter_subsequences(0))

    def test_invalid_step_rejected(self):
        with pytest.raises(ValidationError):
            list(make_dataset().iter_subsequences(2, step=0))


class TestSubsequenceRef:
    def test_overlap_same_series(self):
        a = SubsequenceRef(0, 0, 5)
        b = SubsequenceRef(0, 4, 5)
        c = SubsequenceRef(0, 5, 5)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_no_overlap_across_series(self):
        a = SubsequenceRef(0, 0, 5)
        b = SubsequenceRef(1, 0, 5)
        assert not a.overlaps(b)

    def test_ordering(self):
        assert SubsequenceRef(0, 1, 2) < SubsequenceRef(0, 2, 2) < SubsequenceRef(1, 0, 2)

    def test_stop(self):
        assert SubsequenceRef(0, 3, 4).stop == 7


class TestDescribe:
    def test_summary_fields(self):
        info = make_dataset().describe()
        assert info["series"] == 3
        assert info["total_points"] == 9
        assert info["min_length"] == 2
        assert info["max_length"] == 4
        assert info["value_min"] == 0.0
        assert info["value_max"] == 12.0

    def test_empty_summary(self):
        assert TimeSeriesDataset().describe()["series"] == 0

    def test_length_range(self):
        assert make_dataset().length_range() == (2, 4)
