"""Unit tests for repro.data.ucr_format."""

import numpy as np
import pytest

from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.data.ucr_format import load_ucr_file, save_ucr_file
from repro.exceptions import DatasetError


class TestLoad:
    def test_comma_separated_with_labels(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,0.5,0.7,0.9\n2,1.5,1.7\n")
        ds = load_ucr_file(path)
        assert len(ds) == 2
        assert ds[0].metadata["label"] == 1.0
        assert ds[0].values.tolist() == [0.5, 0.7, 0.9]
        assert len(ds[1]) == 2

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("0 1.0 2.0 3.0\n")
        ds = load_ucr_file(path)
        assert ds[0].values.tolist() == [1.0, 2.0, 3.0]

    def test_without_labels(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("0.5,0.7\n")
        ds = load_ucr_file(path, has_labels=False)
        assert ds[0].values.tolist() == [0.5, 0.7]
        assert "label" not in ds[0].metadata

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,2.0\n\n1,3.0\n")
        assert len(load_ucr_file(path)) == 2

    def test_trailing_nan_padding_stripped(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,2.0,3.0,NaN,NaN\n")
        ds = load_ucr_file(path)
        assert ds[0].values.tolist() == [2.0, 3.0]

    def test_interior_nan_rejected(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,2.0,NaN,3.0\n")
        with pytest.raises(DatasetError, match="interior NaN"):
            load_ucr_file(path)

    def test_unparsable_field(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,hello\n")
        with pytest.raises(DatasetError, match="toy.txt:1"):
            load_ucr_file(path)

    def test_label_only_line_rejected(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1\n")
        with pytest.raises(DatasetError, match=">= 2"):
            load_ucr_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("\n\n")
        with pytest.raises(DatasetError, match="no series"):
            load_ucr_file(path)

    def test_custom_name(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("1,2.0\n")
        ds = load_ucr_file(path, name="renamed")
        assert ds.name == "renamed"
        assert ds[0].name.startswith("renamed-")


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        original = TimeSeriesDataset(
            [
                TimeSeries("a", [1.5, 2.5, 3.5], metadata={"label": 1.0}),
                TimeSeries("b", [0.25, 0.75], metadata={"label": 2.0}),
            ]
        )
        path = tmp_path / "round.txt"
        save_ucr_file(original, path)
        loaded = load_ucr_file(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0].values, original[0].values)
        assert loaded[0].metadata["label"] == 1.0
        assert np.array_equal(loaded[1].values, original[1].values)

    def test_save_without_labels(self, tmp_path):
        ds = TimeSeriesDataset([TimeSeries("a", [1.0, 2.0])])
        path = tmp_path / "nolabel.txt"
        save_ucr_file(ds, path, with_labels=False)
        loaded = load_ucr_file(path, has_labels=False)
        assert loaded[0].values.tolist() == [1.0, 2.0]

    def test_exact_float_round_trip(self, tmp_path):
        values = [0.1, 1 / 3, 2**-30]
        ds = TimeSeriesDataset([TimeSeries("a", values)])
        path = tmp_path / "exact.txt"
        save_ucr_file(ds, path)
        loaded = load_ucr_file(path)
        assert loaded[0].values.tolist() == values
