"""Property tests: the batched analytics paths equal the seed scalar paths.

The seasonal / sensitivity / threshold rebuild (DESIGN.md §6) keeps the
seed scalar implementations reachable — ``use_batching=False`` on the
analytics entry points, ``base=None`` on the recommender — precisely so
these properties can assert, over randomised collections, lengths,
windows, and threshold grids, that the cascade changes *nothing* about
the results, only how fast they arrive.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.core.seasonal import find_seasonal_patterns
from repro.core.sensitivity import similarity_profile
from repro.core.threshold import recommend_thresholds
from repro.core.validation import as_int_arg, as_optional_int_arg
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.dtw import dtw_distance
from repro.distances.lower_bounds import lb_pairwise_table
from repro.exceptions import ValidationError

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def walk(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n).cumsum()


class TestSeasonalEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(40, 120),
        length=st.integers(4, 12),
        threshold=st.floats(0.01, 0.3),
        window=st.one_of(st.none(), st.integers(0, 4)),
        step=st.integers(1, 3),
    )
    def test_batched_equals_scalar(self, seed, n, length, threshold, window, step):
        series = TimeSeries("s", walk(seed, n))
        kwargs = dict(step=step, window=window)
        batched = find_seasonal_patterns(
            series, length, threshold, use_batching=True, **kwargs
        )
        scalar = find_seasonal_patterns(
            series, length, threshold, use_batching=False, **kwargs
        )
        assert len(batched) == len(scalar)
        for a, b in zip(batched, scalar):
            assert a.starts == b.starts
            assert a.length == b.length
            assert a.max_pairwise_dtw == pytest.approx(
                b.max_pairwise_dtw, abs=1e-12
            )

    def test_remove_level_and_ed_threshold_equivalence(self):
        series = TimeSeries("s", walk(7, 200))
        for kwargs in (
            dict(remove_level=True),
            dict(ed_threshold=0.4),
            dict(remove_level=True, ed_threshold=0.3, min_occurrences=3),
        ):
            a = find_seasonal_patterns(
                series, 10, 0.1, use_batching=True, **kwargs
            )
            b = find_seasonal_patterns(
                series, 10, 0.1, use_batching=False, **kwargs
            )
            assert [(p.starts, p.max_pairwise_dtw) for p in a] == [
                (p.starts, p.max_pairwise_dtw) for p in b
            ]


class TestSensitivityEquivalence:
    @pytest.fixture(scope="class")
    def base(self):
        dataset = TimeSeriesDataset.from_arrays(
            [walk(151 + k, 24 + 4 * k) for k in range(3)], name="sens"
        )
        b = OnexBase(
            dataset,
            BuildConfig(similarity_threshold=0.1, min_length=5, max_length=7),
        )
        b.build()
        return b

    @settings(max_examples=40, deadline=None)
    @given(
        qseed=st.integers(0, 10_000),
        qlen=st.integers(4, 9),
        grid=st.lists(
            st.floats(0.001, 0.5), min_size=1, max_size=6, unique=True
        ),
        verify=st.booleans(),
        window=st.one_of(st.none(), st.integers(0, 3)),
    )
    def test_batched_equals_scalar(self, base, qseed, qlen, grid, verify, window):
        q = np.random.default_rng(qseed).uniform(size=qlen)
        batched = similarity_profile(
            base, q, grid, verify=verify, window=window, normalize=False,
            use_batching=True,
        )
        scalar = similarity_profile(
            base, q, grid, verify=verify, window=window, normalize=False,
            use_batching=False,
        )
        assert batched.candidates == scalar.candidates
        assert batched.thresholds == scalar.thresholds
        for a, b in zip(batched.points, scalar.points):
            assert (a.certain, a.possible, a.exact) == (
                b.certain, b.possible, b.exact
            )


class TestThresholdEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        length=st.integers(2, 20),
        samples=st.integers(10, 500),
        sample_seed=st.integers(0, 50),
    )
    def test_base_sampler_equals_standalone(self, seed, length, samples, sample_seed):
        dataset = TimeSeriesDataset.from_arrays(
            [walk(seed + k, 20 + 3 * k) for k in range(4)], name="walks"
        )
        base = OnexBase(
            dataset,
            BuildConfig(similarity_threshold=0.1, min_length=5, max_length=6),
        )
        base.build()
        via_base = recommend_thresholds(
            dataset, length, samples=samples, seed=sample_seed, base=base
        )
        standalone = recommend_thresholds(
            dataset, length, samples=samples, seed=sample_seed
        )
        assert via_base == standalone

    def test_mismatched_base_falls_back(self):
        """A base over a different collection must not answer the sampling."""
        a = TimeSeriesDataset.from_arrays([walk(1, 30), walk(2, 30)], name="a")
        b = TimeSeriesDataset.from_arrays([walk(3, 30), walk(4, 30)], name="b")
        base_b = OnexBase(
            b, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=6)
        )
        base_b.build()
        assert recommend_thresholds(a, 6, base=base_b) == recommend_thresholds(a, 6)

    def test_unnormalized_base_mismatch_falls_back(self):
        ds = TimeSeriesDataset.from_arrays([walk(5, 30), walk(6, 30)], name="d")
        base = OnexBase(
            ds,
            BuildConfig(
                similarity_threshold=0.1, min_length=5, max_length=6,
                normalize=False,
            ),
        )
        base.build()
        # normalize=True request against an unnormalised base: fallback.
        assert recommend_thresholds(ds, 6, base=base) == recommend_thresholds(ds, 6)
        # matching normalize=False: the base path applies and agrees.
        assert recommend_thresholds(
            ds, 6, normalize=False, base=base
        ) == recommend_thresholds(ds, 6, normalize=False)


class TestPairwiseLowerBoundTable:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.lists(finite_floats, min_size=5, max_size=5),
            min_size=2,
            max_size=6,
        ),
        window=st.one_of(st.none(), st.integers(0, 4)),
    )
    def test_never_exceeds_banded_dtw(self, rows, window):
        mat = np.asarray(rows)
        table = lb_pairwise_table(mat, radius=window)
        assert table.shape == (mat.shape[0],) * 2
        for i in range(mat.shape[0]):
            for j in range(mat.shape[0]):
                if i == j:
                    continue
                exact = dtw_distance(mat[i], mat[j], window=window)
                assert table[i, j] <= exact + 1e-9

    def test_validation(self):
        with pytest.raises(ValidationError, match="2-D"):
            lb_pairwise_table(np.zeros(3))
        with pytest.raises(ValidationError, match="length >= 2"):
            lb_pairwise_table(np.zeros((2, 1)))
        assert lb_pairwise_table(np.empty((0, 4))).shape == (0, 0)


class TestAnalyticsArgumentValidation:
    """Regression: array-typed scalars must fail loudly, not with numpy's
    "truth value of an array is ambiguous" deep in the computation."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return TimeSeriesDataset.from_arrays(
            [walk(9, 30), walk(10, 30)], name="v"
        )

    def test_recommend_rejects_non_int_length(self, dataset):
        for bad in (np.arange(3), 8.0, "8", None, True):
            with pytest.raises(ValidationError, match="length must be an integer"):
                recommend_thresholds(dataset, bad)

    def test_recommend_rejects_non_int_samples(self, dataset):
        with pytest.raises(ValidationError, match="samples must be an integer"):
            recommend_thresholds(dataset, 8, samples=np.arange(4))

    def test_seasonal_rejects_non_int_args(self, dataset):
        series = TimeSeries("s", walk(11, 60))
        with pytest.raises(ValidationError, match="length must be an integer"):
            find_seasonal_patterns(series, np.arange(2), 0.1)
        with pytest.raises(ValidationError, match="step must be an integer"):
            find_seasonal_patterns(series, 10, 0.1, step=2.0)
        with pytest.raises(ValidationError, match="window must be an integer"):
            find_seasonal_patterns(series, 10, 0.1, window=np.arange(2))

    def test_sensitivity_rejects_non_int_window(self, dataset):
        base = OnexBase(
            dataset,
            BuildConfig(similarity_threshold=0.1, min_length=5, max_length=6),
        )
        base.build()
        with pytest.raises(ValidationError, match="window must be an integer"):
            similarity_profile(base, walk(12, 6), (0.1,), window=np.arange(2))

    def test_numpy_integers_accepted(self):
        assert as_int_arg(np.int64(5), "x") == 5
        assert as_optional_int_arg(None, "x") is None
        assert as_optional_int_arg(np.int32(3), "x") == 3
