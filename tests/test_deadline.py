"""Deadline & cancellation tests: the cooperative budget layer end to end.

Three families of guarantees:

- **Control-flow purity** — a search with an ample budget is bit-identical
  to the same search with no deadline at all (Hypothesis property);
- **Coverage** — armed with a ``sleep`` fault at each chunk boundary, the
  matching cascade stage observes the expiry and raises a structured
  :class:`DeadlineExceeded` carrying stage/progress/best (or degrades to
  flagged partial results when ``allow_partial`` is set and something was
  verified);
- **Protocol surface** — ``timeout_ms``/``allow_partial`` validate in the
  service layer and the error envelope carries the details payload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.deadline import CancellationToken, Deadline
from repro.core.engine import OnexEngine
from repro.core.query import QueryProcessor
from repro.core.seasonal import find_seasonal_patterns
from repro.core.sensitivity import similarity_profile
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DeadlineExceeded, ValidationError
from repro.server.protocol import Request
from repro.server.service import OnexService
from repro.testing import faults

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm_all()
    yield
    faults.disarm_all()


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(61)
    arrays = [rng.normal(size=n).cumsum() for n in (30, 28, 26, 32)]
    dataset = TimeSeriesDataset.from_arrays(arrays, name="deadline-walks")
    b = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6)
    )
    b.build()
    return b


def _as_tuples(matches):
    return [
        (m.ref, m.distance, m.raw_distance, m.path, m.exact) for m in matches
    ]


class TestDeadlineObject:
    def test_validation(self):
        for bad in (0, -1, float("inf"), float("nan"), True, "50"):
            with pytest.raises(ValidationError):
                Deadline(bad)

    def test_no_budget_never_expires(self):
        d = Deadline()
        assert not d.expired
        assert d.remaining_ms() == float("inf")
        d.check("anywhere")  # no-op

    def test_check_reports_stage_and_progress(self):
        d = Deadline.after(0.001)
        import time

        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded) as excinfo:
            d.check("some stage", {"done": 3})
        err = excinfo.value
        assert err.stage == "some stage"
        assert err.progress == {"done": 3}
        assert err.details() == {
            "stage": "some stage",
            "progress": {"done": 3},
            "best": None,
        }
        assert "some stage" in str(err)

    def test_token_cancels_unbounded_deadline(self):
        token = CancellationToken()
        d = Deadline(token=token)
        assert not d.expired
        token.cancel()
        assert d.expired
        with pytest.raises(DeadlineExceeded, match="cancelled"):
            d.check("scan")

    def test_config_rejects_non_deadline(self):
        with pytest.raises(ValidationError, match="deadline"):
            QueryConfig(deadline=50)

    def test_processor_rejects_non_deadline(self, base):
        with pytest.raises(ValidationError, match="Deadline"):
            QueryProcessor(base).best_match([0.1, 0.2, 0.3, 0.4], deadline=50)


class TestAmpleBudgetIdentity:
    """A deadline that never fires must never change a result."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(finite_floats, min_size=4, max_size=6))
    def test_k_best_identical(self, base, q):
        ample = Deadline.after(120_000, allow_partial=True)
        for mode in ("fast", "exact"):
            processor = QueryProcessor(base, QueryConfig(mode=mode))
            got = processor.k_best_matches(q, 3, deadline=ample)
            want = processor.k_best_matches(q, 3)
            assert _as_tuples(got) == _as_tuples(want)
            assert all(m.exact for m in got)

    def test_batch_identical(self, base):
        rng = np.random.default_rng(62)
        queries = [rng.uniform(size=5) for _ in range(4)]
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        got = processor.batch_matches(
            queries, 3, deadline=Deadline.after(120_000, allow_partial=True)
        )
        want = processor.batch_matches(queries, 3)
        assert [_as_tuples(m) for m in got] == [_as_tuples(m) for m in want]

    def test_matches_within_identical(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        q = np.linspace(0.2, 0.8, 5)
        got = processor.matches_within(q, 0.1, deadline=Deadline.after(120_000))
        want = processor.matches_within(q, 0.1)
        assert _as_tuples(got) == _as_tuples(want)


class TestDeadlineFiresPerStage:
    """A slow chunk boundary is observed by that stage's check."""

    def _expect(self, excinfo, stage):
        err = excinfo.value
        assert err.stage == stage
        assert isinstance(err.progress, dict) and err.progress

    def test_exact_representative_cascade(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.k_best_matches(
                    [0.1, 0.4, 0.2, 0.5], 3, deadline=Deadline.after(1.0)
                )
        self._expect(excinfo, "representative cascade")

    def test_fast_representative_ranking(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="fast"))
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.best_match(
                    [0.1, 0.4, 0.2, 0.5], deadline=Deadline.after(1.0)
                )
        self._expect(excinfo, "representative ranking")

    def test_eager_representative_refinement(self, base):
        processor = QueryProcessor(
            base, QueryConfig(mode="exact", use_rep_prefilter=False)
        )
        with faults.inject("query.refine_unit", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.k_best_matches(
                    [0.1, 0.4, 0.2, 0.5], 3, deadline=Deadline.after(1.0)
                )
        self._expect(excinfo, "eager representative refinement")

    def test_member_refinement(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.refine_unit", "sleep", seconds=0.3):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.k_best_matches(
                    [0.1, 0.4, 0.2, 0.5], 3, deadline=Deadline.after(200.0)
                )
        self._expect(excinfo, "member refinement")

    def test_batch_seed_refinement(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.batch_matches(
                    [[0.1, 0.4, 0.2, 0.5], [0.5, 0.2, 0.4, 0.1]],
                    2,
                    deadline=Deadline.after(1.0),
                )
        self._expect(excinfo, "batch seed refinement")

    def test_threshold_scan(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.refine_unit", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.matches_within(
                    [0.1, 0.4, 0.2, 0.5], 0.2, deadline=Deadline.after(1.0)
                )
        self._expect(excinfo, "threshold scan")

    def test_seasonal_group_scan(self):
        series = TimeSeries("periodic", np.tile(np.sin(np.linspace(0, 6, 8)), 5))
        with faults.inject("seasonal.group", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                find_seasonal_patterns(
                    series, 8, 0.5, deadline=Deadline.after(1.0)
                )
        self._expect(excinfo, "seasonal group scan")

    def test_seasonal_pair_verification(self):
        # 8 occurrences -> 28 unique pairs, enough for the finder's
        # bound-pruned chunked path (its only chunk boundary) to engage.
        series = TimeSeries("periodic", np.tile(np.sin(np.linspace(0, 6, 8)), 8))
        with faults.inject("seasonal.pair_chunk", "sleep", seconds=0.3):
            with pytest.raises(DeadlineExceeded) as excinfo:
                find_seasonal_patterns(
                    series, 8, 0.5, deadline=Deadline.after(200.0)
                )
        self._expect(excinfo, "seasonal pair verification")

    @pytest.mark.parametrize("allow_partial", [False, True])
    def test_sensitivity_always_raises(self, base, allow_partial):
        """A subset of buckets would misreport counts: no partial mode."""
        with faults.inject("sensitivity.bucket", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                similarity_profile(
                    base,
                    [0.1, 0.4, 0.2, 0.5],
                    [0.05, 0.1],
                    deadline=Deadline.after(1.0, allow_partial=allow_partial),
                )
        self._expect(excinfo, "sensitivity profile")

    def test_build_deadline_registers_nothing(self):
        engine = OnexEngine()
        rng = np.random.default_rng(63)
        dataset = TimeSeriesDataset.from_arrays(
            [rng.normal(size=20).cumsum() for _ in range(3)], name="slow-build"
        )
        with faults.inject("build.merge", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                engine.load_dataset(
                    dataset,
                    similarity_threshold=0.2,
                    min_length=4,
                    max_length=6,
                    deadline=Deadline.after(1.0),
                )
        assert excinfo.value.stage == "base build"
        assert engine.dataset_names == []  # no partially built dataset

    def test_stream_monitor_raises(self):
        engine = OnexEngine()
        rng = np.random.default_rng(64)
        dataset = TimeSeriesDataset.from_arrays(
            [rng.normal(size=20).cumsum() for _ in range(2)], name="live"
        )
        engine.load_dataset(
            dataset, similarity_threshold=0.2, min_length=4, max_length=4
        )
        engine.register_monitor("live", [0.1, 0.5, 0.2, 0.6], series="feed")
        with faults.inject("stream.step", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                engine.append_points(
                    "live",
                    "feed",
                    [0.1, 0.5, 0.2, 0.6, 0.3, 0.7],
                    deadline=Deadline.after(1.0),
                )
        assert excinfo.value.stage == "stream window scan"


class TestPartialResults:
    def test_nothing_verified_raises_even_with_allow_partial(self, base):
        """Partial mode never fabricates: an empty heap still errors."""
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            with pytest.raises(DeadlineExceeded) as excinfo:
                processor.k_best_matches(
                    [0.1, 0.4, 0.2, 0.5],
                    3,
                    deadline=Deadline.after(1.0, allow_partial=True),
                )
        assert excinfo.value.best is None

    def test_k_best_degrades_to_verified_partial(self, base):
        processor = QueryProcessor(
            base, QueryConfig(mode="exact", use_rep_prefilter=False)
        )
        with faults.inject("query.refine_unit", "sleep", seconds=0.1):
            matches = processor.k_best_matches(
                [0.1, 0.4, 0.2, 0.5],
                3,
                deadline=Deadline.after(150.0, allow_partial=True),
            )
        assert matches and all(not m.exact for m in matches)
        assert processor.last_stats.partial_results >= 1
        # Partial distances are still true DTW distances: each returned
        # match appears in the exhaustive result set with the same distance.
        full = {
            m.ref: m.distance
            for m in processor.matches_within([0.1, 0.4, 0.2, 0.5], 100.0)
        }
        for m in matches:
            assert full[m.ref] == m.distance

    def test_batch_degrades_per_query(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            results = processor.batch_matches(
                [[0.1, 0.4, 0.2, 0.5], [0.5, 0.2, 0.4, 0.1]],
                2,
                deadline=Deadline.after(1.0, allow_partial=True),
            )
        assert len(results) == 2
        assert any(results)  # round 1 seeded at least one query's heap
        for matches in results:
            assert all(not m.exact for m in matches)

    def test_matches_within_flags_partial(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        with faults.inject("query.refine_unit", "sleep", seconds=0.1):
            matches = processor.matches_within(
                [0.1, 0.4, 0.2, 0.5],
                10.0,
                deadline=Deadline.after(150.0, allow_partial=True),
            )
        assert matches and all(not m.exact for m in matches)
        full = processor.matches_within([0.1, 0.4, 0.2, 0.5], 10.0)
        assert len(matches) < len(full)

    def test_seasonal_returns_verified_prefix(self):
        series = TimeSeries("periodic", np.tile(np.sin(np.linspace(0, 6, 8)), 5))
        full = find_seasonal_patterns(series, 8, 0.5)
        with faults.inject("seasonal.group", "sleep", seconds=0.1):
            partial = find_seasonal_patterns(
                series, 8, 0.5, deadline=Deadline.after(150.0, allow_partial=True)
            )
        assert len(partial) <= len(full)
        # Whatever is reported is fully verified — it appears in the
        # complete run with identical occurrence sets.
        full_keys = {p.starts for p in full}
        for pattern in partial:
            assert pattern.starts in full_keys


class TestServiceDeadlines:
    @pytest.fixture(scope="class")
    def service(self):
        svc = OnexService(QueryConfig(mode="exact"))
        resp = svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 2,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 5},
            )
        )
        assert resp.ok, resp.error_message
        return svc

    def test_invalid_timeout_rejected(self, service):
        for bad in ("soon", -5, 0, True):
            resp = service.handle(
                Request(
                    "best_match",
                    {"dataset": "ElectricityLoad-sim",
                     "query": [0.1, 0.2, 0.3, 0.4], "timeout_ms": bad},
                )
            )
            assert not resp.ok
            assert resp.error_type == "ValidationError"

    def test_invalid_allow_partial_rejected(self, service):
        resp = service.handle(
            Request(
                "best_match",
                {"dataset": "ElectricityLoad-sim",
                 "query": [0.1, 0.2, 0.3, 0.4],
                 "timeout_ms": 1000, "allow_partial": "yes"},
            )
        )
        assert not resp.ok
        assert resp.error_type == "ValidationError"

    def test_deadline_error_carries_details(self, service):
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            resp = service.handle(
                Request(
                    "best_match",
                    {"dataset": "ElectricityLoad-sim",
                     "query": [0.1, 0.2, 0.3, 0.4], "timeout_ms": 1},
                )
            )
        assert not resp.ok
        assert resp.error_type == "DeadlineExceeded"
        assert resp.error_details is not None
        assert set(resp.error_details) == {"stage", "progress", "best"}
        assert resp.error_details["stage"] == "representative cascade"
        # The envelope survives a JSON round trip with details intact.
        from repro.server.protocol import Response

        rebuilt = Response.from_json(resp.to_json())
        assert rebuilt.error_details == resp.error_details

    def test_partial_over_protocol(self, service):
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            resp = service.handle(
                Request(
                    "query_batch",
                    {"dataset": "ElectricityLoad-sim",
                     "queries": [[0.1, 0.2, 0.3, 0.4], [0.4, 0.3, 0.2, 0.1]],
                     "k": 2, "timeout_ms": 1, "allow_partial": True},
                )
            )
        assert resp.ok, resp.error_message
        payloads = [
            m for entry in resp.result["results"] for m in entry["matches"]
        ]
        assert payloads and all(m["exact"] is False for m in payloads)

    def test_ample_request_marks_exact(self, service):
        resp = service.handle(
            Request(
                "best_match",
                {"dataset": "ElectricityLoad-sim",
                 "query": [0.1, 0.2, 0.3, 0.4], "timeout_ms": 120_000},
            )
        )
        assert resp.ok
        assert resp.result["exact"] is True

    def test_default_timeout_applies(self):
        svc = OnexService(QueryConfig(mode="exact"), default_timeout_ms=1.0)
        resp = svc.handle(
            Request(
                "load_dataset",
                {"source": "electricity", "households": 1,
                 "similarity_threshold": 0.1, "min_length": 4, "max_length": 4,
                 "timeout_ms": 120_000},  # explicit budget wins for the load
            )
        )
        assert resp.ok, resp.error_message
        with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
            resp = svc.handle(
                Request(
                    "best_match",
                    {"dataset": "ElectricityLoad-sim",
                     "query": [0.1, 0.2, 0.3, 0.4]},
                )
            )
        assert not resp.ok
        assert resp.error_type == "DeadlineExceeded"
