"""Hypothesis property tests for the distance substrate.

These encode the formal statements from DESIGN.md §2: kernel agreement,
metric axioms, lower-bound validity, and the ED->DTW transfer lemma that
justifies the entire ONEX architecture.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.bounds import transfer_bounds
from repro.distances.dtw import (
    dtw_cost_matrix,
    dtw_distance,
    dtw_distance_early_abandon,
    dtw_path,
)
from repro.distances.envelope import keogh_envelope
from repro.distances.lower_bounds import lb_keogh, lb_kim
from repro.distances.metrics import euclidean_l1, normalized_euclidean

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


def seq(min_size=1, max_size=16):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


@settings(max_examples=150, deadline=None)
@given(seq(), seq())
def test_vectorised_kernel_agrees_with_row_scan(x, y):
    """The anti-diagonal kernel and the row-scan matrix must agree."""
    fast = dtw_distance(x, y)
    matrix = dtw_cost_matrix(x, y)[-1, -1]
    assert math.isclose(fast, matrix, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=150, deadline=None)
@given(seq(), seq())
def test_dtw_path_distance_agrees_with_kernel(x, y):
    res = dtw_path(x, y)
    assert math.isclose(res.distance, dtw_distance(x, y), rel_tol=1e-9, abs_tol=1e-9)
    # Path cost re-summed by hand equals the reported distance.
    total = sum(abs(x[i] - y[j]) for i, j in res.path)
    assert math.isclose(total, res.distance, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(seq(), seq())
def test_dtw_symmetry(x, y):
    assert math.isclose(
        dtw_distance(x, y), dtw_distance(y, x), rel_tol=1e-9, abs_tol=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(seq())
def test_dtw_identity(x):
    assert dtw_distance(x, x) == 0.0


@settings(max_examples=100, deadline=None)
@given(seq(min_size=2, max_size=12), st.integers(min_value=0, max_value=6))
def test_banded_dtw_upper_bounds_unconstrained(x, window):
    rng = np.random.default_rng(len(x))
    y = rng.normal(size=len(x)).tolist()
    assert dtw_distance(x, y) <= dtw_distance(x, y, window=window) + 1e-9


@settings(max_examples=100, deadline=None)
@given(seq(min_size=3, max_size=14), seq(min_size=3, max_size=14))
def test_dtw_bounded_by_euclidean_when_equal_length(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    assert dtw_distance(x, y) <= euclidean_l1(x, y) + 1e-9


@settings(max_examples=150, deadline=None)
@given(seq(), seq())
def test_lb_kim_never_exceeds_dtw(x, y):
    assert lb_kim(x, y) <= dtw_distance(x, y) + 1e-9


@settings(max_examples=100, deadline=None)
@given(seq(min_size=4, max_size=14), st.integers(min_value=0, max_value=5), st.randoms())
def test_lb_keogh_never_exceeds_banded_dtw(q, radius, rnd):
    c = [rnd.uniform(-100, 100) for _ in q]
    lower, upper = keogh_envelope(q, radius)
    assert lb_keogh(c, lower, upper) <= dtw_distance(q, c, window=radius) + 1e-9


@settings(max_examples=150, deadline=None)
@given(
    seq(min_size=2, max_size=12),
    seq(min_size=2, max_size=12),
    st.lists(st.floats(min_value=-2.0, max_value=2.0, allow_nan=False), min_size=2, max_size=12),
)
def test_transfer_lemma_contains_true_dtw(q, r, noise):
    """The central ONEX theorem: DTW(q,s) lies within the transfer bounds."""
    n = min(len(r), len(noise))
    r = r[:n]
    s = [r_i + d_i for r_i, d_i in zip(r, noise[:n])]
    bound = transfer_bounds(q, r, s)
    true = dtw_distance(q, s)
    assert bound.lower <= true + 1e-9
    assert true <= bound.upper + 1e-9


@settings(max_examples=100, deadline=None)
@given(seq(min_size=2, max_size=12), seq(min_size=2, max_size=12))
def test_early_abandon_exact_or_inf(x, y):
    exact = dtw_distance(x, y)
    threshold = exact * 0.9
    got = dtw_distance_early_abandon(x, y, threshold)
    if exact <= threshold:  # only when exact == 0
        assert math.isclose(got, exact, abs_tol=1e-12)
    else:
        assert math.isinf(got)
    got_loose = dtw_distance_early_abandon(x, y, exact + 1.0)
    assert math.isclose(got_loose, exact, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(seq(min_size=1, max_size=16), seq(min_size=1, max_size=16))
def test_normalized_euclidean_triangle_inequality(x, y):
    """ED_n is a metric; the group construction relies on its triangle."""
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    z = [(a + b) / 2 + 1.0 for a, b in zip(x, y)]
    dxz = normalized_euclidean(x, z)
    dzy = normalized_euclidean(z, y)
    dxy = normalized_euclidean(x, y)
    assert dxy <= dxz + dzy + 1e-9
