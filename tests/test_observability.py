"""The metrics registry, /metrics exposition, /health additions,
request-ID propagation, query EXPLAIN, and structured logging."""

import io
import json
import logging

import pytest

import repro
from repro.exceptions import ProtocolError
from repro.obs.logs import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantile,
    parse_exposition,
)
from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.protocol import Request, Response
from repro.server.service import OnexService

LOAD_PARAMS = {
    "source": "matters",
    "similarity_threshold": 0.08,
    "min_length": 4,
    "max_length": 6,
    "years": 12,
    "min_years": 8,
}


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc(op="a")
        c.inc(2.0, op="a")
        c.inc(op="b")
        assert c.value(op="a") == 3.0
        assert c.value(op="b") == 1.0
        assert c.total() == 4.0

    def test_get_or_create_is_idempotent_but_kind_safe(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "x")
        assert reg.counter("x_total", "x") is c
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "d")
        g.set(5.0)
        g.dec(2.0)
        g.inc()
        assert g.value() == 4.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "l", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()
        counts = dict(snap["buckets"])
        assert counts[1.0] == 1
        assert counts[10.0] == 2
        assert counts[100.0] == 3
        assert counts[float("inf")] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)

    def test_render_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops").inc(3.0, op="k_best")
        reg.gauge("temp", "t").set(1.5, zone="a b")
        reg.histogram("ms", "m", buckets=(1.0,)).observe(0.5)
        parsed = parse_exposition(reg.render())
        assert parsed["ops_total"][(("op", "k_best"),)] == 3.0
        assert parsed["temp"][(("zone", "a b"),)] == 1.5
        assert parsed["ms_count"][()] == 1.0
        assert parsed["ms_sum"][()] == 0.5
        assert (("le", "1.0"),) in parsed["ms_bucket"] or (
            ("le", "1"),
        ) in parsed["ms_bucket"]

    def test_quantile_interpolates_and_clamps(self):
        buckets = [(1.0, 10.0), (10.0, 20.0), (float("inf"), 20.0)]
        assert histogram_quantile(buckets, 0.25) == pytest.approx(0.5)
        assert histogram_quantile(buckets, 1.0) == 10.0  # +Inf clamps
        assert histogram_quantile([], 0.5) != histogram_quantile([], 0.5)  # NaN


@pytest.fixture(scope="module")
def server():
    service = OnexService()
    with OnexHttpServer(service) as srv:
        client = OnexClient(srv.url)
        client.call("load_dataset", LOAD_PARAMS)
        yield srv


class TestMetricsEndpoint:
    def test_scrape_is_parseable_prometheus_text(self, server):
        client = OnexClient(server.url)
        text = client.scrape_metrics()
        parsed = parse_exposition(text)
        # Every subsystem the PR instruments shows up in one scrape.
        assert "onex_queries_total" in parsed or "onex_server_requests_total" in parsed
        assert "onex_builds_total" in parsed
        assert "onex_server_uptime_seconds" in parsed
        assert parsed["onex_server_info"][(("version", repro.__version__),)] == 1.0
        assert "# HELP" in text and "# TYPE" in text

    def test_counters_are_monotone_across_requests(self, server):
        client = OnexClient(server.url)
        before = parse_exposition(client.scrape_metrics())
        client.call(
            "k_best",
            {"dataset": "MATTERS-sim", "query": [0.2, 0.5, 0.3, 0.6], "k": 2},
        )
        after = parse_exposition(client.scrape_metrics())
        for name, series in before.items():
            if name.endswith(("_total", "_count", "_sum", "_bucket")):
                for key, value in series.items():
                    assert after[name][key] >= value, (name, key)
        served = sum(
            v
            for k, v in after["onex_server_requests_total"].items()
            if ("op", "k_best") in k
        ) - sum(
            v
            for k, v in before.get("onex_server_requests_total", {}).items()
            if ("op", "k_best") in k
        )
        assert served >= 1.0

    def test_health_reports_version_uptime_fingerprints(self, server):
        health = OnexClient(server.url).health()
        assert health["version"] == repro.__version__
        assert health["uptime_s"] > 0
        fp = health["fingerprints"]["MATTERS-sim"]
        assert isinstance(fp, str) and len(fp) >= 16


class TestRequestIds:
    def test_client_mints_and_server_echoes(self, server):
        client = OnexClient(server.url)
        client.call("list_datasets")
        assert client.last_request_id
        assert client.last_response_request_id == client.last_request_id

    def test_header_matches_envelope(self, server):
        import urllib.request

        body = Request("list_datasets", request_id="abc123").to_json().encode()
        req = urllib.request.Request(
            f"{server.url}/api",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["X-Request-Id"] == "abc123"
            payload = json.loads(resp.read())
        assert payload["request_id"] == "abc123"

    def test_server_mints_when_absent(self, server):
        import urllib.request

        req = urllib.request.Request(
            f"{server.url}/api",
            data=b'{"op": "list_datasets"}',
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            header = resp.headers["X-Request-Id"]
            payload = json.loads(resp.read())
        assert header and payload["request_id"] == header

    def test_service_layer_mints_too(self):
        service = OnexService()
        resp = service.handle(Request("list_datasets"))
        assert resp.ok and resp.request_id

    def test_protocol_rejects_bad_request_id(self):
        with pytest.raises(ProtocolError):
            Request("list_datasets", request_id="")
        with pytest.raises(ProtocolError):
            Request.from_dict({"op": "list_datasets", "request_id": 7})

    def test_response_round_trips_request_id(self):
        resp = Response.success({"x": 1}).with_request_id("rid-1")
        again = Response.from_json(resp.to_json())
        assert again.request_id == "rid-1"


@pytest.fixture(scope="module")
def service():
    svc = OnexService()
    resp = svc.handle(Request("load_dataset", LOAD_PARAMS))
    assert resp.ok, resp.error_message
    return svc


class TestExplain:
    def test_explain_schema_and_identity(self, service):
        params = {
            "dataset": "MATTERS-sim",
            "query": [0.2, 0.5, 0.3, 0.6],
            "k": 3,
        }
        plain = service.handle(Request("k_best", params))
        explained = service.handle(Request("k_best", {**params, "explain": True}))
        assert plain.ok and explained.ok
        assert "explain" not in plain.result
        explain = explained.result["explain"]
        assert explain["request_id"] == explained.request_id
        assert explain["duration_ms"] > 0
        spans = explain["spans"]
        assert spans["name"] == "trace"
        assert spans["children"][0]["name"] == "op.k_best"
        assert isinstance(explain["stats"], dict)
        assert explain["stats"]["rep_dtw_calls"] >= 0
        result_only = {k: v for k, v in explained.result.items() if k != "explain"}
        assert result_only == plain.result

    def test_explain_on_analytics_has_no_stats_block(self, service):
        resp = service.handle(
            Request(
                "sensitivity",
                {
                    "dataset": "MATTERS-sim",
                    "query": [0.2, 0.5, 0.3, 0.6],
                    "thresholds": [0.05, 0.1],
                    "explain": True,
                },
            )
        )
        assert resp.ok, resp.error_message
        explain = resp.result["explain"]
        assert "stats" not in explain
        assert explain["spans"]["children"][0]["name"] == "op.sensitivity"

    def test_explain_rejected_where_unsupported(self, service):
        resp = service.handle(
            Request("describe", {"dataset": "MATTERS-sim", "explain": True})
        )
        assert not resp.ok
        assert resp.error_type == "ProtocolError"

    def test_explain_false_is_untraced(self, service):
        resp = service.handle(
            Request(
                "k_best",
                {
                    "dataset": "MATTERS-sim",
                    "query": [0.2, 0.5, 0.3, 0.6],
                    "k": 2,
                    "explain": False,
                },
            )
        )
        assert resp.ok and "explain" not in resp.result


class TestStructuredLogs:
    def _capture(self, json_mode):
        stream = io.StringIO()
        root = configure_logging("debug", json_mode=json_mode, stream=stream)
        return stream, root

    def _reset(self):
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if not isinstance(handler, logging.NullHandler):
                root.removeHandler(handler)

    def test_json_lines_carry_event_and_fields(self):
        stream, _ = self._capture(json_mode=True)
        try:
            log_event(get_logger("test"), "warning", "unit.event", op="k_best", n=3)
            line = json.loads(stream.getvalue().strip())
            assert line["event"] == "unit.event"
            assert line["op"] == "k_best" and line["n"] == 3
            assert line["level"].lower() == "warning"
            assert line["logger"] == "repro.test"
        finally:
            self._reset()

    def test_keyvalue_format_is_greppable(self):
        stream, _ = self._capture(json_mode=False)
        try:
            log_event(get_logger("test"), "info", "unit.kv", a=1, b="x")
            out = stream.getvalue()
            assert "unit.kv" in out and "a=1" in out and "b=x" in out
        finally:
            self._reset()

    def test_server_lifecycle_events_are_logged(self):
        stream, _ = self._capture(json_mode=True)
        try:
            with OnexHttpServer(OnexService()):
                pass
            events = [
                json.loads(line)["event"]
                for line in stream.getvalue().splitlines()
            ]
            assert "server.started" in events
            assert "server.stopped" in events
            stopped = next(
                json.loads(line)
                for line in stream.getvalue().splitlines()
                if json.loads(line)["event"] == "server.stopped"
            )
            assert stopped["drained"] == 0 and stopped["aborted"] == 0
        finally:
            self._reset()

    def test_formatters_are_exception_safe(self):
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "ev", None, None
        )
        record.onex_fields = {"weird": object()}
        assert "ev" in JsonFormatter().format(record)
        assert "ev" in KeyValueFormatter().format(record)
