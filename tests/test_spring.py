"""Unit tests for the SPRING stream monitor (reference [7])."""

import math

import numpy as np
import pytest

from repro.baselines.spring import SpringMatch, SpringMatcher
from repro.distances.dtw import dtw_distance
from repro.exceptions import ValidationError


def subsequence_dtw_best(pattern, stream):
    """Brute force: the minimum DTW over all stream subsequences."""
    best = (math.inf, None, None)
    n = len(stream)
    for s in range(n):
        for e in range(s, n):
            d = dtw_distance(pattern, stream[s : e + 1])
            if d < best[0]:
                best = (d, s, e)
    return best


class TestDetection:
    def test_verbatim_occurrence_found(self):
        pattern = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        stream = np.concatenate([np.full(10, 5.0), pattern, np.full(10, 5.0)])
        matcher = SpringMatcher(pattern, epsilon=0.5)
        matches = matcher.extend(stream) + matcher.finish()
        assert len(matches) == 1
        match = matches[0]
        assert match.distance == pytest.approx(0.0)
        assert (match.start, match.end) == (10, 14)

    def test_match_distance_is_true_subsequence_dtw(self):
        rng = np.random.default_rng(181)
        pattern = np.sin(np.arange(8.0))
        noise = rng.normal(scale=3.0, size=30)
        stream = np.concatenate([noise[:15], pattern + 0.01, noise[15:]])
        matcher = SpringMatcher(pattern, epsilon=1.0)
        matches = matcher.extend(stream) + matcher.finish()
        assert matches
        for match in matches:
            true = dtw_distance(pattern, stream[match.start : match.end + 1])
            assert match.distance == pytest.approx(true)

    def test_multiple_occurrences_reported_separately(self):
        pattern = np.array([0.0, 2.0, 4.0, 2.0, 0.0])
        gap = np.full(12, 10.0)
        stream = np.concatenate([gap, pattern, gap, pattern, gap])
        matcher = SpringMatcher(pattern, epsilon=0.5)
        matches = matcher.extend(stream) + matcher.finish()
        assert len(matches) == 2
        assert matches[0].end < matches[1].start  # non-overlapping

    def test_warped_occurrence_found(self):
        pattern = np.array([0.0, 1.0, 3.0, 1.0, 0.0])
        warped = np.array([0.0, 1.0, 1.0, 3.0, 3.0, 1.0, 0.0])  # stretched
        stream = np.concatenate([np.full(8, 9.0), warped, np.full(8, 9.0)])
        matcher = SpringMatcher(pattern, epsilon=0.5)
        matches = matcher.extend(stream) + matcher.finish()
        assert len(matches) == 1
        assert matches[0].distance == pytest.approx(0.0)
        assert matches[0].length == 7

    def test_no_match_in_hostile_noise(self):
        rng = np.random.default_rng(182)
        pattern = np.zeros(6)
        stream = rng.uniform(5.0, 10.0, size=50)
        matcher = SpringMatcher(pattern, epsilon=0.1)
        assert matcher.extend(stream) + matcher.finish() == []

    def test_agrees_with_brute_force_optimum(self):
        rng = np.random.default_rng(183)
        pattern = rng.normal(size=5).cumsum()
        stream = np.concatenate(
            [rng.normal(size=10).cumsum() + 4.0, pattern, rng.normal(size=10)]
        )
        best_dist, best_s, best_e = subsequence_dtw_best(pattern, stream)
        matcher = SpringMatcher(pattern, epsilon=best_dist + 0.25)
        matches = matcher.extend(stream) + matcher.finish()
        assert matches
        top = min(matches, key=lambda m: m.distance)
        assert top.distance == pytest.approx(best_dist)
        assert (top.start, top.end) == (best_s, best_e)


class TestStreamingBehaviour:
    def test_incremental_vs_bulk_identical(self):
        rng = np.random.default_rng(184)
        pattern = np.sin(np.arange(6.0))
        stream = rng.normal(size=60)
        a = SpringMatcher(pattern, epsilon=2.0)
        bulk = a.extend(stream) + a.finish()
        b = SpringMatcher(pattern, epsilon=2.0)
        incremental = []
        for v in stream:
            incremental.extend(b.append(float(v)))
        incremental.extend(b.finish())
        assert bulk == incremental

    def test_samples_seen(self):
        matcher = SpringMatcher([0.0, 1.0], epsilon=1.0)
        assert matcher.samples_seen == 0
        matcher.append(1.0)
        matcher.append(2.0)
        assert matcher.samples_seen == 2

    def test_finish_idempotent(self):
        pattern = np.array([0.0, 1.0, 0.0])
        matcher = SpringMatcher(pattern, epsilon=0.5)
        matcher.extend(np.concatenate([np.full(5, 9.0), pattern]))
        first = matcher.finish()
        assert len(first) == 1
        assert matcher.finish() == []


class TestValidation:
    def test_short_pattern_rejected(self):
        with pytest.raises(ValidationError):
            SpringMatcher([1.0], epsilon=1.0)

    def test_bad_epsilon(self):
        with pytest.raises(ValidationError):
            SpringMatcher([1.0, 2.0], epsilon=0.0)
        with pytest.raises(ValidationError):
            SpringMatcher([1.0, 2.0], epsilon=math.inf)

    def test_nonfinite_sample_rejected(self):
        matcher = SpringMatcher([1.0, 2.0], epsilon=1.0)
        with pytest.raises(ValidationError):
            matcher.append(float("nan"))
