"""Contract tests for the public API surface.

A downstream user's view of the library is ``repro.__all__`` and the
subpackage ``__all__`` lists; these tests pin that surface: every
advertised name resolves, everything callable is documented, and the
README's example scripts actually exist.
"""

import importlib
import inspect
from pathlib import Path

import pytest

import repro

SUBPACKAGES = [
    "repro.analytics",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.distances",
    "repro.server",
    "repro.stream",
    "repro.viz",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing {name}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_entry_points_exported(self):
        for name in (
            "OnexEngine",
            "OnexBase",
            "QueryProcessor",
            "BuildConfig",
            "QueryConfig",
            "TimeSeries",
            "TimeSeriesDataset",
            "UcrSuiteSearcher",
            "SpringMatcher",
            "StreamIngestor",
            "MonitorRegistry",
            "OnlineSpringMatcher",
            "KnnClassifier",
            "kmedoids",
            "similarity_profile",
            "find_seasonal_patterns",
            "recommend_thresholds",
            "build_matters_collection",
            "build_electricity_collection",
        ):
            assert name in repro.__all__, f"{name} missing from repro.__all__"


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_resolves_and_is_sorted(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"
        assert list(module.__all__) == sorted(module.__all__), (
            f"{module_name}.__all__ is not sorted"
        )

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_objects_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module_name}.{name} lacks a docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()


class TestRepositoryLayout:
    def test_readme_examples_exist(self):
        root = Path(repro.__file__).resolve().parents[2]
        readme = (root / "README.md").read_text()
        examples_dir = root / "examples"
        referenced = {
            line.split("examples/")[1].split()[0]
            for line in readme.splitlines()
            if "python examples/" in line
        }
        assert referenced, "README should reference example scripts"
        for name in referenced:
            assert (examples_dir / name).exists(), f"README references missing {name}"

    def test_design_and_experiments_present(self):
        root = Path(repro.__file__).resolve().parents[2]
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            text = (root / doc).read_text()
            assert len(text) > 1000, f"{doc} looks unexpectedly thin"

    def test_every_benchmark_maps_to_design_index(self):
        root = Path(repro.__file__).resolve().parents[2]
        design = (root / "DESIGN.md").read_text()
        for bench in sorted((root / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, (
                f"{bench.name} not referenced in DESIGN.md's experiment index"
            )
