"""Idempotent mutating retries: window unit tests + end-to-end dedup.

The contract (DESIGN.md §8): the client mints one ``request_id`` per
logical mutating call and re-sends it verbatim on every retry; the
service remembers each durable operation's outcome per id, so a
duplicate executes **zero** times and receives the recorded response.
This is what licenses the client to retry ``append_points`` &co. at all.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.durability.idempotency import IdempotencyWindow
from repro.exceptions import OverloadedError
from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.protocol import Response
from repro.server.service import OnexService
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


class TestIdempotencyWindow:
    def test_miss_then_hit(self):
        window = IdempotencyWindow(4)
        assert window.lookup("a") is None
        response = Response.success({"x": 1})
        window.record("a", response)
        assert window.lookup("a") is response
        assert len(window) == 1

    def test_none_id_is_never_remembered(self):
        window = IdempotencyWindow(4)
        window.record(None, Response.success({}))
        assert window.lookup(None) is None
        assert len(window) == 0

    def test_failures_are_remembered_too(self):
        window = IdempotencyWindow(4)
        window.record("bad", Response.failure(ValueError("nope")))
        cached = window.lookup("bad")
        assert cached is not None and not cached.ok

    def test_lru_eviction_at_capacity(self):
        window = IdempotencyWindow(3)
        for key in ("a", "b", "c"):
            window.record(key, Response.success({"k": key}))
        window.lookup("a")  # refresh: "b" is now the oldest
        window.record("d", Response.success({"k": "d"}))
        assert window.lookup("b") is None
        assert window.lookup("a") is not None
        assert window.lookup("d") is not None
        assert len(window) == 3

    def test_clear(self):
        window = IdempotencyWindow(4)
        window.record("a", Response.success({}))
        window.clear()
        assert window.lookup("a") is None and len(window) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            IdempotencyWindow(0)


# ---------------------------------------------------------------------------
# End-to-end over HTTP
# ---------------------------------------------------------------------------

_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"
_APPEND = {"dataset": _DATASET, "series": "live", "values": [1.0, 2.0, 3.0, 4.0]}


def _post(url, envelope):
    req = urllib.request.Request(
        f"{url}/api",
        data=json.dumps(envelope).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def _series_length(client):
    return len(
        client.call("query_preview", {"dataset": _DATASET, "series": "live"})[
            "values"
        ]
    )


class TestHttpDedup:
    @pytest.fixture()
    def server(self):
        with OnexHttpServer(OnexService(), max_in_flight=2) as srv:
            OnexClient(srv.url).call("load_dataset", _LOAD)
            yield srv

    def test_duplicate_request_id_executes_once(self, server):
        envelope = {"op": "append_points", "params": _APPEND, "request_id": "dup-1"}
        first = _post(server.url, envelope)
        second = _post(server.url, envelope)
        assert first["ok"] and second["ok"]
        assert second["result"] == first["result"]
        assert second["request_id"] == "dup-1"
        assert _series_length(OnexClient(server.url)) == 4

    def test_distinct_ids_both_execute(self, server):
        for request_id in ("one", "two"):
            _post(
                server.url,
                {"op": "append_points", "params": _APPEND, "request_id": request_id},
            )
        assert _series_length(OnexClient(server.url)) == 8

    def test_failure_response_is_replayed_not_reexecuted(self, server):
        envelope = {
            "op": "append_points",
            "params": {**_APPEND, "values": [float("nan")]},
            "request_id": "bad-1",
        }
        first = _post(server.url, envelope)
        second = _post(server.url, envelope)
        assert not first["ok"] and not second["ok"]
        assert second["error"]["type"] == first["error"]["type"]


class TestClientMutatingRetries:
    @pytest.fixture()
    def server(self):
        with OnexHttpServer(
            OnexService(), max_in_flight=1, max_queue=0
        ) as srv:
            OnexClient(srv.url).call("load_dataset", _LOAD)
            yield srv

    def _occupy(self, server, seconds):
        faults.arm("server.handle", "sleep", seconds=seconds, times=1)
        blocker = threading.Thread(
            target=lambda: OnexClient(server.url, max_retries=0).call(
                "list_datasets", {}
            )
        )
        blocker.start()
        time.sleep(0.1)
        return blocker

    def test_shed_then_retried_mutation_executes_exactly_once(self, server):
        def patient_sleep(seconds):
            time.sleep(max(seconds, 0.15))

        blocker = self._occupy(server, 0.3)
        client = OnexClient(server.url, max_retries=5, sleep=patient_sleep)
        result = client.call("append_points", _APPEND)
        blocker.join(timeout=30)
        assert result["points" if "points" in result else "total_points"] == 4
        assert client.retries_performed >= 1
        assert _series_length(client) == 4  # one execution despite retries

        metrics = client.metrics()
        assert metrics["mutating"]["calls"] == 1
        assert metrics["mutating"]["retries"] >= 1
        assert metrics["mutating"]["last_op"] == "append_points"
        assert metrics["mutating"]["last_attempts"] >= 2
        assert metrics["mutating"]["last_request_id"]

    def test_zero_budget_fails_fast(self, server):
        blocker = self._occupy(server, 0.4)
        client = OnexClient(
            server.url, max_retries=5, retry_budget_s=0.0, sleep=lambda s: None
        )
        with pytest.raises(OverloadedError):
            client.call("append_points", _APPEND)
        blocker.join(timeout=30)
        assert client.retries_performed == 0

    def test_retry_reuses_one_request_id(self, server):
        """Every resend carries the same id — the key dedup hinges on."""
        blocker = self._occupy(server, 0.3)
        client = OnexClient(
            server.url, max_retries=5, sleep=lambda s: time.sleep(0.15)
        )
        client.call("append_points", _APPEND)
        blocker.join(timeout=30)
        metrics = client.metrics()
        assert metrics["last_request_id"] == metrics["last_response_request_id"]
        assert metrics["mutating"]["last_request_id"] == metrics["last_request_id"]

    def test_read_only_calls_do_not_touch_mutating_stats(self, server):
        client = OnexClient(server.url)
        client.call("list_datasets", {})
        metrics = client.metrics()
        assert metrics["calls"] == 1
        assert metrics["mutating"]["calls"] == 0
        assert metrics["mutating"]["last_op"] is None
