"""Representative-layer cascade, banded/paired kernels, and batch queries.

Property tests for the PR-3 surface: the band-limited batch kernel is
bit-identical to the full kernel at every window radius, the persisted
representative summaries give provable lower bounds and survive
persistence (including pre-v3 archives without them), the centroid
prefilter is result-preserving in exact mode, and the multi-query
execution layer returns exactly what per-query submission returns.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import (
    OnexBase,
    RepresentativeSummary,
    default_envelope_radius,
)
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.dtw import (
    _dtw_batch_banded,
    _dtw_batch_full,
    _dtw_batch_scalar,
    dtw_distance,
    dtw_distance_batch,
    dtw_distance_batch_banded,
    effective_band,
)
from repro.distances.envelope import keogh_envelope, keogh_envelope_batch
from repro.distances.lower_bounds import (
    lb_kim_batch,
    lb_kim_endpoints_batch,
)
from repro.exceptions import ValidationError

finite_floats = st.floats(min_value=-25.0, max_value=25.0, allow_nan=False)


def sequences(min_size=1, max_size=10):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


class TestBandedKernel:
    """The banded kernel matches the full kernel for *every* radius."""

    @given(
        x=sequences(),
        rows=st.lists(sequences(min_size=4, max_size=4), min_size=1, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_banded_matches_full_for_every_radius(self, x, rows):
        a = np.asarray(x)
        mat = np.asarray(rows)
        n, m = a.shape[0], mat.shape[1]
        for window in range(0, n + m):
            band = effective_band(n, m, window)
            want_d, want_p = _dtw_batch_full(a, mat, band, False, True)
            got_d, got_p = _dtw_batch_banded(a, mat, band, False, True)
            assert np.array_equal(want_d, got_d)
            assert np.array_equal(want_p, got_p)

    @given(
        x=sequences(min_size=2, max_size=8),
        rows=st.lists(sequences(min_size=6, max_size=6), min_size=1, max_size=3),
        window=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_scalar_and_dispatch_match_full(self, x, rows, window):
        a = np.asarray(x)
        mat = np.asarray(rows)
        band = effective_band(a.shape[0], mat.shape[1], window)
        want_d, want_p = _dtw_batch_full(a, mat, band, False, True)
        scal_d, scal_p = _dtw_batch_scalar(a, mat, band, False, True)
        disp_d, disp_p = dtw_distance_batch(
            a, mat, window=window, with_path_length=True
        )
        pub_d, pub_p = dtw_distance_batch_banded(
            a, mat, window=window, with_path_length=True
        )
        for got_d, got_p in ((scal_d, scal_p), (disp_d, disp_p), (pub_d, pub_p)):
            assert np.array_equal(want_d, got_d)
            assert np.array_equal(want_p, got_p)

    def test_banded_requires_window(self):
        with pytest.raises(ValidationError):
            dtw_distance_batch_banded([1.0, 2.0], np.ones((2, 2)), window=None)

    @given(
        pairs=st.lists(
            st.tuples(sequences(min_size=5, max_size=5), sequences(min_size=7, max_size=7)),
            min_size=1,
            max_size=5,
        ),
        window=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
    )
    @settings(max_examples=75, deadline=None)
    def test_paired_mode_matches_per_pair(self, pairs, window):
        X = np.asarray([p[0] for p in pairs])
        M = np.asarray([p[1] for p in pairs])
        got_d, got_p = dtw_distance_batch(X, M, window=window, with_path_length=True)
        for i in range(len(pairs)):
            want_d, want_p = dtw_distance_batch(
                X[i], M[i : i + 1], window=window, with_path_length=True
            )
            assert got_d[i] == want_d[0]
            assert got_p[i] == want_p[0]

    def test_paired_mode_row_count_mismatch(self):
        with pytest.raises(ValidationError):
            dtw_distance_batch(np.ones((3, 4)), np.ones((2, 4)))


class TestRepresentativeSummary:
    @given(
        rows=st.lists(sequences(min_size=6, max_size=6), min_size=1, max_size=6),
        radius=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=75, deadline=None)
    def test_envelope_batch_matches_scalar(self, rows, radius):
        mat = np.asarray(rows)
        lo, hi = keogh_envelope_batch(mat, radius)
        for g in range(mat.shape[0]):
            want_lo, want_hi = keogh_envelope(mat[g], radius)
            assert np.array_equal(lo[g], want_lo)
            assert np.array_equal(hi[g], want_hi)

    @given(
        x=sequences(min_size=2, max_size=9),
        rows=st.lists(sequences(min_size=5, max_size=5), min_size=1, max_size=5),
    )
    @settings(max_examples=75, deadline=None)
    def test_kim_endpoints_matches_full_stack(self, x, rows):
        mat = np.asarray(rows)
        endpoints = mat[:, [0, 1, -2, -1]]
        got = lb_kim_endpoints_batch(x, endpoints, mat.shape[1])
        assert np.array_equal(got, lb_kim_batch(x, mat))

    @given(
        x=sequences(min_size=2, max_size=8),
        rows=st.lists(sequences(min_size=6, max_size=6), min_size=1, max_size=5),
        window=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    )
    @settings(max_examples=100, deadline=None)
    def test_cheap_bounds_never_exceed_dtw(self, x, rows, window):
        """The summary bounds provably lower-bound (banded) DTW."""
        mat = np.asarray(rows)
        summary = RepresentativeSummary(mat.shape[1])
        summary.extend(mat)
        q = np.asarray(x)
        band = effective_band(q.shape[0], mat.shape[1], window)
        bounds = summary.cheap_bounds(q, band)
        for g in range(mat.shape[0]):
            exact = dtw_distance(q, mat[g], window=window)
            assert bounds[g] <= exact + 1e-9

    def test_cheap_bounds_multi_matches_single(self):
        rng = np.random.default_rng(17)
        mat = rng.normal(size=(7, 8))
        summary = RepresentativeSummary(8)
        summary.extend(mat)
        for n in (5, 8, 11):
            queries = rng.normal(size=(4, n))
            for band in (None, 1, default_envelope_radius(8), 7):
                multi = summary.cheap_bounds_multi(queries, band)
                for i in range(queries.shape[0]):
                    assert np.array_equal(
                        multi[i], summary.cheap_bounds(queries[i], band)
                    )

    def test_extend_matches_bulk_build(self):
        rng = np.random.default_rng(18)
        mat = rng.normal(size=(9, 10))
        bulk = RepresentativeSummary(10)
        bulk.extend(mat)
        incremental = RepresentativeSummary(10)
        for row in mat:
            incremental.extend(row[None, :])
        for attr in ("env_lo", "env_hi", "endpoints", "minmax"):
            assert np.array_equal(getattr(bulk, attr), getattr(incremental, attr))


@pytest.fixture(scope="module")
def walk_base():
    rng = np.random.default_rng(71)
    arrays = [rng.normal(size=n).cumsum() for n in (30, 26, 22, 28)]
    dataset = TimeSeriesDataset.from_arrays(arrays, name="cascade-walks")
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.08, min_length=5, max_length=9)
    )
    base.build()
    return base


class TestPrefilterResultPreserving:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_exact_mode_identical_prefilter_on_vs_off(self, walk_base, seed):
        rng = np.random.default_rng(seed)
        q = rng.uniform(size=int(rng.integers(5, 10)))
        k = int(rng.integers(1, 6))
        on = QueryProcessor(walk_base, QueryConfig(mode="exact"))
        off = QueryProcessor(
            walk_base, QueryConfig(mode="exact", use_rep_prefilter=False)
        )
        got = on.k_best_matches(q, k, normalize=False)
        want = off.k_best_matches(q, k, normalize=False)
        assert [(m.ref, m.distance) for m in got] == [
            (m.ref, m.distance) for m in want
        ]

    def test_fast_mode_identical_prefilter_on_vs_off(self, walk_base):
        rng = np.random.default_rng(9)
        on = QueryProcessor(walk_base, QueryConfig(mode="fast", refine_groups=3))
        off = QueryProcessor(
            walk_base,
            QueryConfig(mode="fast", refine_groups=3, use_rep_prefilter=False),
        )
        for _ in range(10):
            q = rng.uniform(size=7)
            got = on.k_best_matches(q, 4, normalize=False)
            want = off.k_best_matches(q, 4, normalize=False)
            assert [(m.ref, m.distance) for m in got] == [
                (m.ref, m.distance) for m in want
            ]

    def test_threshold_query_identical_prefilter_on_vs_off(self, walk_base):
        rng = np.random.default_rng(10)
        on = QueryProcessor(walk_base, QueryConfig(mode="exact"))
        off = QueryProcessor(
            walk_base, QueryConfig(mode="exact", use_rep_prefilter=False)
        )
        for _ in range(5):
            q = rng.uniform(size=6)
            got = on.matches_within(q, 0.06, normalize=False)
            want = off.matches_within(q, 0.06, normalize=False)
            assert [(m.ref, m.distance) for m in got] == [
                (m.ref, m.distance) for m in want
            ]

    def test_prefilter_skips_representative_dtw(self, walk_base):
        rng = np.random.default_rng(11)
        processor = QueryProcessor(walk_base, QueryConfig(mode="exact"))
        skipped = 0
        for _ in range(5):
            processor.best_match(rng.uniform(size=6), normalize=False)
            stats = processor.last_stats
            assert (
                stats.rep_dtw_calls + stats.rep_dtw_skipped
                <= stats.representatives_total
            )
            skipped += stats.rep_dtw_skipped
        assert skipped > 0, "prefilter never skipped a representative DTW"


class TestSummaryPersistence:
    def test_roundtrip_and_backward_compat(self, walk_base, tmp_path):
        path = tmp_path / "base.npz"
        walk_base.save(path)
        loaded = OnexBase.load(path, walk_base.raw_dataset)
        for length in walk_base.lengths:
            want = walk_base.bucket(length).rep_summary
            got = loaded.bucket(length).rep_summary
            assert got.radius == want.radius
            for attr in ("env_lo", "env_hi", "endpoints", "minmax"):
                assert np.array_equal(getattr(got, attr), getattr(want, attr))
        # Strip the v3 summary arrays to simulate an older archive: the
        # load succeeds and the summaries rebuild lazily, identically.
        with np.load(path, allow_pickle=False) as archive:
            kept = {k: archive[k] for k in archive.files if "_rep_" not in k}
        # A real pre-v3 archive predates the content checksum too.
        meta = json.loads(str(kept["meta"]))
        meta.pop("content_checksum", None)
        kept["meta"] = np.array(json.dumps(meta))
        old_path = tmp_path / "pre_v3.npz"
        np.savez_compressed(old_path, **kept)
        old = OnexBase.load(old_path, walk_base.raw_dataset)
        for length in walk_base.lengths:
            want = walk_base.bucket(length).rep_summary
            got = old.bucket(length).rep_summary
            for attr in ("env_lo", "env_hi", "endpoints", "minmax"):
                assert np.array_equal(getattr(got, attr), getattr(want, attr))

    def test_summary_stays_live_under_appends(self, walk_base, tmp_path):
        path = tmp_path / "base.npz"
        walk_base.save(path)
        loaded = OnexBase.load(path, walk_base.raw_dataset)
        rng = np.random.default_rng(12)
        loaded.add_series(TimeSeries("appended", rng.normal(size=24).cumsum()))
        for bucket in loaded.buckets():
            summary = bucket.rep_summary
            assert summary.count == bucket.group_count
            rebuilt = RepresentativeSummary(bucket.length)
            rebuilt.extend(bucket.centroids)
            for attr in ("env_lo", "env_hi", "endpoints", "minmax"):
                assert np.array_equal(getattr(summary, attr), getattr(rebuilt, attr))


class TestBatchMatches:
    @pytest.mark.parametrize(
        "config",
        [
            QueryConfig(mode="exact"),
            QueryConfig(mode="exact", use_rep_prefilter=False),
            QueryConfig(mode="exact", use_group_pruning=False),
            QueryConfig(mode="exact", batch_min_members=0),
            QueryConfig(mode="fast", refine_groups=2),
        ],
        ids=["exact", "no-prefilter", "no-pruning", "always-batched", "fast"],
    )
    def test_batch_identical_to_sequential(self, walk_base, config):
        rng = np.random.default_rng(13)
        queries = [rng.uniform(size=n) for n in (6, 6, 7, 5, 9, 6)]
        processor = QueryProcessor(walk_base, config)
        want = [processor.k_best_matches(q, 3, normalize=False) for q in queries]
        got = processor.batch_matches(queries, 3, normalize=False)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert [(m.ref, m.distance) for m in a] == [
                (m.ref, m.distance) for m in b
            ]
        assert processor.last_stats.batch_queries == len(queries)

    def test_batch_empty(self, walk_base):
        processor = QueryProcessor(walk_base, QueryConfig(mode="exact"))
        assert processor.batch_matches([]) == []
        assert processor.last_stats.batch_queries == 0

    def test_batch_invalid_k(self, walk_base):
        with pytest.raises(ValidationError):
            QueryProcessor(walk_base).batch_matches([[0.1, 0.2]], 0)

    def test_batch_respects_lengths_restriction(self, walk_base):
        rng = np.random.default_rng(14)
        processor = QueryProcessor(walk_base, QueryConfig(mode="exact"))
        results = processor.batch_matches(
            [rng.uniform(size=6) for _ in range(3)], 2, lengths=[5], normalize=False
        )
        assert all(m.length == 5 for matches in results for m in matches)
