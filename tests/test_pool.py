"""The supervised pre-fork worker pool and its supervisor (PR 10).

Covers the frame protocol, dispatch and failover semantics, the restart
policy (backoff + flap circuit breaker), degraded-capacity behaviour
(admission-gate scaling, zero-capacity shedding), and the supervisor's
lazy snapshot republication (read-your-writes after mutations).
"""

import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import (
    OverloadedError,
    ValidationError,
    WorkerCrashedError,
)
from repro.obs.metrics import REGISTRY
from repro.server.http import AdmissionGate
from repro.server.pool import (
    _recv_frame,
    _response_from_dict,
    _send_frame,
)
from repro.server.protocol import Request
from repro.server.service import OnexService
from repro.server.supervisor import Supervisor
from repro.testing import faults


def make_service(name="pool-toy", seed=5, series=4):
    rng = np.random.default_rng(seed)
    dataset = TimeSeriesDataset(
        [
            TimeSeries(f"s{i}", rng.normal(size=60).cumsum())
            for i in range(series)
        ],
        name=name,
    )
    service = OnexService(QueryConfig())
    service.engine.load_dataset(
        dataset,
        similarity_threshold=0.3,
        min_length=10,
        max_length=14,
        step=2,
    )
    return service


def query_values(seed=9, n=12):
    return np.random.default_rng(seed).normal(size=n).cumsum().tolist()


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def supervisor(tmp_path):
    service = make_service()
    sup = Supervisor(
        service,
        workers=2,
        snapshot_root=tmp_path / "snaps",
        pool_options={"backoff_base_s": 0.05, "backoff_cap_s": 0.5},
    )
    sup.start(timeout=60)
    try:
        yield sup
    finally:
        sup.close()


class TestFrameProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            _send_frame(a, {"op": "x", "params": {"n": [1, 2, 3]}})
            assert _recv_frame(b) == {"op": "x", "params": {"n": [1, 2, 3]}}
        finally:
            a.close()
            b.close()

    def test_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert _recv_frame(b) is None
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 30).to_bytes(4, "big"))
            with pytest.raises(ConnectionError):
                _recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_response_from_dict(self):
        ok = _response_from_dict({"ok": True, "result": 7, "request_id": "r"})
        assert ok.ok and ok.result == 7 and ok.request_id == "r"
        err = _response_from_dict(
            {
                "ok": False,
                "error": {"type": "DatasetError", "message": "gone"},
                "request_id": "r2",
            }
        )
        assert not err.ok
        assert err.error_type == "DatasetError"
        assert err.request_id == "r2"


class TestDispatch:
    def test_results_identical_to_local(self, supervisor):
        request = Request(
            "k_best",
            {"dataset": "pool-toy", "query": query_values(), "k": 3},
            request_id="same",
        )
        pooled = supervisor.handle(request)
        local = supervisor._service.handle(request)
        assert pooled.ok and local.ok
        assert pooled.result == local.result

    def test_read_only_failover_on_kill9(self, supervisor):
        pids = [p for p in supervisor.pool.worker_pids() if p]
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        # The very next dispatch may land on the dead worker; failover
        # must make it succeed anyway.
        response = supervisor.handle(
            Request(
                "best_match",
                {"dataset": "pool-toy", "query": query_values()},
                request_id="after-kill",
            )
        )
        assert response.ok
        assert wait_for(lambda: supervisor.pool.live_workers == 2)
        status = supervisor.pool_status()
        assert sum(w["crashes"] for w in status["workers"]) >= 1
        assert sum(w["restarts"] for w in status["workers"]) >= 3

    def test_non_read_only_crash_surfaces_retryable(self, tmp_path):
        service = make_service(name="crash-toy")
        with faults.inject("worker.kill", "kill-worker", times=1):
            sup = Supervisor(
                service,
                workers=1,
                snapshot_root=tmp_path / "snaps",
                pool_options={"backoff_base_s": 0.05},
            )
            sup.start(timeout=60)
            try:
                # Drive the pool directly with a mutating op: the armed
                # failpoint (inherited across the fork) kills the worker
                # before it executes, and mutating ops must not silently
                # re-dispatch — the client's request-id retry is the
                # safe replay channel.
                with pytest.raises(WorkerCrashedError) as excinfo:
                    sup.pool.dispatch(
                        Request(
                            "append_points",
                            {
                                "dataset": "crash-toy",
                                "series": "s0",
                                "values": [1.0, 2.0],
                            },
                            request_id="mut-1",
                        )
                    )
                assert excinfo.value.retry_after is not None
            finally:
                sup.close()

    def test_zero_live_workers_sheds_with_retry_after(self, tmp_path):
        service = make_service(name="zero-toy")
        sup = Supervisor(
            service,
            workers=1,
            snapshot_root=tmp_path / "snaps",
            # One crash trips the breaker: the slot stays broken for the
            # whole test, so capacity is provably zero.
            pool_options={
                "flap_threshold": 1,
                "flap_cooldown_s": 120.0,
                "backoff_base_s": 0.05,
            },
        )
        sup.start(timeout=60)
        try:
            (pid,) = [p for p in sup.pool.worker_pids() if p]
            os.kill(pid, signal.SIGKILL)
            assert wait_for(lambda: sup.pool.live_workers == 0, timeout=10)
            status = sup.pool_status()
            assert status["workers"][0]["state"] == "broken"
            with pytest.raises(OverloadedError) as excinfo:
                sup.handle(
                    Request(
                        "describe",
                        {"dataset": "zero-toy"},
                        request_id="shed-1",
                    )
                )
            assert excinfo.value.retry_after is not None
        finally:
            sup.close()

    def test_hang_detection_kills_and_recovers(self, tmp_path):
        service = make_service(name="hang-toy")
        faults.arm("worker.hang", "sleep", seconds=30.0, times=1)
        try:
            sup = Supervisor(
                service,
                workers=1,
                snapshot_root=tmp_path / "snaps",
                pool_options={
                    "heartbeat_interval_s": 0.05,
                    "heartbeat_timeout_s": 0.4,
                    "stall_limit_s": 0.2,
                    "backoff_base_s": 0.5,
                },
            )
            sup.start(timeout=60)
            try:
                # The worker goes quiet mid-request; the monitor must
                # SIGKILL it well before the 30s sleep finishes.  With a
                # single seat there is nowhere to fail over, so the
                # dispatch surfaces zero capacity.
                started = time.monotonic()
                with pytest.raises(OverloadedError):
                    sup.pool.dispatch(
                        Request(
                            "describe",
                            {"dataset": "hang-toy"},
                            request_id="hung-1",
                        )
                    )
                assert time.monotonic() - started < 10.0
                status = sup.pool_status()
                assert status["workers"][0]["last_crash_kind"] == "hang"
                # Disarm before the respawn forks, so the replacement
                # worker inherits a clean registry and serves again.
                faults.disarm("worker.hang")
                assert wait_for(lambda: sup.pool.live_workers == 1)
                response = sup.handle(
                    Request(
                        "describe",
                        {"dataset": "hang-toy"},
                        request_id="hung-2",
                    )
                )
                assert response.ok
            finally:
                sup.close()
        finally:
            faults.disarm("worker.hang")


class TestReadYourWrites:
    def test_mutation_republishes_before_next_read(self, supervisor):
        before = supervisor.pool_status()["published"]["pool-toy"]["epoch"]
        added = supervisor.handle(
            Request(
                "add_series",
                {
                    "dataset": "pool-toy",
                    "name": "fresh",
                    "values": np.random.default_rng(2)
                    .normal(size=40)
                    .cumsum()
                    .tolist(),
                },
                request_id="ryw-1",
            )
        )
        assert added.ok
        described = supervisor.handle(
            Request("describe", {"dataset": "pool-toy"}, request_id="ryw-2")
        )
        assert described.ok
        # The dispatched read went to a worker *after* republication, so
        # it must already see the new series.
        assert described.result["series"] == 5
        after = supervisor.pool_status()["published"]["pool-toy"]
        assert after["epoch"] == before + 1
        assert after["dirty"] is False

    def test_unload_retracts_publication(self, supervisor):
        response = supervisor.handle(
            Request(
                "unload_dataset", {"dataset": "pool-toy"}, request_id="un-1"
            )
        )
        assert response.ok
        assert "pool-toy" not in supervisor.pool_status()["published"]


class TestDegradedCapacity:
    def test_gate_resize_validates_and_applies(self):
        gate = AdmissionGate(max_in_flight=8, max_queue=4)
        gate.resize(2)
        assert gate.max_in_flight == 2
        with pytest.raises(ValidationError):
            gate.resize(0)

    def test_capacity_callback_scales_attached_gate(self, tmp_path):
        service = make_service(name="cap-toy")
        sup = Supervisor(
            service,
            workers=2,
            snapshot_root=tmp_path / "snaps",
            pool_options={
                "flap_threshold": 1,
                "flap_cooldown_s": 120.0,
                "backoff_base_s": 0.05,
            },
        )
        sup.start(timeout=60)
        gate = AdmissionGate(max_in_flight=8, max_queue=4)
        sup.attach_gate(gate)
        try:
            assert gate.max_in_flight == 8
            pids = [p for p in sup.pool.worker_pids() if p]
            os.kill(pids[0], signal.SIGKILL)  # breaker trips: stays dead
            assert wait_for(lambda: gate.max_in_flight == 4, timeout=10)
            assert sup.pool.live_workers == 1
        finally:
            sup.close()

    def test_pool_metrics_registered(self, supervisor):
        supervisor.handle(
            Request(
                "overview", {"dataset": "pool-toy"}, request_id="metrics-1"
            )
        )
        rendered = REGISTRY.render()
        assert "onex_pool_live_workers" in rendered
        assert "onex_pool_worker_restarts_total" in rendered
        assert "onex_pool_dispatch_total" in rendered
        assert "onex_pool_snapshot_publish_total" in rendered
