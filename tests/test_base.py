"""Unit tests for repro.core.base (the ONEX base)."""

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.data.dataset import TimeSeriesDataset
from repro.data.matters import build_matters_collection
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError, NotBuiltError, ValidationError


@pytest.fixture(scope="module")
def small_dataset():
    rng = np.random.default_rng(61)
    return TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (20, 16, 24, 12)], name="walks"
    )


@pytest.fixture(scope="module")
def built_base(small_dataset):
    base = OnexBase(
        small_dataset,
        BuildConfig(similarity_threshold=0.1, min_length=4, max_length=8),
    )
    base.build()
    return base


class TestBuild:
    def test_stats_reflect_construction(self, built_base, small_dataset):
        stats = built_base.stats
        expected = small_dataset.count_subsequences(4, 8)
        assert stats.subsequences == expected
        assert stats.groups >= 1
        assert stats.lengths == 5
        assert stats.build_seconds > 0
        assert stats.compaction_ratio > 1.0

    def test_lengths_indexed(self, built_base):
        assert built_base.lengths == [4, 5, 6, 7, 8]

    def test_invariants_hold(self, built_base):
        built_base.validate()  # raises InvariantError on violation

    def test_bucket_accessors(self, built_base):
        bucket = built_base.bucket(5)
        assert bucket.length == 5
        assert bucket.centroids.shape == (bucket.group_count, 5)
        assert bucket.member_count == sum(g.cardinality for g in bucket.groups)
        group = built_base.group(5, 0)
        assert group.length == 5

    def test_unknown_length_raises(self, built_base):
        with pytest.raises(DatasetError, match="not indexed"):
            built_base.bucket(99)

    def test_bad_group_index_raises(self, built_base):
        with pytest.raises(DatasetError, match="out of range"):
            built_base.group(5, 10_000)

    def test_unbuilt_base_raises(self, small_dataset):
        base = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6),
        )
        with pytest.raises(NotBuiltError):
            base.stats
        with pytest.raises(NotBuiltError):
            base.lengths

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError, match="empty"):
            OnexBase(
                TimeSeriesDataset(),
                BuildConfig(similarity_threshold=0.1, min_length=2, max_length=4),
            )

    def test_length_range_outside_data(self, small_dataset):
        base = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.1, min_length=100, max_length=120),
        )
        with pytest.raises(DatasetError, match="no subsequences"):
            base.build()

    def test_normalized_dataset_used(self, built_base):
        lo, hi = built_base.dataset.global_bounds()
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(1.0)

    def test_normalize_false_keeps_raw(self, small_dataset):
        base = OnexBase(
            small_dataset,
            BuildConfig(
                similarity_threshold=0.5, min_length=4, max_length=5, normalize=False
            ),
        )
        base.build()
        assert base.dataset is base.raw_dataset

    def test_tighter_threshold_more_groups(self, small_dataset):
        tight = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.02, min_length=4, max_length=6),
        )
        loose = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.4, min_length=4, max_length=6),
        )
        assert tight.build().groups > loose.build().groups

    def test_step_reduces_subsequences(self, small_dataset):
        dense = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6),
        ).build()
        strided = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6, step=2),
        ).build()
        assert strided.subsequences < dense.subsequences


class TestPersistence:
    def test_save_load_round_trip(self, built_base, small_dataset, tmp_path):
        path = tmp_path / "base.npz"
        built_base.save(path)
        loaded = OnexBase.load(path, small_dataset)
        assert loaded.lengths == built_base.lengths
        assert loaded.stats.groups == built_base.stats.groups
        for length in built_base.lengths:
            a, b = built_base.bucket(length), loaded.bucket(length)
            assert np.allclose(a.centroids, b.centroids)
            assert np.allclose(a.ed_radii, b.ed_radii)
            assert np.allclose(a.cheb_radii, b.cheb_radii)
            for ga, gb in zip(a.groups, b.groups):
                assert ga.members == gb.members
        loaded.validate()

    def test_load_rejects_wrong_dataset(self, built_base, tmp_path):
        path = tmp_path / "base.npz"
        built_base.save(path)
        other = TimeSeriesDataset([TimeSeries("x", [1.0, 2.0, 3.0, 4.0, 5.0] * 3)])
        with pytest.raises(DatasetError, match="does not match"):
            OnexBase.load(path, other)

    def test_save_unbuilt_raises(self, small_dataset, tmp_path):
        base = OnexBase(
            small_dataset,
            BuildConfig(similarity_threshold=0.1, min_length=4, max_length=6),
        )
        with pytest.raises(NotBuiltError):
            base.save(tmp_path / "nope.npz")


class TestBuildConfigValidation:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValidationError):
            BuildConfig(similarity_threshold=0.0, min_length=2, max_length=4)

    def test_rejects_tiny_min_length(self):
        with pytest.raises(ValidationError):
            BuildConfig(similarity_threshold=0.1, min_length=1, max_length=4)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValidationError):
            BuildConfig(similarity_threshold=0.1, min_length=5, max_length=4)

    def test_rejects_bad_step(self):
        with pytest.raises(ValidationError):
            BuildConfig(similarity_threshold=0.1, min_length=2, max_length=4, step=0)

    def test_group_radius_is_half_st(self):
        cfg = BuildConfig(similarity_threshold=0.3, min_length=2, max_length=4)
        assert cfg.group_radius == pytest.approx(0.15)


class TestOnMatters:
    def test_builds_on_matters_slice(self):
        ds = build_matters_collection(
            indicators=("GrowthRate",), years=12, min_years=6, seed=77
        )
        base = OnexBase(
            ds, BuildConfig(similarity_threshold=0.08, min_length=4, max_length=6)
        )
        stats = base.build()
        assert stats.compaction_ratio > 2.0
        base.validate()
