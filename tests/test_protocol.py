"""Unit tests for repro.server.protocol."""

import pytest

from repro.exceptions import ProtocolError
from repro.server.protocol import OPERATIONS, Request, Response


class TestRequest:
    def test_round_trip(self):
        req = Request("best_match", {"dataset": "d", "query": [1.0]})
        parsed = Request.from_json(req.to_json())
        assert parsed == req

    def test_unknown_operation(self):
        with pytest.raises(ProtocolError, match="unknown operation"):
            Request("explode", {})

    def test_missing_params(self):
        with pytest.raises(ProtocolError, match="missing params"):
            Request("best_match", {"dataset": "d"})

    def test_all_operations_constructible(self):
        for op, required in OPERATIONS.items():
            req = Request(op, {name: 1 for name in required})
            assert req.op == op

    def test_from_json_invalid(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            Request.from_json("{nope")

    def test_from_dict_not_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            Request.from_dict([1, 2])

    def test_missing_op(self):
        with pytest.raises(ProtocolError, match="missing 'op'"):
            Request.from_dict({"params": {}})

    def test_bad_params_type(self):
        with pytest.raises(ProtocolError, match="'params'"):
            Request.from_dict({"op": "list_datasets", "params": [1]})

    def test_extra_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unexpected"):
            Request.from_dict({"op": "list_datasets", "params": {}, "x": 1})

    def test_default_params(self):
        req = Request.from_dict({"op": "list_datasets"})
        assert req.params == {}


class TestResponse:
    def test_success_round_trip(self):
        resp = Response.success({"answer": 42})
        parsed = Response.from_json(resp.to_json())
        assert parsed.ok
        assert parsed.result == {"answer": 42}

    def test_failure_round_trip(self):
        resp = Response.failure(ValueError("boom"))
        parsed = Response.from_json(resp.to_json())
        assert not parsed.ok
        assert parsed.error_type == "ValueError"
        assert parsed.error_message == "boom"

    def test_failure_dict_shape(self):
        payload = Response.failure(KeyError("k")).to_dict()
        assert payload["ok"] is False
        assert payload["error"]["type"] == "KeyError"

    def test_from_json_invalid(self):
        with pytest.raises(ProtocolError):
            Response.from_json("][")
        with pytest.raises(ProtocolError):
            Response.from_json("[1]")
