"""Unit tests for repro.core.seasonal (Fig. 4's recurring patterns)."""

import numpy as np
import pytest

from repro.core.seasonal import SeasonalPattern, find_seasonal_patterns
from repro.data.electricity import build_electricity_collection
from repro.data.synthetic import planted_motif_series
from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError


class TestPlantedMotifRecovery:
    def test_recovers_planted_occurrences(self):
        values, positions = planted_motif_series(
            400, motif_length=30, occurrences=4, noise=0.02, seed=81
        )
        series = TimeSeries("motif", values)
        patterns = find_seasonal_patterns(series, 30, 0.08, step=2)
        assert patterns, "expected at least one recurring pattern"
        best = max(
            patterns,
            key=lambda p: sum(
                any(abs(s - t) <= 6 for t in positions) for s in p.starts
            ),
        )
        hits = sum(any(abs(s - t) <= 6 for t in positions) for s in best.starts)
        assert hits >= 2

    def test_electricity_habit_pattern_found(self):
        ds = build_electricity_collection(households=1, noise=0.02, seed=82)
        series = ds[0]
        length = series.metadata["pattern_length"]
        truth = series.metadata["pattern_starts"]
        assert len(truth) >= 2
        # The habit recurs at different seasonal load levels, so match on
        # shape with the window level removed (the Fig. 4 narrative).
        patterns = find_seasonal_patterns(
            series, length, 0.06, step=2, remove_level=True, ed_threshold=0.18
        )
        assert patterns
        # Some reported pattern should overlap at least two true plants.
        def overlap_count(p):
            return sum(any(abs(s - t) <= length // 3 for t in truth) for s in p.starts)
        assert max(overlap_count(p) for p in patterns) >= 2


class TestPatternProperties:
    @pytest.fixture(scope="class")
    def patterns(self):
        values, _ = planted_motif_series(
            300, motif_length=24, occurrences=3, noise=0.03, seed=83
        )
        series = TimeSeries("s", values)
        return find_seasonal_patterns(series, 24, 0.1, step=2)

    def test_occurrences_nonoverlapping(self, patterns):
        for p in patterns:
            for a, b in zip(p.starts, p.starts[1:]):
                assert b - a >= p.length

    def test_pairwise_dtw_within_threshold(self, patterns):
        for p in patterns:
            assert p.max_pairwise_dtw <= 0.1 + 1e-12

    def test_sorted_by_occurrences_then_tightness(self, patterns):
        keys = [(-p.occurrences, p.max_pairwise_dtw) for p in patterns]
        assert keys == sorted(keys)

    def test_segments(self, patterns):
        p = patterns[0]
        for (start, stop), s in zip(p.segments(), p.starts):
            assert (start, stop) == (s, s + p.length)

    def test_min_occurrences_respected(self):
        values, _ = planted_motif_series(
            300, motif_length=24, occurrences=3, noise=0.03, seed=84
        )
        series = TimeSeries("s", values)
        patterns = find_seasonal_patterns(
            series, 24, 0.1, step=2, min_occurrences=3
        )
        for p in patterns:
            assert p.occurrences >= 3

    def test_max_patterns_truncates(self):
        values, _ = planted_motif_series(
            300, motif_length=20, occurrences=3, noise=0.05, seed=85
        )
        series = TimeSeries("s", values)
        all_patterns = find_seasonal_patterns(series, 20, 0.15, step=2)
        limited = find_seasonal_patterns(series, 20, 0.15, step=2, max_patterns=1)
        assert len(limited) <= 1
        if all_patterns:
            assert limited[0].starts == all_patterns[0].starts


class TestNoFalsePatterns:
    def test_white_noise_has_no_tight_patterns(self):
        rng = np.random.default_rng(86)
        series = TimeSeries("noise", rng.normal(size=200))
        patterns = find_seasonal_patterns(series, 24, 0.01, step=2)
        assert patterns == []


class TestValidation:
    def test_bad_length(self):
        series = TimeSeries("s", np.zeros(50) + np.arange(50))
        with pytest.raises(ValidationError):
            find_seasonal_patterns(series, 1, 0.1)
        with pytest.raises(ValidationError, match="exceeds"):
            find_seasonal_patterns(series, 100, 0.1)

    def test_bad_threshold(self):
        series = TimeSeries("s", np.arange(50.0))
        with pytest.raises(ValidationError):
            find_seasonal_patterns(series, 10, 0.0)

    def test_bad_min_occurrences(self):
        series = TimeSeries("s", np.arange(50.0))
        with pytest.raises(ValidationError):
            find_seasonal_patterns(series, 10, 0.1, min_occurrences=1)
