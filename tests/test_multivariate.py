"""Multivariate (multi-channel) series through the full vertical.

The memory layout contract (DESIGN.md §9): a ``(length, channels)``
window is stored channel-flattened in C order, so every clustering,
radius, persistence, and fingerprint path operates on plain rows of
width ``length * channels``; only the distance kernels restore the
channel shape.  These tests pin that contract end to end — data layer,
base build, query exactness against a naive scan, streaming appends,
persistence (v5 archives plus the v4 backward-compatibility path), and
the boundaries that must reject what multivariate mode cannot answer.
"""

import math

import numpy as np
import pytest

from repro.core.base import FORMAT_VERSION, OnexBase
from repro.core.config import BuildConfig
from repro.core.engine import OnexEngine
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.data.windows import window_matrix, window_view
from repro.distances.registry import get_metric
from repro.exceptions import DatasetError, ValidationError
from repro.stream.ingest import StreamIngestor


def _mv_dataset(seed=2, n_series=5, length=36, channels=2, name=None):
    rng = np.random.default_rng(seed)
    series = [
        TimeSeries(f"s{i}", rng.normal(size=(length, channels)))
        for i in range(n_series)
    ]
    return TimeSeriesDataset(series, name=name or f"mv-{seed}-{channels}")


def _build(dataset, min_length=8, max_length=10, st=0.25):
    base = OnexBase(
        dataset,
        BuildConfig(
            similarity_threshold=st,
            min_length=min_length,
            max_length=max_length,
        ),
    )
    base.build()
    return base


class TestDataLayer:
    def test_dataset_channels(self):
        ds = _mv_dataset(channels=3)
        assert ds.channels == 3
        assert ds.describe()["channels"] == 3

    def test_mixed_channel_counts_rejected(self):
        ds = TimeSeriesDataset(name="mixed")
        ds.add(TimeSeries("a", np.zeros((10, 2)) + 1.0))
        with pytest.raises(ValidationError, match="channel"):
            ds.add(TimeSeries("b", np.ones(10)))

    def test_window_view_is_3d_strided(self):
        values = np.arange(24.0).reshape(8, 3)
        view = window_view(values, length=4, step=2)
        assert view.shape == (3, 4, 3)
        assert not view.flags.writeable
        assert np.array_equal(view[1], values[2:6])
        # A strided view, not a copy.
        assert view.base is not None

    def test_window_matrix_flattens_channels(self):
        values = np.arange(20.0).reshape(10, 2)
        matrix, counts = window_matrix([values], length=4, step=1)
        assert matrix.shape == (7, 8)
        assert np.array_equal(matrix[2], values[2:6].reshape(-1))
        assert counts.tolist() == [7]


class TestBaseBuildAndQuery:
    def test_build_validates_and_fingerprints(self):
        ds = _mv_dataset()
        base = _build(ds)
        base.validate()  # radius invariants hold on flattened rows
        assert base.channels == 2
        fp1 = base.structure_fingerprint()
        base2 = _build(_mv_dataset())
        assert fp1 == base2.structure_fingerprint()

    def test_default_dtw_matches_naive_scan(self):
        ds = _mv_dataset(seed=9)
        engine = OnexEngine()
        engine.load_dataset(ds, min_length=8, max_length=10)
        rng = np.random.default_rng(1)
        spec = get_metric("dtw")
        base = engine.base(ds.name)
        lo, hi = base.normalization_bounds
        for _ in range(2):
            q = rng.normal(size=(9, 2))
            qn = (q - lo) / (hi - lo)
            match = engine.best_match(ds.name, q)
            best = math.inf
            for bucket in base.buckets():
                for group in bucket.groups:
                    for ref in group.members:
                        _, norm = spec.pair(qn, base.dataset.values(ref), None)
                        best = min(best, norm)
            assert math.isclose(match.distance, best, rel_tol=1e-9, abs_tol=1e-9)

    @pytest.mark.parametrize("metric", ("euclidean", "cityblock", "chebyshev"))
    def test_lp_metrics_match_naive_scan(self, metric):
        ds = _mv_dataset(seed=13)
        engine = OnexEngine()
        engine.load_dataset(ds, min_length=8, max_length=10)
        base = engine.base(ds.name)
        lo, hi = base.normalization_bounds
        spec = get_metric(metric)
        q = np.random.default_rng(4).normal(size=(9, 2))
        qn = (q - lo) / (hi - lo)
        match = engine.best_match(ds.name, q, metric=metric)
        best = math.inf
        for bucket in base.buckets():
            if bucket.length != 9:
                continue
            for group in bucket.groups:
                for ref in group.members:
                    _, norm = spec.pair(qn, base.dataset.values(ref), None)
                    best = min(best, norm)
        assert math.isclose(match.distance, best, rel_tol=1e-9, abs_tol=1e-9)

    def test_univariate_query_shape_rejected(self):
        ds = _mv_dataset(seed=5)
        engine = OnexEngine()
        engine.load_dataset(ds, min_length=8, max_length=10)
        with pytest.raises(ValidationError):
            engine.best_match(ds.name, np.zeros(9) + 0.5)

    def test_weighted_dtw_rejected_on_multivariate(self):
        ds = _mv_dataset(seed=6)
        engine = OnexEngine()
        engine.load_dataset(ds, min_length=8, max_length=10)
        with pytest.raises(ValidationError, match="univariate"):
            engine.best_match(
                ds.name, np.zeros((9, 2)) + 0.5, metric="weighted_dtw"
            )

    def test_add_series_indexes_multichannel(self):
        ds = _mv_dataset(seed=8)
        base = _build(ds)
        groups_before = base.stats.groups
        rng = np.random.default_rng(42)
        out = base.add_series(TimeSeries("fresh", rng.normal(size=(20, 2))))
        assert out["windows"] > 0
        assert base.stats.groups >= groups_before
        base.validate()


class TestStreaming:
    def test_append_rebuild_equivalence(self):
        """Appended multichannel points answer like a from-scratch build."""
        rng = np.random.default_rng(17)
        history = [rng.normal(size=(30, 2)) for _ in range(4)]
        extra = rng.normal(size=(12, 2))

        streamed = TimeSeriesDataset(
            [TimeSeries(f"s{i}", v) for i, v in enumerate(history)],
            name="stream-mv",
        )
        base = _build(streamed, min_length=8, max_length=9)
        ingestor = StreamIngestor(base)
        summary = ingestor.append_points("s0", extra)
        assert summary["points"] == 12
        assert summary["windows"] > 0

        full = TimeSeriesDataset(
            [
                TimeSeries("s0", np.concatenate([history[0], extra])),
                *[TimeSeries(f"s{i}", history[i]) for i in range(1, 4)],
            ],
            name="rebuild-mv",
        )
        rebuilt = _build(full, min_length=8, max_length=9)
        # Same indexed window population (group shapes may differ).
        assert base.stats.subsequences == rebuilt.stats.subsequences
        base.validate()

    def test_wrong_channel_chunk_rejected(self):
        ds = _mv_dataset(seed=19)
        base = _build(ds)
        ingestor = StreamIngestor(base)
        with pytest.raises(ValidationError, match="2-channel"):
            ingestor.append_points("s0", [1.0, 2.0, 3.0])

    def test_monitor_registration_rejected(self):
        ds = _mv_dataset(seed=20)
        base = _build(ds)
        ingestor = StreamIngestor(base)
        with pytest.raises(ValidationError, match="univariate"):
            ingestor.registry.register(np.zeros(8) + 0.1, 1.0)


class TestPersistence:
    def test_v5_roundtrip_preserves_answers(self, tmp_path):
        ds = _mv_dataset(seed=21)
        base = _build(ds)
        path = tmp_path / "mv-base.npz"
        base.save(path)
        loaded = OnexBase.load(path, ds)
        assert loaded.channels == 2
        assert (
            loaded.structure_fingerprint() == base.structure_fingerprint()
        )
        from repro.core.query import QueryProcessor

        q = np.random.default_rng(2).normal(size=(9, 2))
        a = QueryProcessor(base).best_match(q)
        b = QueryProcessor(loaded).best_match(q)
        assert a.distance == b.distance and a.ref == b.ref

    def test_channel_mismatch_rejected_on_load(self, tmp_path):
        ds = _mv_dataset(seed=22)
        base = _build(ds)
        path = tmp_path / "mv-base.npz"
        base.save(path)
        uni = TimeSeriesDataset(
            [TimeSeries(s.name, s.values[:, 0]) for s in ds], name=ds.name
        )
        with pytest.raises(DatasetError, match="channel"):
            OnexBase.load(path, uni)

    def test_v4_univariate_archive_loads_and_answers_identically(
        self, tmp_path
    ):
        """Regression: a pre-PR-9 (format v4, no channels key) archive
        round-trips with backward-compatible defaults and answers
        queries exactly like the v5 save of the same base."""
        import json

        rng = np.random.default_rng(33)
        ds = TimeSeriesDataset(
            [TimeSeries(f"u{i}", rng.normal(size=30)) for i in range(5)],
            name="v4-regress",
        )
        base = _build(ds)
        v5_path = tmp_path / "v5.npz"
        base.save(v5_path)

        # Synthesize the v4 layout: same arrays, meta without the v5
        # additions (the content checksum covers arrays only, so it
        # stays valid).
        v4_path = tmp_path / "v4.npz"
        with np.load(v5_path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files if k != "meta"}
            meta = json.loads(str(archive["meta"]))
        assert meta["format_version"] == FORMAT_VERSION
        meta["format_version"] = 4
        del meta["channels"]
        arrays["meta"] = np.array(json.dumps(meta))
        with open(v4_path, "wb") as fh:
            np.savez_compressed(fh, **arrays)

        loaded = OnexBase.load(v4_path, ds)
        assert loaded.channels == 1
        assert loaded.structure_fingerprint() == base.structure_fingerprint()

        from repro.core.query import QueryProcessor

        q = rng.normal(size=9)
        original = QueryProcessor(base).k_best_matches(q, 3)
        recovered = QueryProcessor(loaded).k_best_matches(q, 3)
        assert [m.distance for m in original] == [
            m.distance for m in recovered
        ]
        assert [m.ref for m in original] == [m.ref for m in recovered]


class TestCheckpointRecovery:
    def test_multichannel_state_survives_recovery(self, tmp_path):
        """WAL + checkpoint carry channel metadata through recovery."""
        from repro.durability.checkpoint import (
            latest_valid_checkpoint,
            load_checkpoint,
            write_checkpoint,
        )

        ds = _mv_dataset(seed=27)
        base = _build(ds)
        write_checkpoint(tmp_path, base, wal_seq=7)
        entry = latest_valid_checkpoint(tmp_path)
        assert entry is not None and entry["seq"] == 7
        dataset, restored = load_checkpoint(tmp_path, entry)
        assert dataset.channels == 2
        assert restored.channels == 2
        assert (
            restored.structure_fingerprint() == base.structure_fingerprint()
        )
