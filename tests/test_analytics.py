"""Unit tests for repro.analytics (k-medoids and k-NN)."""

import numpy as np
import pytest

from repro.analytics.kmedoids import kmedoids
from repro.analytics.knn import KnnClassifier
from repro.data.synthetic import cylinder_bell_funnel, noisy_sine
from repro.distances.metrics import normalized_euclidean
from repro.exceptions import ValidationError


def make_cbf(kinds, count, noise=0.2, start_seed=0, n=64):
    data, labels = [], []
    seed = start_seed
    for kind in kinds:
        for _ in range(count):
            data.append(cylinder_bell_funnel(kind, n, noise=noise, seed=seed))
            labels.append(kind)
            seed += 1
    return data, labels


class TestKMedoids:
    def test_recovers_planted_sine_clusters(self):
        members = []
        for period in (8.0, 40.0):
            for s in range(6):
                members.append(
                    noisy_sine(60, period=period, noise=0.05, seed=s + int(period))
                )
        result = kmedoids(members, 2, seed=3)
        first = set(result.assignments[:6])
        second = set(result.assignments[6:])
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_k_equals_n_gives_zero_objective(self):
        members = [noisy_sine(20, seed=s) for s in range(4)]
        result = kmedoids(members, 4, seed=0)
        assert result.objective == pytest.approx(0.0)
        assert sorted(result.medoid_indices) == [0, 1, 2, 3]

    def test_k_one_picks_central_member(self):
        members = [np.full(10, v) for v in (0.0, 0.1, 0.2, 5.0)]
        result = kmedoids(members, 1, seed=0)
        # The medoid minimising total distance is one of the tight trio.
        assert result.medoid_indices[0] in (0, 1, 2)
        assert set(result.assignments) == {0}

    def test_custom_distance(self):
        members = [np.arange(10.0) + off for off in (0.0, 0.1, 10.0, 10.1)]
        result = kmedoids(members, 2, distance=normalized_euclidean, seed=1)
        assert result.assignments[0] == result.assignments[1]
        assert result.assignments[2] == result.assignments[3]
        assert result.assignments[0] != result.assignments[2]

    def test_deterministic_given_seed(self):
        members = [noisy_sine(30, seed=s) for s in range(8)]
        a = kmedoids(members, 3, seed=5)
        b = kmedoids(members, 3, seed=5)
        assert a == b

    def test_variable_length_members(self):
        members = [noisy_sine(n, period=10.0, seed=n) for n in (20, 25, 30, 35)]
        result = kmedoids(members, 2, seed=0)
        assert len(result.assignments) == 4

    def test_cluster_members_accessor(self):
        members = [np.zeros(5), np.zeros(5), np.full(5, 9.0)]
        result = kmedoids(members, 2, seed=0)
        sizes = sorted(len(result.cluster_members(c)) for c in range(2))
        assert sizes == [1, 2]
        with pytest.raises(ValidationError):
            result.cluster_members(7)

    def test_validation(self):
        members = [np.zeros(5)]
        with pytest.raises(ValidationError):
            kmedoids(members, 0)
        with pytest.raises(ValidationError):
            kmedoids(members, 2)
        with pytest.raises(ValidationError):
            kmedoids(members, 1, max_iterations=0)


class TestKnn:
    def test_cbf_classification_well_above_chance(self):
        train_x, train_y = make_cbf(("cylinder", "bell", "funnel"), 8, start_seed=0)
        test_x, test_y = make_cbf(("cylinder", "bell", "funnel"), 3, start_seed=100)
        clf = KnnClassifier(1, window=5).fit(train_x, train_y)
        assert clf.score(test_x, test_y) >= 0.7  # chance is 1/3

    def test_self_classification_perfect(self):
        train_x, train_y = make_cbf(("cylinder", "bell"), 4, start_seed=10)
        clf = KnnClassifier(1).fit(train_x, train_y)
        assert clf.score(train_x, train_y) == 1.0

    def test_k3_majority_vote(self):
        references = [np.zeros(8), np.zeros(8) + 0.01, np.full(8, 5.0)]
        labels = ["low", "low", "high"]
        clf = KnnClassifier(3).fit(references, labels)
        assert clf.predict(np.zeros(8) + 0.005) == "low"

    def test_tie_breaks_to_nearest(self):
        references = [np.zeros(8), np.full(8, 1.0)]
        clf = KnnClassifier(2).fit(references, ["a", "b"])
        assert clf.predict(np.full(8, 0.1)) == "a"

    def test_custom_distance_changes_result(self):
        """A spike shifted in time: DTW says same class, ED says other."""
        spike_early = np.zeros(20)
        spike_early[3] = 5.0
        spike_late = np.zeros(20)
        spike_late[16] = 5.0
        flatline = np.full(20, 0.25)
        refs = [spike_late, flatline]
        labels = ["spike", "flat"]
        query = spike_early
        dtw_clf = KnnClassifier(1).fit(refs, labels)
        ed_clf = KnnClassifier(1, distance=normalized_euclidean).fit(refs, labels)
        assert dtw_clf.predict(query) == "spike"
        assert ed_clf.predict(query) == "flat"

    def test_neighbors_sorted(self):
        train_x, train_y = make_cbf(("cylinder", "bell"), 5, start_seed=20)
        clf = KnnClassifier(3).fit(train_x, train_y)
        neighbors = clf.neighbors(train_x[0])
        dists = [d for d, _ in neighbors]
        assert dists == sorted(dists)
        assert neighbors[0][0] == pytest.approx(0.0)

    def test_variable_length_references(self):
        refs = [noisy_sine(n, period=10.0, seed=n) for n in (20, 30)]
        clf = KnnClassifier(1).fit(refs, ["short", "long"])
        assert clf.predict(noisy_sine(22, period=10.0, seed=99)) in ("short", "long")

    def test_validation(self):
        with pytest.raises(ValidationError):
            KnnClassifier(0)
        clf = KnnClassifier(1)
        with pytest.raises(ValidationError, match="not fitted"):
            clf.predict([1.0, 2.0])
        with pytest.raises(ValidationError):
            clf.fit([np.zeros(5)], ["a", "b"])
        with pytest.raises(ValidationError):
            KnnClassifier(5).fit([np.zeros(5)], ["a"])
        fitted = KnnClassifier(1).fit([np.zeros(5)], ["a"])
        with pytest.raises(ValidationError):
            fitted.score([], [])
