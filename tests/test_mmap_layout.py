"""The raw mmap-able snapshot layout (worker-pool shared bases, PR 10).

The pool's zero-copy contract: a snapshot loads as write-protected
memory maps (cold start is an ``mmap`` per array, page-cache shared
across forked workers), queries against the attached base are
bit-identical to the original, and every mutation path raises
``ReadOnlyBaseError`` instead of corrupting sibling processes.
"""

import json

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.core.engine import OnexEngine
from repro.core.mmap_layout import (
    clean_stale_snapshots,
    load_base_snapshot,
    save_base_snapshot,
)
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import PersistenceError, ReadOnlyBaseError


@pytest.fixture(scope="module")
def built_base():
    rng = np.random.default_rng(7)
    dataset = TimeSeriesDataset(
        [TimeSeries(f"s{i}", rng.normal(size=64).cumsum()) for i in range(5)],
        name="mmap-toy",
    )
    engine = OnexEngine(QueryConfig())
    engine.load_dataset(
        dataset,
        similarity_threshold=0.3,
        min_length=10,
        max_length=14,
        step=2,
    )
    return engine.base("mmap-toy")


@pytest.fixture()
def snapshot(built_base, tmp_path):
    return save_base_snapshot(built_base, tmp_path / "epoch-1")


class TestRoundTrip:
    def test_structure_fingerprint_survives(self, built_base, snapshot):
        base, meta = load_base_snapshot(snapshot, verify=True)
        assert meta["structure_fingerprint"] == built_base.structure_fingerprint()
        assert base.structure_fingerprint() == built_base.structure_fingerprint()

    def test_queries_bit_identical(self, built_base, snapshot):
        attached, _ = load_base_snapshot(snapshot)
        rng = np.random.default_rng(3)
        query = rng.normal(size=12).cumsum()
        for mode in ("fast", "exact"):
            original = QueryProcessor(built_base, QueryConfig(mode=mode))
            mapped = QueryProcessor(attached, QueryConfig(mode=mode))
            a = original.k_best_matches(query, 3)
            b = mapped.k_best_matches(query, 3)
            assert [(m.series_name, m.start) for m in a] == [
                (m.series_name, m.start) for m in b
            ]
            assert [m.distance for m in a] == [m.distance for m in b]

    def test_arrays_are_write_protected_memmaps(self, snapshot):
        base, _ = load_base_snapshot(snapshot)
        length = base.lengths[0]
        bucket = base.bucket(length)
        matrix = bucket.stacked_member_matrix(base.dataset)
        assert isinstance(matrix, np.memmap)
        assert not matrix.flags.writeable
        assert isinstance(bucket.centroids, np.memmap)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0  # write-protected: raises, never corrupts

    def test_stats_and_meta_survive(self, built_base, snapshot):
        base, meta = load_base_snapshot(snapshot)
        assert base.stats.subsequences == built_base.stats.subsequences
        assert base.stats.groups == built_base.stats.groups
        assert list(base.lengths) == list(built_base.lengths)
        assert meta["dataset"]["name"] == "mmap-toy"


class TestReadOnlyGates:
    def test_mutations_raise_read_only(self, snapshot):
        base, _ = load_base_snapshot(snapshot)
        assert base.read_only
        with pytest.raises(ReadOnlyBaseError):
            base.add_series(TimeSeries("nope", np.arange(30.0)))

    def test_materialised_copy_is_writable(self, snapshot):
        base, _ = load_base_snapshot(snapshot, mmap_mode=None)
        assert not base.read_only
        rng = np.random.default_rng(11)
        summary = base.add_series(
            TimeSeries("grown", rng.normal(size=40).cumsum())
        )
        assert summary["windows"] > 0


class TestDurabilityOfWrites:
    def test_refuses_existing_directory(self, built_base, tmp_path):
        target = tmp_path / "epoch-1"
        save_base_snapshot(built_base, target)
        with pytest.raises(PersistenceError):
            save_base_snapshot(built_base, target)

    def test_verify_detects_tampering(self, built_base, tmp_path):
        path = save_base_snapshot(built_base, tmp_path / "epoch-1")
        length = built_base.lengths[0]
        victim = path / f"len{length}_centroids.npy"
        data = np.load(victim)
        data = np.ascontiguousarray(data)
        data[0, 0] += 1.0
        np.save(victim, data)
        with pytest.raises(PersistenceError):
            load_base_snapshot(path, verify=True)
        # Without verify the mmap open stays cheap and trusting.
        base, _ = load_base_snapshot(path, verify=False)
        assert base.read_only

    def test_format_version_checked(self, built_base, tmp_path):
        path = save_base_snapshot(built_base, tmp_path / "epoch-1")
        meta = json.loads((path / "meta.json").read_text())
        meta["format"] = 999
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(PersistenceError):
            load_base_snapshot(path)


class TestStaleSweep:
    def test_removes_tmp_debris_and_old_epochs(self, tmp_path):
        root = tmp_path / "snaps"
        ds = root / "toy-abc123"
        for name in ("epoch-1", "epoch-2", "epoch-3", "epoch-4.tmp"):
            (ds / name).mkdir(parents=True)
            (ds / name / "meta.json").write_text("{}")
        (root / "other.tmp").mkdir()
        removed = clean_stale_snapshots(root)
        removed_names = {p.rsplit("/", 1)[-1] for p in removed}
        assert removed_names == {"epoch-1", "epoch-2", "epoch-4.tmp", "other.tmp"}
        assert (ds / "epoch-3").is_dir()

    def test_missing_root_is_noop(self, tmp_path):
        assert clean_stale_snapshots(tmp_path / "absent") == []
