"""Tests for the batched lower-bound cascade and batched member refinement.

Three layers of guarantees are pinned here:

- the batched bounds (`lb_kim_batch`, `lb_keogh_batch`) agree with their
  scalar twins row by row and never exceed true (banded) DTW;
- the batch DTW kernel's tracked path lengths reproduce ``dtw_path``'s
  normalised distances bit for bit;
- the query processor's batched refinement returns matches identical to
  the legacy per-member path on randomised datasets, and the persisted
  member matrices survive a save/load round trip (including archives
  from before the matrices were stored).
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.distances.dtw import (
    dtw_distance,
    dtw_distance_batch,
    dtw_distance_early_abandon,
    dtw_path,
)
from repro.distances.envelope import QueryEnvelopeCache, keogh_envelope
from repro.distances.lower_bounds import (
    lb_keogh,
    lb_keogh_batch,
    lb_kim,
    lb_kim_batch,
)
from repro.exceptions import ValidationError

finite_floats = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


class TestLbKimBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(11)
        for n, m in [(1, 1), (2, 3), (3, 3), (4, 4), (9, 6), (7, 12)]:
            q = rng.normal(size=n)
            rows = rng.normal(size=(15, m))
            got = lb_kim_batch(q, rows)
            for k in range(rows.shape[0]):
                assert got[k] == lb_kim(q, rows[k])

    def test_matches_scalar_squared(self):
        rng = np.random.default_rng(12)
        q = rng.normal(size=8)
        rows = rng.normal(size=(10, 8))
        got = lb_kim_batch(q, rows, ground="squared")
        for k in range(rows.shape[0]):
            assert got[k] == lb_kim(q, rows[k], ground="squared")

    def test_never_exceeds_dtw(self):
        rng = np.random.default_rng(13)
        q = rng.normal(size=7)
        rows = rng.normal(size=(25, 9))
        bounds = lb_kim_batch(q, rows)
        dists = dtw_distance_batch(q, rows)
        assert np.all(bounds <= dists + 1e-12)

    def test_empty_and_validation(self):
        assert lb_kim_batch([1.0, 2.0], np.empty((0, 4))).shape == (0,)
        with pytest.raises(ValidationError, match="2-D"):
            lb_kim_batch([1.0], np.zeros(3))
        with pytest.raises(ValidationError, match="NaN"):
            lb_kim_batch([1.0], np.array([[np.nan]]))


class TestLbKeoghBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(21)
        q = rng.normal(size=10)
        rows = rng.normal(size=(20, 10))
        for radius in (0, 2, 9):
            lower, upper = keogh_envelope(q, radius)
            got = lb_keogh_batch(rows, lower, upper)
            for k in range(rows.shape[0]):
                assert got[k] == pytest.approx(
                    lb_keogh(rows[k], lower, upper), abs=1e-12
                )

    def test_never_exceeds_banded_dtw(self):
        rng = np.random.default_rng(22)
        q = rng.normal(size=8)
        rows = rng.normal(size=(30, 8))
        for window in (0, 1, 3, 7):
            lower, upper = keogh_envelope(q, window)
            bounds = lb_keogh_batch(rows, lower, upper)
            dists = dtw_distance_batch(q, rows, window=window)
            assert np.all(bounds <= dists + 1e-9)

    def test_length_mismatch_rejected(self):
        lower, upper = keogh_envelope([0.0, 1.0, 2.0], 1)
        with pytest.raises(ValidationError, match="lengths differ"):
            lb_keogh_batch(np.zeros((2, 4)), lower, upper)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(finite_floats, min_size=2, max_size=8),
    st.lists(
        st.lists(finite_floats, min_size=6, max_size=6), min_size=1, max_size=5
    ),
    st.integers(min_value=0, max_value=5),
)
def test_bounds_below_dtw_property(q, rows, window):
    """Neither batched bound may ever exceed the banded DTW distance."""
    mat = np.asarray(rows)
    dists = dtw_distance_batch(q, mat, window=window)
    kim = lb_kim_batch(q, mat)
    assert np.all(kim <= dists + 1e-9)
    if len(q) == mat.shape[1]:
        qa = np.asarray(q, dtype=np.float64)
        radius = max(window, abs(len(q) - mat.shape[1]))
        lower, upper = keogh_envelope(qa, radius)
        keogh = lb_keogh_batch(mat, lower, upper)
        assert np.all(keogh <= dists + 1e-9)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(finite_floats, min_size=1, max_size=9),
    st.lists(
        st.lists(finite_floats, min_size=5, max_size=5), min_size=1, max_size=5
    ),
    st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
)
def test_batch_path_lengths_match_traceback(q, rows, window):
    """``raws / plens`` must be bit-identical to dtw_path's normalisation."""
    mat = np.asarray(rows)
    raws, plens = dtw_distance_batch(q, mat, window=window, with_path_length=True)
    for k in range(mat.shape[0]):
        res = dtw_path(q, mat[k], window=window)
        assert raws[k] == res.distance
        assert plens[k] == len(res.path)
        assert raws[k] / plens[k] == res.normalized_distance


class TestEnvelopeCache:
    def test_returns_envelope_and_caches(self):
        q = np.array([0.0, 2.0, 1.0, 3.0])
        cache = QueryEnvelopeCache(q)
        lo, hi = cache.get(1)
        elo, ehi = keogh_envelope(q, 1)
        assert np.array_equal(lo, elo) and np.array_equal(hi, ehi)
        assert cache.get(1)[0] is lo  # same arrays, not recomputed
        cache.get(2)
        assert len(cache) == 2


class TestEarlyAbandonFinalRow:
    def test_final_row_bound_applied(self):
        """A terminal cumulative bound must be able to abandon the last row."""
        x = np.array([0.0, 0.0, 0.0])
        y = np.array([0.0, 0.0, 0.0])
        bound = np.zeros(4)
        bound[3] = 5.0  # claims 5.0 still unpaid after the final row
        assert math.isinf(
            dtw_distance_early_abandon(x, y, 1.0, cumulative_bound=bound)
        )

    def test_zero_terminal_bound_unchanged(self):
        rng = np.random.default_rng(31)
        x = rng.normal(size=6)
        y = rng.normal(size=6)
        exact = dtw_distance(x, y)
        suffix = np.zeros(7)
        got = dtw_distance_early_abandon(x, y, exact + 1.0, cumulative_bound=suffix)
        assert got == pytest.approx(exact)


@pytest.fixture(scope="module")
def random_base():
    rng = np.random.default_rng(41)
    arrays = [rng.normal(size=n).cumsum() for n in (34, 30, 26, 28, 32)]
    dataset = TimeSeriesDataset.from_arrays(arrays, name="batched-walks")
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=9)
    )
    base.build()
    return base


def _as_tuples(matches):
    return [(m.ref, m.distance, m.raw_distance, m.path) for m in matches]


class TestRefinementEquivalence:
    @pytest.mark.parametrize("mode", ["fast", "exact"])
    def test_k_best_identical(self, random_base, mode):
        rng = np.random.default_rng(42)
        batched = QueryProcessor(
            random_base, QueryConfig(mode=mode, refine_groups=4)
        )
        legacy = QueryProcessor(
            random_base,
            QueryConfig(mode=mode, refine_groups=4, use_member_batching=False),
        )
        for _ in range(6):
            q = rng.uniform(size=7)
            got = batched.k_best_matches(q, 4, normalize=False)
            want = legacy.k_best_matches(q, 4, normalize=False)
            assert _as_tuples(got) == _as_tuples(want)

    def test_k_best_identical_with_window(self, random_base):
        rng = np.random.default_rng(43)
        for window in (1, 3):
            batched = QueryProcessor(
                random_base, QueryConfig(mode="exact", window=window)
            )
            legacy = QueryProcessor(
                random_base,
                QueryConfig(mode="exact", window=window, use_member_batching=False),
            )
            q = rng.uniform(size=6)
            assert _as_tuples(batched.k_best_matches(q, 3, normalize=False)) == (
                _as_tuples(legacy.k_best_matches(q, 3, normalize=False))
            )

    def test_matches_within_identical(self, random_base):
        rng = np.random.default_rng(44)
        batched = QueryProcessor(random_base, QueryConfig(mode="exact"))
        legacy = QueryProcessor(
            random_base, QueryConfig(mode="exact", use_member_batching=False)
        )
        for threshold in (0.02, 0.05, 0.1):
            q = rng.uniform(size=6)
            got = batched.matches_within(q, threshold, normalize=False)
            want = legacy.matches_within(q, threshold, normalize=False)
            assert _as_tuples(got) == _as_tuples(want)

    def test_stats_consistent_with_work(self, random_base):
        """Counters must add up: every scanned member is pruned or DTW'd."""
        processor = QueryProcessor(random_base, QueryConfig(mode="exact"))
        processor.best_match(np.linspace(0.1, 0.9, 7), normalize=False)
        stats = processor.last_stats
        assert stats.members_scanned > 0
        assert (
            stats.member_lb_prunes + stats.member_dtw_calls <= stats.members_scanned
        )
        assert stats.member_dtw_calls > 0
        assert stats.groups_refined + stats.groups_pruned <= (
            stats.representatives_total
        )

    def test_scanned_members_equal_across_paths(self, random_base):
        q = np.linspace(0.2, 0.8, 6)
        batched = QueryProcessor(random_base, QueryConfig(mode="exact"))
        legacy = QueryProcessor(
            random_base, QueryConfig(mode="exact", use_member_batching=False)
        )
        batched.best_match(q, normalize=False)
        legacy.best_match(q, normalize=False)
        assert (
            batched.last_stats.members_scanned == legacy.last_stats.members_scanned
        )
        assert batched.last_stats.groups_refined == legacy.last_stats.groups_refined


class TestMemberMatrixPersistence:
    def test_round_trip_preserves_member_matrix(self, random_base, tmp_path):
        path = tmp_path / "base.npz"
        random_base.save(path)
        loaded = OnexBase.load(path, random_base.raw_dataset)
        for length in random_base.lengths:
            a = random_base.bucket(length)
            b = loaded.bucket(length)
            assert np.array_equal(a.member_matrix, b.member_matrix)
            assert np.array_equal(a.member_offsets, b.member_offsets)

    def test_legacy_archive_without_member_matrix(self, random_base, tmp_path):
        """Archives from before the matrices were persisted still load."""
        path = tmp_path / "base.npz"
        random_base.save(path)
        stripped = tmp_path / "legacy.npz"
        with np.load(path, allow_pickle=False) as archive:
            kept = {
                name: archive[name]
                for name in archive.files
                if not name.endswith("_member_matrix")
            }
        # A real pre-v2 archive predates the content checksum too.
        meta = json.loads(str(kept["meta"]))
        meta.pop("content_checksum", None)
        kept["meta"] = np.array(json.dumps(meta))
        np.savez_compressed(stripped, **kept)
        loaded = OnexBase.load(stripped, random_base.raw_dataset)
        for length in random_base.lengths:
            assert np.array_equal(
                random_base.bucket(length).member_matrix,
                loaded.bucket(length).member_matrix,
            )

    def test_member_rows_match_dataset_values(self, random_base):
        for bucket in random_base.buckets():
            for g_idx, group in enumerate(bucket.groups):
                rows = bucket.member_rows(g_idx)
                assert rows.shape == (group.cardinality, bucket.length)
                for i, ref in enumerate(group.members):
                    assert np.array_equal(
                        rows[i], random_base.member_values(ref)
                    )
