"""Unit and property tests for the batched anti-diagonal DTW kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.dtw import dtw_cost_matrix, dtw_distance, dtw_distance_batch
from repro.exceptions import ValidationError

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestBatchKernel:
    def test_matches_scalar_kernel(self):
        rng = np.random.default_rng(141)
        q = rng.normal(size=9)
        rows = rng.normal(size=(20, 12))
        got = dtw_distance_batch(q, rows)
        for k in range(20):
            assert got[k] == pytest.approx(dtw_distance(q, rows[k]))

    def test_matches_row_scan_matrix(self):
        rng = np.random.default_rng(142)
        q = rng.normal(size=6)
        rows = rng.normal(size=(5, 8))
        got = dtw_distance_batch(q, rows)
        for k in range(5):
            assert got[k] == pytest.approx(dtw_cost_matrix(q, rows[k])[-1, -1])

    def test_banded(self):
        rng = np.random.default_rng(143)
        q = rng.normal(size=10)
        rows = rng.normal(size=(8, 10))
        for window in (0, 1, 3):
            got = dtw_distance_batch(q, rows, window=window)
            for k in range(8):
                assert got[k] == pytest.approx(dtw_distance(q, rows[k], window=window))

    def test_squared_ground(self):
        rng = np.random.default_rng(144)
        q = rng.normal(size=7)
        rows = rng.normal(size=(4, 9))
        got = dtw_distance_batch(q, rows, ground="squared")
        for k in range(4):
            assert got[k] == pytest.approx(
                dtw_distance(q, rows[k], ground="squared")
            )

    def test_single_row_and_single_column(self):
        assert dtw_distance_batch([1.0, 2.0], np.array([[1.5]]))[0] == pytest.approx(1.0)
        assert dtw_distance_batch([3.0], np.array([[1.0, 2.0]]))[0] == pytest.approx(3.0)

    def test_empty_batch(self):
        out = dtw_distance_batch([1.0, 2.0], np.empty((0, 5)))
        assert out.shape == (0,)

    def test_identical_rows_zero(self):
        q = np.array([0.5, 1.5, 0.25])
        rows = np.tile(q, (6, 1))
        assert np.allclose(dtw_distance_batch(q, rows), 0.0)

    def test_validation(self):
        with pytest.raises(ValidationError, match="2-D"):
            dtw_distance_batch([1.0], np.zeros(3))
        with pytest.raises(ValidationError, match="column"):
            dtw_distance_batch([1.0], np.empty((2, 0)))
        with pytest.raises(ValidationError, match="NaN"):
            dtw_distance_batch([1.0], np.array([[np.nan]]))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(finite_floats, min_size=1, max_size=10),
    st.lists(
        st.lists(finite_floats, min_size=4, max_size=4), min_size=1, max_size=6
    ),
)
def test_batch_agrees_with_scalar_property(q, rows):
    mat = np.asarray(rows)
    got = dtw_distance_batch(q, mat)
    for k in range(mat.shape[0]):
        assert got[k] == pytest.approx(dtw_distance(q, mat[k]), abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(finite_floats, min_size=2, max_size=8),
    st.lists(
        st.lists(finite_floats, min_size=6, max_size=6), min_size=1, max_size=4
    ),
    st.integers(min_value=0, max_value=4),
)
def test_batch_banded_property(q, rows, window):
    mat = np.asarray(rows)
    got = dtw_distance_batch(q, mat, window=window)
    for k in range(mat.shape[0]):
        assert got[k] == pytest.approx(
            dtw_distance(q, mat[k], window=window), abs=1e-9
        )


class TestCondensedPairwise:
    def test_matches_scalar_pairs(self):
        from repro.distances.dtw import dtw_distance_condensed

        rng = np.random.default_rng(171)
        rows = rng.normal(size=(7, 9))
        got = dtw_distance_condensed(rows)
        iu, ju = np.triu_indices(7, k=1)
        assert got.shape == (iu.size,)
        for p in range(iu.size):
            assert got[p] == pytest.approx(dtw_distance(rows[iu[p]], rows[ju[p]]))

    def test_normalized_matches_dtw_path(self):
        from repro.distances.dtw import dtw_distance_condensed, dtw_path

        rng = np.random.default_rng(172)
        rows = rng.normal(size=(6, 8))
        raws, plens = dtw_distance_condensed(rows, with_path_length=True)
        iu, ju = np.triu_indices(6, k=1)
        for p in range(iu.size):
            want = dtw_path(rows[iu[p]], rows[ju[p]]).normalized_distance
            assert raws[p] / plens[p] == want

    def test_explicit_pairs_and_window(self):
        from repro.distances.dtw import dtw_distance_condensed

        rng = np.random.default_rng(173)
        rows = rng.normal(size=(5, 10))
        pairs = (np.array([0, 3, 1]), np.array([4, 2, 1]))
        got = dtw_distance_condensed(rows, pairs=pairs, window=2)
        for p, (i, j) in enumerate(zip(*pairs)):
            assert got[p] == pytest.approx(
                dtw_distance(rows[i], rows[j], window=2)
            )

    def test_empty_pairs(self):
        from repro.distances.dtw import dtw_distance_condensed

        assert dtw_distance_condensed(np.zeros((1, 4))).shape == (0,)
        raws, plens = dtw_distance_condensed(
            np.zeros((2, 4)),
            pairs=(np.empty(0, dtype=int), np.empty(0, dtype=int)),
            with_path_length=True,
        )
        assert raws.shape == (0,) and plens.shape == (0,)

    def test_validation(self):
        from repro.distances.dtw import dtw_distance_condensed

        rows = np.zeros((3, 4))
        with pytest.raises(ValidationError, match="matching 1-D"):
            dtw_distance_condensed(rows, pairs=(np.array([0]), np.array([0, 1])))
        with pytest.raises(ValidationError, match="out of range"):
            dtw_distance_condensed(rows, pairs=(np.array([0]), np.array([5])))
