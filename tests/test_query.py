"""Unit and integration tests for repro.core.query."""

import math

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.dtw import dtw_path
from repro.exceptions import NotBuiltError, ValidationError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(71)
    arrays = [rng.normal(size=n).cumsum() for n in (30, 26, 22, 28, 24)]
    return TimeSeriesDataset.from_arrays(arrays, name="query-walks")


@pytest.fixture(scope="module")
def base(dataset):
    b = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.08, min_length=5, max_length=9)
    )
    b.build()
    return b


def brute_best(base, q, lengths=None):
    """Exhaustive scan over all indexed subsequences (ground truth)."""
    best = (math.inf, None)
    for length in lengths or base.lengths:
        for ref in base.dataset.iter_subsequences(length):
            res = dtw_path(q, base.dataset.values(ref))
            best = min(best, (res.normalized_distance, ref))
    return best


class TestBestMatch:
    def test_exact_mode_matches_brute_force(self, base):
        rng = np.random.default_rng(72)
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        for _ in range(5):
            q = rng.normal(size=7).cumsum()
            q = (q - q.min()) / max(q.max() - q.min(), 1e-12)
            match = processor.best_match(q, normalize=False)
            true_dist, true_ref = brute_best(base, q)
            assert match.distance == pytest.approx(true_dist)
            assert match.ref == true_ref

    def test_fast_mode_close_to_brute_force(self, base):
        rng = np.random.default_rng(73)
        processor = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=3))
        gaps = []
        for _ in range(5):
            q = rng.normal(size=7).cumsum()
            q = (q - q.min()) / max(q.max() - q.min(), 1e-12)
            match = processor.best_match(q, normalize=False)
            true_dist, _ = brute_best(base, q)
            assert match.distance >= true_dist - 1e-12
            gaps.append(match.distance - true_dist)
        # Fast mode's slack is bounded by the group radius regime.
        assert max(gaps) <= base.config.similarity_threshold

    def test_indexed_member_query_finds_itself(self, base):
        """Querying with an indexed subsequence must return distance 0."""
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        ref = SubsequenceRef(1, 3, 6)
        match = processor.best_match(ref)
        assert match.distance == pytest.approx(0.0, abs=1e-12)

    def test_fast_mode_self_query_within_threshold(self, base):
        """The paper's §3.2 guarantee: the fast-mode match for an indexed
        sequence is within the similarity threshold ST."""
        processor = QueryProcessor(base, QueryConfig(mode="fast"))
        ref = SubsequenceRef(0, 2, 8)
        match = processor.best_match(ref)
        assert match.distance <= base.config.similarity_threshold

    def test_match_metadata(self, base):
        processor = QueryProcessor(base)
        match = processor.best_match(SubsequenceRef(2, 0, 5))
        assert match.series_name in base.dataset.names
        assert match.length == match.ref.length
        assert match.path[0] == (0, 0)
        assert match.group[0] == match.length

    def test_lengths_restriction(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        match = processor.best_match(SubsequenceRef(0, 0, 7), lengths=[5])
        assert match.length == 5

    def test_raw_query_is_normalized(self, base, dataset):
        """Raw-unit queries map into the base's [0,1] value space."""
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        raw_values = dataset[0].values[:7]
        match_raw = processor.best_match(raw_values)
        assert match_raw.distance == pytest.approx(0.0, abs=1e-9)


class TestKBest:
    def test_k_best_sorted_and_distinct(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        matches = processor.k_best_matches(SubsequenceRef(0, 1, 6), 5)
        assert len(matches) == 5
        dists = [m.distance for m in matches]
        assert dists == sorted(dists)
        assert len({m.ref for m in matches}) == 5

    def test_k_best_agrees_with_brute_force(self, base):
        rng = np.random.default_rng(74)
        q = rng.uniform(size=6)
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        matches = processor.k_best_matches(q, 3, normalize=False)
        # Brute-force the 3 smallest normalised distances.
        all_d = []
        for length in base.lengths:
            for ref in base.dataset.iter_subsequences(length):
                res = dtw_path(q, base.dataset.values(ref))
                all_d.append(res.normalized_distance)
        all_d.sort()
        for m, expected in zip(matches, all_d[:3]):
            assert m.distance == pytest.approx(expected)

    def test_fast_mode_k_larger_than_refine_groups(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
        matches = processor.k_best_matches(SubsequenceRef(0, 0, 6), 10)
        assert len(matches) == 10

    def test_invalid_k(self, base):
        with pytest.raises(ValidationError):
            QueryProcessor(base).k_best_matches([0.1, 0.2, 0.3], 0)


class TestMatchesWithin:
    def test_returns_all_under_threshold(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        q = SubsequenceRef(3, 2, 6)
        threshold = 0.05
        got = processor.matches_within(q, threshold)
        q_values = base.dataset.values(q)
        expected = set()
        for length in base.lengths:
            for ref in base.dataset.iter_subsequences(length):
                res = dtw_path(q_values, base.dataset.values(ref))
                if res.normalized_distance <= threshold:
                    expected.add(ref)
        assert {m.ref for m in got} == expected

    def test_distances_verified(self, base):
        processor = QueryProcessor(base)
        got = processor.matches_within(SubsequenceRef(0, 0, 5), 0.04)
        for m in got:
            assert m.distance <= 0.04 + 1e-12

    def test_sorted_output(self, base):
        processor = QueryProcessor(base)
        got = processor.matches_within(SubsequenceRef(0, 0, 5), 0.06)
        dists = [m.distance for m in got]
        assert dists == sorted(dists)

    def test_invalid_threshold(self, base):
        with pytest.raises(ValidationError):
            QueryProcessor(base).matches_within([0.1, 0.2], 0.0)


class TestStatsAndPruning:
    def test_stats_populated(self, base):
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        processor.best_match(SubsequenceRef(0, 0, 7))
        stats = processor.last_stats
        assert stats.representatives_total > 0
        assert stats.rep_dtw_calls > 0
        assert stats.groups_refined >= 1
        assert stats.member_dtw_calls >= 1

    def test_representative_layer_counters_populated(self, base):
        """The prefilter's counters record real work on a pruning-friendly
        query: representatives skipped without DTW, groups pruned with
        only the cheap bound, and the call/skip split covering the total."""
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        processor.best_match(SubsequenceRef(0, 0, 7))
        stats = processor.last_stats
        assert stats.rep_lb_prunes > 0
        assert stats.rep_dtw_skipped > 0
        assert stats.rep_dtw_calls + stats.rep_dtw_skipped <= stats.representatives_total
        # Threshold queries populate the same layer.
        processor.matches_within(SubsequenceRef(0, 0, 5), 0.04)
        stats = processor.last_stats
        assert stats.rep_lb_prunes > 0
        assert stats.rep_dtw_skipped > 0

    def test_batch_queries_counter_populated(self, base):
        rng = np.random.default_rng(81)
        processor = QueryProcessor(base, QueryConfig(mode="exact"))
        queries = [rng.uniform(size=6) for _ in range(4)]
        single = [processor.best_match(q, normalize=False) for q in queries]
        assert processor.last_stats.batch_queries == 0
        batched = processor.batch_matches(queries, 1, normalize=False)
        assert processor.last_stats.batch_queries == 4
        assert [m[0].ref for m in batched] == [m.ref for m in single]

    def test_group_pruning_reduces_work(self, base):
        q = SubsequenceRef(1, 1, 7)
        with_pruning = QueryProcessor(
            base, QueryConfig(mode="exact", use_group_pruning=True)
        )
        without = QueryProcessor(
            base, QueryConfig(mode="exact", use_group_pruning=False)
        )
        m1 = with_pruning.best_match(q)
        m2 = without.best_match(q)
        assert m1.distance == pytest.approx(m2.distance)
        assert (
            with_pruning.last_stats.members_scanned
            <= without.last_stats.members_scanned
        )

    def test_pruning_does_not_change_exact_results(self, base):
        rng = np.random.default_rng(75)
        for _ in range(3):
            q = rng.uniform(size=6)
            configs = [
                QueryConfig(mode="exact", use_group_pruning=p, use_lower_bounds=b)
                for p in (True, False)
                for b in (True, False)
            ]
            results = [
                QueryProcessor(base, c).best_match(q, normalize=False) for c in configs
            ]
            for r in results[1:]:
                assert r.distance == pytest.approx(results[0].distance)

    def test_unbuilt_base_rejected(self, dataset):
        unbuilt = OnexBase(
            dataset, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=6)
        )
        with pytest.raises(NotBuiltError):
            QueryProcessor(unbuilt)
