"""Unit tests for repro.baselines.brute_force."""

import math

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearcher
from repro.data.dataset import TimeSeriesDataset
from repro.distances.dtw import dtw_path
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(111)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (18, 15, 20)], name="bf"
    )
    return ds.normalized()


def naive_best(dataset, q, lengths):
    best = (math.inf, None)
    for length in lengths:
        for ref in dataset.iter_subsequences(length):
            res = dtw_path(q, dataset.values(ref))
            best = min(best, (res.normalized_distance, ref))
    return best


class TestBruteForce:
    def test_matches_naive_scan(self, dataset):
        rng = np.random.default_rng(112)
        searcher = BruteForceSearcher(dataset)
        for _ in range(5):
            q = rng.uniform(size=6)
            match = searcher.best_match(q, [5, 6, 7])
            dist, ref = naive_best(dataset, q, [5, 6, 7])
            assert match.distance == pytest.approx(dist)
            assert match.ref == ref

    def test_all_modes_agree(self, dataset):
        rng = np.random.default_rng(113)
        q = rng.uniform(size=6)
        batch = BruteForceSearcher(dataset, batch=True).best_match(q, [5, 6])
        pruned = BruteForceSearcher(dataset, batch=False, prune=True).best_match(q, [5, 6])
        naive = BruteForceSearcher(dataset, batch=False, prune=False).best_match(q, [5, 6])
        assert batch.distance == pytest.approx(pruned.distance)
        assert pruned.distance == pytest.approx(naive.distance)
        assert batch.ref == pruned.ref == naive.ref

    def test_pruning_reduces_dtw_calls(self, dataset):
        rng = np.random.default_rng(114)
        q = rng.uniform(size=6)
        pruner = BruteForceSearcher(dataset, batch=False, prune=True)
        scanner = BruteForceSearcher(dataset, batch=False, prune=False)
        pruner.best_match(q, [5, 6])
        scanner.best_match(q, [5, 6])
        assert pruner.last_stats.dtw_calls < scanner.last_stats.dtw_calls
        assert pruner.last_stats.candidates == scanner.last_stats.candidates

    def test_batch_verifies_few_candidates(self, dataset):
        rng = np.random.default_rng(117)
        q = rng.uniform(size=6)
        searcher = BruteForceSearcher(dataset, batch=True)
        searcher.best_match(q, [5, 6, 7])
        stats = searcher.last_stats
        assert stats.dtw_calls < stats.candidates

    def test_k_best_ordering(self, dataset):
        rng = np.random.default_rng(115)
        q = rng.uniform(size=5)
        matches = BruteForceSearcher(dataset).k_best_matches(q, 4, [5])
        dists = [m.distance for m in matches]
        assert dists == sorted(dists)
        assert len({m.ref for m in matches}) == 4

    def test_self_query_zero(self, dataset):
        q = dataset.values(next(iter(dataset.iter_subsequences(6))))
        match = BruteForceSearcher(dataset).best_match(q, [6])
        assert match.distance == pytest.approx(0.0, abs=1e-12)

    def test_window_supported(self, dataset):
        rng = np.random.default_rng(116)
        q = rng.uniform(size=6)
        banded = BruteForceSearcher(dataset).best_match(q, [6], window=1)
        free = BruteForceSearcher(dataset).best_match(q, [6])
        assert banded.distance >= free.distance - 1e-12

    def test_validation(self, dataset):
        searcher = BruteForceSearcher(dataset)
        with pytest.raises(ValidationError):
            searcher.k_best_matches([1.0, 2.0], 0, [5])
        with pytest.raises(ValidationError):
            searcher.best_match([1.0, 2.0], [])
        with pytest.raises(ValidationError):
            searcher.best_match([1.0, 2.0], [999])
        with pytest.raises(ValidationError):
            BruteForceSearcher(TimeSeriesDataset())
