"""Hypothesis property tests for the baseline searchers.

Soundness and exactness contracts that must hold on *any* input, not
just the benchmark workloads: SPRING reports true subsequence-DTW
distances under its threshold, the UCR Suite returns the true
z-normalised banded minimum, and the PAA feature distance never
overestimates the Euclidean distance it stands in for.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.paa_index import PaaIndex, paa_transform
from repro.baselines.spring import SpringMatcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.dtw import dtw_distance
from repro.distances.normalize import znormalize

values = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(values, min_size=2, max_size=6),
    st.lists(values, min_size=6, max_size=25),
    st.floats(min_value=0.5, max_value=20.0),
)
def test_spring_reports_are_sound(pattern, stream, epsilon):
    """Every SPRING report is a true sub-threshold subsequence match.

    The reported distance is the cost of a *valid* warping path over the
    reported range, hence an upper bound on the true subsequence DTW and
    within epsilon.  It equals the true DTW exactly up to the first
    report; after the paper's overlap-reset step, a cheaper path that was
    shadowed by an overlapping (since-reported) one can be lost, so later
    reports may carry a slightly suboptimal — still sub-threshold — cost.
    """
    matcher = SpringMatcher(pattern, epsilon=epsilon)
    reports = matcher.extend(stream) + matcher.finish()
    for k, match in enumerate(reports):
        assert 0 <= match.start <= match.end < len(stream)
        true = dtw_distance(pattern, stream[match.start : match.end + 1])
        assert match.distance >= true - 1e-9
        assert match.distance <= epsilon + 1e-9
        if k == 0:  # before any reset the DP is the unrestricted optimum
            assert math.isclose(match.distance, true, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(values, min_size=2, max_size=6),
    st.lists(values, min_size=6, max_size=25),
)
def test_spring_finds_the_global_optimum(pattern, stream):
    """With epsilon above the optimum, some report achieves it."""
    stream = np.asarray(stream)
    best = math.inf
    for s in range(len(stream)):
        for e in range(s, len(stream)):
            best = min(best, dtw_distance(pattern, stream[s : e + 1]))
    matcher = SpringMatcher(pattern, epsilon=best + 1.0)
    reports = matcher.extend(stream) + matcher.finish()
    assert reports
    assert min(m.distance for m in reports) == pytest.approx(best, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(values, min_size=4, max_size=8),
    st.lists(st.lists(values, min_size=10, max_size=16), min_size=1, max_size=3),
)
def test_ucr_suite_returns_true_minimum(query, arrays):
    dataset = TimeSeriesDataset(
        [TimeSeries(f"s{k}", a) for k, a in enumerate(arrays)]
    )
    m = len(query)
    if all(len(a) < m for a in arrays):
        return  # no candidate windows exist; covered by unit tests
    searcher = UcrSuiteSearcher(dataset, band_fraction=0.2)
    match = searcher.best_match(query)
    radius = int(0.2 * m)
    q = znormalize(query)
    best = math.inf
    for series in dataset:
        for start in range(len(series) - m + 1):
            c = znormalize(series.values[start : start + m])
            best = min(best, dtw_distance(q, c, window=radius, ground="squared"))
    assert match.squared_distance == pytest.approx(best, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(values, min_size=4, max_size=12),
    st.lists(values, min_size=4, max_size=12),
    st.integers(min_value=1, max_value=6),
)
def test_paa_lower_bounds_euclidean(x, y, segments):
    n = min(len(x), len(y))
    x, y = np.asarray(x[:n]), np.asarray(y[:n])
    segments = min(segments, n)
    dataset = TimeSeriesDataset([TimeSeries("one", y)])
    index = PaaIndex(dataset, n, segments=segments)
    bound = index.feature_lower_bound(paa_transform(x, segments))[0]
    true = math.sqrt(float(((x - y) ** 2).sum()))
    assert bound <= true + 1e-9
