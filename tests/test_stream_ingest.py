"""Tests for the streaming write path (repro.stream.ingest / buffer).

The headline contract is **append/rebuild equivalence**: any sequence of
point appends leaves the base answering exact-strategy queries exactly
like ``add_series`` of the full series and like a from-scratch
``build()`` over the same data — asserted here both on fixed cases and
as a Hypothesis property.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError
from repro.stream import SeriesBuffer, StreamIngestor


def make_base(normalize=True, st_value=0.15, step=1, seed=301):
    rng = np.random.default_rng(seed)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=18).cumsum() for _ in range(3)], name="stream-base"
    )
    base = OnexBase(
        ds,
        BuildConfig(
            similarity_threshold=st_value,
            min_length=4,
            max_length=6,
            step=step,
            normalize=normalize,
        ),
    )
    base.build()
    return base


class TestSeriesBuffer:
    def test_snapshots_are_stable_and_readonly(self):
        buf = SeriesBuffer("s", bounds=None)
        buf.extend([1.0, 2.0, 3.0])
        snap = buf.raw_snapshot()
        buf.extend(np.arange(200, dtype=float))  # forces reallocation
        assert snap.tolist() == [1.0, 2.0, 3.0]
        with pytest.raises((ValueError, RuntimeError)):
            snap[0] = 99.0

    def test_normalisation_matches_whole_series(self):
        bounds = (0.0, 10.0)
        buf = SeriesBuffer("s", bounds=bounds)
        values = np.linspace(-2, 14, 40)
        for v in values:
            buf.extend([v])
        from repro.distances.normalize import minmax_normalize

        expected = minmax_normalize(values, lo=bounds[0], hi=bounds[1])
        assert np.array_equal(buf.norm_snapshot(), expected)

    def test_rejects_bad_chunks(self):
        buf = SeriesBuffer("s", bounds=None)
        with pytest.raises(ValidationError):
            buf.extend([])
        with pytest.raises(ValidationError):
            buf.extend([1.0, float("nan")])


class TestStreamIngestor:
    def test_append_creates_series_and_indexes_windows(self):
        base = make_base()
        ing = StreamIngestor(base)
        rng = np.random.default_rng(1)
        values = rng.normal(size=10).cumsum()
        total_windows = 0
        for v in values:
            summary = ing.append_points("live", [v])
            total_windows += summary["windows"]
        assert "live" in base.raw_dataset
        assert len(base.raw_dataset["live"].values) == 10
        # Same window count as bulk add of the identical series.
        expected = sum(10 - n + 1 for n in (4, 5, 6))
        assert total_windows == expected
        base.validate()

    def test_append_to_existing_series_indexes_only_new_windows(self):
        base = make_base()
        ing = StreamIngestor(base)
        before = base.stats.subsequences
        name = base.raw_dataset[0].name
        old_n = len(base.raw_dataset[0])
        summary = ing.append_points(name, [0.5, 0.7])
        new_n = old_n + 2
        expected = sum(
            (new_n - length + 1) - (old_n - length + 1) for length in (4, 5, 6)
        )
        assert summary["windows"] == expected
        assert base.stats.subsequences == before + expected
        base.validate()

    def test_stats_and_counters(self):
        base = make_base()
        ing = StreamIngestor(base)
        ing.append_points("a", np.arange(8, dtype=float))
        ing.append_points("a", np.arange(3, dtype=float))
        assert ing.points_ingested == 11
        assert ing.windows_indexed > 0
        assert ing.series_names() == ["a"]

    def test_step_respects_build_grid(self):
        base = make_base(step=2)
        ing = StreamIngestor(base)
        rng = np.random.default_rng(2)
        for v in rng.normal(size=12).cumsum():
            ing.append_points("live", [v])
        bucket = base.bucket(4)
        starts = sorted(
            m.start
            for g in bucket.groups
            for m in g.members
            if base.dataset[m.series_index].name == "live"
        )
        assert starts == [0, 2, 4, 6, 8]
        base.validate()

    def test_short_series_has_no_windows_until_long_enough(self):
        base = make_base()
        ing = StreamIngestor(base)
        assert ing.append_points("live", [1.0])["windows"] == 0
        assert ing.append_points("live", [2.0, 3.0])["windows"] == 0
        summary = ing.append_points("live", [4.0])
        assert summary["windows"] == 1  # exactly the first length-4 window
        base.validate()

    def test_rejects_garbage(self):
        base = make_base()
        ing = StreamIngestor(base)
        with pytest.raises(ValidationError):
            ing.append_points("", [1.0])
        with pytest.raises(ValidationError):
            ing.append_points("live", [])
        with pytest.raises(ValidationError):
            ing.append_points("live", [float("inf")])

    def test_existing_refs_still_resolve_after_appends(self):
        base = make_base()
        ing = StreamIngestor(base)
        bucket = base.bucket(5)
        ref = bucket.groups[0].members[0]
        before = base.dataset.values(ref).copy()
        name = base.dataset[ref.series_index].name
        ing.append_points(name, [9.0, 9.5, 8.5])
        assert np.array_equal(base.dataset.values(ref), before)

    def test_save_load_round_trip_after_streaming(self, tmp_path):
        base = make_base()
        ing = StreamIngestor(base)
        rng = np.random.default_rng(3)
        for v in rng.normal(size=9).cumsum():
            ing.append_points("live", [v])
        path = tmp_path / "streamed.npz"
        base.save(path)
        loaded = OnexBase.load(path, base.raw_dataset)
        loaded.validate()
        assert loaded.stats.groups == base.stats.groups
        q = rng.uniform(size=5)
        a = QueryProcessor(base, QueryConfig(mode="exact")).best_match(q)
        b = QueryProcessor(loaded, QueryConfig(mode="exact")).best_match(q)
        assert a.ref == b.ref and a.distance == pytest.approx(b.distance)


class TestAppendRebuildEquivalence:
    def assert_equivalent(self, streamed_base, reference_base, queries):
        exact_a = QueryProcessor(streamed_base, QueryConfig(mode="exact"))
        exact_b = QueryProcessor(reference_base, QueryConfig(mode="exact"))
        for q in queries:
            a = exact_a.best_match(q, normalize=False)
            b = exact_b.best_match(q, normalize=False)
            assert a.ref == b.ref
            assert a.distance == pytest.approx(b.distance, abs=1e-12)
            wa = exact_a.matches_within(q, 0.12, normalize=False)
            wb = exact_b.matches_within(q, 0.12, normalize=False)
            assert [m.ref for m in wa] == [m.ref for m in wb]
            assert [m.distance for m in wa] == pytest.approx(
                [m.distance for m in wb], abs=1e-12
            )

    def test_point_by_point_equals_add_series_and_rebuild(self):
        rng = np.random.default_rng(77)
        arrays = [rng.normal(size=16).cumsum() for _ in range(3)]
        new_values = rng.normal(size=12).cumsum()
        cfg = BuildConfig(
            similarity_threshold=0.2, min_length=4, max_length=6, normalize=False
        )

        streamed = OnexBase(
            TimeSeriesDataset.from_arrays([a.copy() for a in arrays], name="s1"), cfg
        )
        streamed.build()
        ing = StreamIngestor(streamed)
        for v in new_values:
            ing.append_points("extra", [v])

        bulk = OnexBase(
            TimeSeriesDataset.from_arrays([a.copy() for a in arrays], name="s2"), cfg
        )
        bulk.build()
        bulk.add_series(TimeSeries("extra", new_values))

        rebuilt = OnexBase(
            TimeSeriesDataset.from_arrays(
                [a.copy() for a in arrays] + [new_values], name="s3",
                names=[f"series-{k}" for k in range(3)] + ["extra"],
            ),
            cfg,
        )
        rebuilt.build()

        streamed.validate()
        assert streamed.stats.subsequences == rebuilt.stats.subsequences
        queries = [rng.uniform(size=rng.integers(4, 7)) for _ in range(8)]
        self.assert_equivalent(streamed, bulk, queries)
        self.assert_equivalent(streamed, rebuilt, queries)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=8,
                max_size=12,
            ),
            min_size=2,
            max_size=3,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=5,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_property_stream_equals_rebuild(self, arrays, new_values, chunk):
        """Feeding a series chunk-by-chunk == building from scratch."""
        cfg = BuildConfig(
            similarity_threshold=0.1, min_length=4, max_length=5, normalize=False
        )
        streamed = OnexBase(
            TimeSeriesDataset.from_arrays([np.array(a) for a in arrays], name="p1"),
            cfg,
        )
        streamed.build()
        ing = StreamIngestor(streamed)
        for i in range(0, len(new_values), chunk):
            ing.append_points("extra", new_values[i : i + chunk])

        rebuilt = OnexBase(
            TimeSeriesDataset.from_arrays(
                [np.array(a) for a in arrays] + [np.array(new_values)],
                name="p2",
                names=[f"series-{k}" for k in range(len(arrays))] + ["extra"],
            ),
            cfg,
        )
        rebuilt.build()

        streamed.validate()
        assert streamed.stats.subsequences == rebuilt.stats.subsequences
        exact_a = QueryProcessor(streamed, QueryConfig(mode="exact"))
        exact_b = QueryProcessor(rebuilt, QueryConfig(mode="exact"))
        rng = np.random.default_rng(5)
        for _ in range(3):
            q = rng.uniform(size=4)
            a = exact_a.best_match(q, normalize=False)
            b = exact_b.best_match(q, normalize=False)
            assert a.ref == b.ref
            assert a.distance == pytest.approx(b.distance, abs=1e-12)


class TestMemberMatrixGrowth:
    """The add_series -> query cliff fix: rows appended, not re-gathered."""

    def test_add_series_keeps_member_matrix_attached(self):
        base = make_base()
        rng = np.random.default_rng(9)
        matrices_before = {b.length: b.member_matrix for b in base.buckets()}
        base.add_series(TimeSeries("extra", rng.normal(size=12).cumsum()))
        for bucket in base.buckets():
            assert bucket.member_matrix is not None
            assert bucket.member_matrix.shape[0] == bucket.member_count
            # The original rows were not re-gathered: the prefix holds the
            # same values (possibly in a reallocated store).
            before = matrices_before[bucket.length]
            assert np.array_equal(bucket.member_matrix[: before.shape[0]], before)

    def test_member_rows_consistent_after_interleaved_appends(self):
        base = make_base(st_value=0.4)  # wide radius: most windows join
        ing = StreamIngestor(base)
        rng = np.random.default_rng(10)
        for v in rng.normal(size=14).cumsum():
            ing.append_points("live", [v])
        for bucket in base.buckets():
            for g_idx, group in enumerate(bucket.groups):
                rows = bucket.member_rows(g_idx)
                assert rows.shape == (group.cardinality, bucket.length)
                for row, ref in zip(rows, group.members):
                    assert np.array_equal(row, base.dataset.values(ref))

    def test_stacked_member_matrix_matches_group_order(self):
        base = make_base(st_value=0.4)
        ing = StreamIngestor(base)
        rng = np.random.default_rng(11)
        for v in rng.normal(size=10).cumsum():
            ing.append_points("live", [v])
        for bucket in base.buckets():
            stacked = bucket.stacked_member_matrix(base.dataset)
            offsets = bucket.member_offsets
            for g_idx in range(bucket.group_count):
                lo, hi = offsets[g_idx], offsets[g_idx + 1]
                assert np.array_equal(stacked[lo:hi], bucket.member_rows(g_idx))

    def test_batched_and_scalar_refinement_agree_after_streaming(self):
        base = make_base()
        ing = StreamIngestor(base)
        rng = np.random.default_rng(12)
        for v in rng.normal(size=12).cumsum():
            ing.append_points("live", [v])
        batched = QueryProcessor(base, QueryConfig(mode="exact"))
        scalar = QueryProcessor(
            base, QueryConfig(mode="exact", use_member_batching=False)
        )
        for _ in range(5):
            q = rng.uniform(size=5)
            a = batched.best_match(q, normalize=False)
            b = scalar.best_match(q, normalize=False)
            assert a.ref == b.ref
            assert a.distance == pytest.approx(b.distance, abs=1e-9)


def test_rejected_first_append_leaves_series_usable():
    """A failed first append must not orphan a buffer for the name."""
    base = make_base()
    ing = StreamIngestor(base)
    with pytest.raises(ValidationError):
        ing.append_points("live", [])
    with pytest.raises(ValidationError):
        ing.append_points("live", [float("nan")])
    assert "live" not in base.raw_dataset
    summary = ing.append_points("live", [1.0, 2.0, 3.0])
    assert summary["total_points"] == 3
    assert np.array_equal(base.raw_dataset["live"].values, [1.0, 2.0, 3.0])
