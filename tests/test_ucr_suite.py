"""Unit tests for repro.baselines.ucr_suite."""

import math

import numpy as np
import pytest

from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.data.dataset import TimeSeriesDataset
from repro.distances.dtw import dtw_distance
from repro.distances.normalize import znormalize
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(121)
    return TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (40, 35, 30)], name="ucr"
    )


def naive_znorm_best(dataset, query, radius):
    """Reference implementation: z-normalised banded squared DTW scan."""
    q = znormalize(query)
    m = len(q)
    best = (math.inf, None)
    for si, series in enumerate(dataset):
        values = series.values
        for start in range(len(series) - m + 1):
            c = znormalize(values[start : start + m])
            sq = dtw_distance(q, c, window=radius, ground="squared")
            best = min(best, (sq, (si, start)))
    return best


class TestCorrectness:
    def test_matches_naive_scan(self, dataset):
        rng = np.random.default_rng(122)
        searcher = UcrSuiteSearcher(dataset, band_fraction=0.1)
        for _ in range(4):
            q = rng.normal(size=12).cumsum()
            match = searcher.best_match(q)
            radius = int(0.1 * 12)
            sq, (si, start) = naive_znorm_best(dataset, q, radius)
            assert match.squared_distance == pytest.approx(sq)
            assert (match.ref.series_index, match.ref.start) == (si, start)

    def test_exact_snippet_found(self, dataset):
        """A verbatim snippet of the data must match itself (distance 0)."""
        searcher = UcrSuiteSearcher(dataset)
        snippet = dataset[1].values[5:17]
        match = searcher.best_match(snippet)
        assert match.squared_distance == pytest.approx(0.0, abs=1e-18)
        assert match.ref.series_index == 1
        assert match.ref.start == 5

    def test_scale_and_offset_invariance(self, dataset):
        """Z-normalisation makes the suite blind to affine changes."""
        searcher = UcrSuiteSearcher(dataset)
        snippet = dataset[0].values[3:15]
        shifted = snippet * 37.5 - 1200.0
        match = searcher.best_match(shifted)
        assert match.squared_distance == pytest.approx(0.0, abs=1e-15)
        assert match.ref.start == 3

    def test_distance_property(self, dataset):
        searcher = UcrSuiteSearcher(dataset)
        match = searcher.best_match(dataset[0].values[:10])
        assert match.distance == pytest.approx(math.sqrt(match.squared_distance))


class TestPruning:
    def test_cascade_prunes_most_candidates(self, dataset):
        rng = np.random.default_rng(123)
        searcher = UcrSuiteSearcher(dataset)
        searcher.best_match(rng.normal(size=14).cumsum())
        stats = searcher.last_stats
        assert stats.candidates > 0
        assert stats.pruning_rate > 0.3
        assert stats.dtw_calls + stats.dtw_abandons <= stats.candidates

    def test_stats_partition_candidates(self, dataset):
        rng = np.random.default_rng(124)
        searcher = UcrSuiteSearcher(dataset)
        searcher.best_match(rng.normal(size=10).cumsum())
        s = searcher.last_stats
        total = (
            s.kim_prunes + s.keogh_eq_prunes + s.keogh_ec_prunes
            + s.dtw_abandons + s.dtw_calls
        )
        assert total == s.candidates


class TestEdgeCases:
    def test_flat_windows_handled(self):
        ds = TimeSeriesDataset.from_arrays(
            [np.concatenate([np.full(10, 3.0), np.arange(10.0)])], name="flat"
        )
        searcher = UcrSuiteSearcher(ds)
        match = searcher.best_match(np.full(5, 7.0))
        # A flat query z-normalises to zeros and matches a flat window.
        assert match.squared_distance == pytest.approx(0.0, abs=1e-15)
        assert match.ref.start <= 5

    def test_band_zero(self, dataset):
        searcher = UcrSuiteSearcher(dataset, band_fraction=0.0)
        snippet = dataset[2].values[0:10]
        match = searcher.best_match(snippet)
        assert match.squared_distance == pytest.approx(0.0, abs=1e-18)

    def test_query_longer_than_all_series(self, dataset):
        searcher = UcrSuiteSearcher(dataset)
        with pytest.raises(ValidationError, match="no window"):
            searcher.best_match(np.arange(100.0))

    def test_validation(self, dataset):
        with pytest.raises(ValidationError):
            UcrSuiteSearcher(TimeSeriesDataset())
        with pytest.raises(ValidationError):
            UcrSuiteSearcher(dataset, band_fraction=1.5)
        with pytest.raises(ValidationError):
            UcrSuiteSearcher(dataset).best_match([1.0])
