"""Unit tests for repro.distances.normalize."""

import numpy as np
import pytest

from repro.distances.normalize import (
    RunningStats,
    minmax_normalize,
    minmax_params,
    sliding_mean_std,
    znormalize,
)
from repro.exceptions import ValidationError


class TestMinmax:
    def test_maps_to_unit_interval(self):
        out = minmax_normalize([2.0, 4.0, 6.0])
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_flat_input_maps_to_zero(self):
        assert minmax_normalize([5.0, 5.0, 5.0]).tolist() == [0.0, 0.0, 0.0]

    def test_explicit_bounds_shared_across_series(self):
        lo, hi = minmax_params([0.0, 10.0])
        a = minmax_normalize([0.0, 5.0], lo=lo, hi=hi)
        b = minmax_normalize([10.0], lo=lo, hi=hi)
        assert a.tolist() == [0.0, 0.5]
        assert b.tolist() == [1.0]

    def test_values_outside_bounds_extrapolate(self):
        out = minmax_normalize([-5.0, 15.0], lo=0.0, hi=10.0)
        assert out.tolist() == [-0.5, 1.5]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            minmax_normalize([])

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError, match="hi"):
            minmax_normalize([1.0], lo=2.0, hi=1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            minmax_normalize([np.nan])


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        out = znormalize([1.0, 2.0, 3.0, 4.0])
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_flat_input_maps_to_zero(self):
        assert znormalize([3.0, 3.0]).tolist() == [0.0, 0.0]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            znormalize([])


class TestSlidingMeanStd:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=50)
        window = 7
        mean, std = sliding_mean_std(values, window)
        assert mean.shape == (44,)
        for i in range(44):
            chunk = values[i : i + window]
            assert mean[i] == pytest.approx(chunk.mean())
            assert std[i] == pytest.approx(chunk.std())

    def test_window_equal_to_length(self):
        values = np.array([1.0, 2.0, 3.0])
        mean, std = sliding_mean_std(values, 3)
        assert mean.shape == (1,)
        assert mean[0] == pytest.approx(2.0)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValidationError, match="longer"):
            sliding_mean_std([1.0, 2.0], 3)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValidationError, match="positive"):
            sliding_mean_std([1.0, 2.0], 0)

    def test_std_never_negative_on_constant_data(self):
        # Round-off used to drive the variance slightly negative here.
        values = np.full(100, 1e8)
        _, std = sliding_mean_std(values, 10)
        assert (std >= 0).all()


class TestRunningStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(11)
        values = rng.normal(loc=3.0, scale=2.0, size=200)
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == 200
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std())
        assert stats.minimum == values.min()
        assert stats.maximum == values.max()

    def test_single_observation(self):
        stats = RunningStats()
        stats.push(4.5)
        assert stats.mean == 4.5
        assert stats.variance == 0.0

    def test_empty_raises(self):
        stats = RunningStats()
        for attr in ("mean", "variance", "minimum", "maximum"):
            with pytest.raises(ValidationError):
                getattr(stats, attr)

    def test_rejects_nan(self):
        stats = RunningStats()
        with pytest.raises(ValidationError, match="non-finite"):
            stats.push(float("nan"))
