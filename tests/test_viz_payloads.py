"""Unit tests for repro.viz.payloads."""

import json
import math

import numpy as np
import pytest

from repro.core.query import Match
from repro.core.seasonal import SeasonalPattern
from repro.data.dataset import SubsequenceRef
from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError
from repro.viz.payloads import (
    connected_scatter_payload,
    overview_payload,
    query_preview_payload,
    radial_chart_payload,
    seasonal_view_payload,
    similarity_view_payload,
)


def make_match(path, distance=0.1):
    return Match(
        ref=SubsequenceRef(0, 2, 1 + max(j for _, j in path)),
        series_name="ARK/TechEmployment",
        distance=distance,
        raw_distance=distance * len(path),
        path=tuple(path),
        group=(4, 0),
    )


class TestOverview:
    def test_intensity_scaled_to_max(self):
        payload = overview_payload(
            [
                {"group": (5, 0), "cardinality": 10, "representative": [0.1] * 5},
                {"group": (5, 1), "cardinality": 5, "representative": [0.2] * 5},
            ]
        )
        assert payload["groups"][0]["intensity"] == 1.0
        assert payload["groups"][1]["intensity"] == 0.5

    def test_empty(self):
        assert overview_payload([]) == {"view": "overview", "groups": []}

    def test_json_serialisable(self):
        payload = overview_payload(
            [{"group": (5, 0), "cardinality": 3, "representative": [0.0] * 5}]
        )
        json.dumps(payload)


class TestQueryPreview:
    def test_brush_and_selection(self):
        series = TimeSeries("MA/GrowthRate", [1.0, 2.0, 3.0, 4.0], metadata={"state": "MA"})
        payload = query_preview_payload(series, 1, 2)
        assert payload["brush"] == {"start": 1, "length": 2}
        assert payload["selection"] == [2.0, 3.0]
        assert payload["metadata"]["state"] == "MA"
        json.dumps(payload)

    def test_invalid_brush(self):
        series = TimeSeries("s", [1.0, 2.0])
        with pytest.raises(ValidationError):
            query_preview_payload(series, 1, 5)


class TestSimilarityView:
    def test_connectors_are_path(self):
        path = [(0, 0), (1, 0), (2, 1)]
        match = make_match(path)
        payload = similarity_view_payload([0.1, 0.2, 0.3], [0.1, 0.3], match)
        assert payload["connectors"] == [[0, 0], [1, 0], [2, 1]]
        assert payload["match_series"] == "ARK/TechEmployment"
        json.dumps(payload)

    def test_path_outside_values_rejected(self):
        match = make_match([(0, 0), (1, 5)])
        with pytest.raises(ValidationError, match="warping path"):
            similarity_view_payload([0.1, 0.2], [0.1, 0.2], match)


class TestRadial:
    def test_angles_span_circle(self):
        payload = radial_chart_payload([1.0, 2.0, 3.0], label="MA")
        angles = [p["angle"] for p in payload["points"]]
        assert angles[0] == 0.0
        assert angles[-1] == pytest.approx(2 * math.pi)
        assert payload["label"] == "MA"

    def test_radii_scaled_off_zero(self):
        payload = radial_chart_payload([0.0, 10.0])
        radii = [p["radius"] for p in payload["points"]]
        assert radii[0] == pytest.approx(0.2)
        assert radii[1] == pytest.approx(1.0)

    def test_flat_series(self):
        payload = radial_chart_payload([5.0, 5.0, 5.0])
        assert all(p["radius"] == 0.5 for p in payload["points"])

    def test_single_point(self):
        payload = radial_chart_payload([3.0])
        assert payload["points"][0]["angle"] == 0.0


class TestConnectedScatter:
    def test_points_follow_path(self):
        match = make_match([(0, 0), (1, 1)])
        payload = connected_scatter_payload([1.0, 2.0], [1.0, 2.0], match)
        assert payload["points"] == [[1.0, 1.0], [2.0, 2.0]]
        assert payload["diagonal_deviation"] == 0.0

    def test_deviation_measures_mismatch(self):
        match = make_match([(0, 0), (1, 1)])
        payload = connected_scatter_payload([1.0, 2.0], [2.0, 4.0], match)
        assert payload["diagonal_deviation"] == pytest.approx(1.5)


class TestSeasonalView:
    def test_segments_alternate_colors(self):
        series = TimeSeries("household-0", np.arange(50.0))
        pattern = SeasonalPattern(
            starts=(0, 20, 40),
            length=10,
            centroid=np.zeros(10),
            max_pairwise_dtw=0.02,
        )
        payload = seasonal_view_payload(series, [pattern])
        slots = [s["color_slot"] for s in payload["patterns"][0]["segments"]]
        assert slots == [0, 1, 0]
        json.dumps(payload)

    def test_empty_patterns(self):
        series = TimeSeries("s", [1.0, 2.0])
        payload = seasonal_view_payload(series, [])
        assert payload["patterns"] == []
