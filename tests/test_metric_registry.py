"""The pluggable distance registry (DESIGN.md §9).

Covers the registry surface (lookup, closed name set, validation at
every boundary), the metric axioms every registered metric must satisfy
(Hypothesis), agreement between each metric's batch kernel and its pair
kernel, and exactness of the registry scan against a naive full scan —
in particular for the metrics that ship *without* a lower-bound family
(derivative_dtw, weighted_dtw), whose only correctness guarantee is the
brute-force-verified scan itself.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QueryConfig
from repro.core.engine import OnexEngine
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.registry import (
    REGISTRY,
    DistanceRegistry,
    MetricSpec,
    get_metric,
    registered_metrics,
)
from repro.exceptions import ValidationError
from repro.server.protocol import Request
from repro.server.service import OnexService

EXPECTED_METRICS = (
    "chebyshev",
    "cityblock",
    "derivative_dtw",
    "dtw",
    "euclidean",
    "weighted_dtw",
)

# 32-bit width keeps every generated magnitude above ~1e-38: squared
# differences then never underflow float64, which would make the Lp
# kernels report exactly 0.0 for distinct points (Hypothesis found
# |x - y| ~ 1e-193, whose square is subnormal-flushed to zero) and
# break the strict-separation axiom below for reasons that are float
# representation, not metric math.
finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, width=32
)


def seq(min_size=4, max_size=12):
    return st.lists(finite_floats, min_size=min_size, max_size=max_size)


def pair_of_equal_length():
    return st.integers(min_value=4, max_value=12).flatmap(
        lambda n: st.tuples(
            st.lists(finite_floats, min_size=n, max_size=n),
            st.lists(finite_floats, min_size=n, max_size=n),
        )
    )


class TestRegistrySurface:
    def test_registered_names(self):
        assert registered_metrics() == EXPECTED_METRICS

    def test_contains_and_len(self):
        assert "dtw" in REGISTRY
        assert "nope" not in REGISTRY
        assert len(REGISTRY) == len(EXPECTED_METRICS)

    def test_get_metric_returns_spec(self):
        spec = get_metric("euclidean")
        assert isinstance(spec, MetricSpec)
        assert spec.name == "euclidean"
        assert spec.batch is not None
        assert spec.lower_bound is not None

    def test_unknown_metric_lists_registered(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            get_metric("manhattan")
        try:
            get_metric("manhattan")
        except ValidationError as exc:
            for name in EXPECTED_METRICS:
                assert name in str(exc)

    def test_elastic_and_multivariate_flags(self):
        assert get_metric("dtw").elastic
        assert get_metric("derivative_dtw").elastic
        assert not get_metric("euclidean").elastic
        assert not get_metric("weighted_dtw").multivariate
        assert get_metric("cityblock").multivariate

    def test_custom_registry_is_isolated(self):
        mine = DistanceRegistry()
        mine.register(get_metric("dtw"))
        assert mine.names() == ("dtw",)
        with pytest.raises(ValidationError):
            mine.get("euclidean")

    def test_duplicate_registration_rejected(self):
        mine = DistanceRegistry()
        mine.register(get_metric("dtw"))
        with pytest.raises(ValidationError, match="already registered"):
            mine.register(get_metric("dtw"))

    def test_query_config_validates_metric(self):
        QueryConfig(metric="chebyshev")  # ok
        with pytest.raises(ValidationError, match="unknown metric"):
            QueryConfig(metric="bogus")


class TestMetricAxioms:
    """Non-negativity, symmetry, identity for every registered metric."""

    @pytest.mark.parametrize("name", EXPECTED_METRICS)
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_non_negative_and_symmetric(self, name, data):
        spec = get_metric(name)
        if spec.elastic:
            x = np.asarray(data.draw(seq()), dtype=np.float64)
            y = np.asarray(data.draw(seq()), dtype=np.float64)
        else:
            xs, ys = data.draw(pair_of_equal_length())
            x = np.asarray(xs, dtype=np.float64)
            y = np.asarray(ys, dtype=np.float64)
        raw_xy, norm_xy = spec.pair(x, y, None)
        raw_yx, norm_yx = spec.pair(y, x, None)
        assert raw_xy >= 0.0 and norm_xy >= 0.0
        assert math.isclose(raw_xy, raw_yx, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(norm_xy, norm_yx, rel_tol=1e-9, abs_tol=1e-9)

    @pytest.mark.parametrize("name", EXPECTED_METRICS)
    @settings(max_examples=60, deadline=None)
    @given(xs=seq())
    def test_identity_of_indiscernibles(self, name, xs):
        spec = get_metric(name)
        x = np.asarray(xs, dtype=np.float64)
        raw, norm = spec.pair(x, x, None)
        assert math.isclose(raw, 0.0, abs_tol=1e-9)
        assert math.isclose(norm, 0.0, abs_tol=1e-9)

    @pytest.mark.parametrize("name", ("euclidean", "cityblock", "chebyshev"))
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_strict_metrics_separate_points(self, name, data):
        """For the Lp metrics, zero distance implies equal sequences
        (DTW variants are deliberately only pseudo-metrics)."""
        spec = get_metric(name)
        xs, ys = data.draw(pair_of_equal_length())
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        raw, _ = spec.pair(x, y, None)
        if raw == 0.0:
            assert np.array_equal(x, y)

    @pytest.mark.parametrize(
        "name", ("euclidean", "cityblock", "chebyshev", "dtw")
    )
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_batch_kernel_matches_pair(self, name, data):
        spec = get_metric(name)
        n = data.draw(st.integers(min_value=4, max_value=10))
        q = np.asarray(
            data.draw(st.lists(finite_floats, min_size=n, max_size=n)),
            dtype=np.float64,
        )
        rows = np.asarray(
            [
                data.draw(st.lists(finite_floats, min_size=n, max_size=n))
                for _ in range(data.draw(st.integers(1, 4)))
            ],
            dtype=np.float64,
        )
        raws, norms = spec.batch(q, rows, n, 1, None)
        for i, row in enumerate(rows):
            raw, norm = spec.pair(q, row, None)
            assert math.isclose(raws[i], raw, rel_tol=1e-9, abs_tol=1e-9)
            assert math.isclose(norms[i], norm, rel_tol=1e-9, abs_tol=1e-9)


def _small_engine(seed=11):
    rng = np.random.default_rng(seed)
    series = [TimeSeries(f"s{i}", rng.normal(size=30)) for i in range(5)]
    dataset = TimeSeriesDataset(series, name=f"axioms-{seed}")
    engine = OnexEngine()
    engine.load_dataset(dataset, min_length=8, max_length=10)
    return engine, dataset


def _naive_best(engine, name, metric, q):
    """Full scan with the metric's own pair kernel — the ground truth."""
    base = engine.base(name)
    spec = get_metric(metric)
    qarr = np.asarray(q, dtype=np.float64)
    best = math.inf
    for bucket in base.buckets():
        if not spec.elastic and bucket.length != qarr.shape[0]:
            continue
        for group in bucket.groups:
            for ref in group.members:
                _, norm = spec.pair(qarr, base.dataset.values(ref), None)
                best = min(best, norm)
    return best


class TestScanExactness:
    """Registry-scan answers equal a naive per-member scan.

    This is the only correctness gate for derivative_dtw / weighted_dtw,
    which have no lower-bound family; for the Lp metrics it additionally
    proves the group-bound pruning never drops the optimum.
    """

    @pytest.mark.parametrize(
        "metric",
        ("euclidean", "cityblock", "chebyshev", "derivative_dtw", "weighted_dtw"),
    )
    def test_best_match_equals_naive_scan(self, metric):
        engine, dataset = _small_engine()
        rng = np.random.default_rng(7)
        for _ in range(3):
            q = rng.normal(size=9)
            # Queries are normalised into the base's value space before
            # the scan; mirror that for the naive reference.
            base = engine.base(dataset.name)
            lo, hi = base.normalization_bounds
            qn = (np.asarray(q) - lo) / (hi - lo)
            match = engine.best_match(dataset.name, q, metric=metric)
            naive = _naive_best(engine, dataset.name, metric, qn)
            assert math.isclose(match.distance, naive, rel_tol=1e-9, abs_tol=1e-9)

    @pytest.mark.parametrize("metric", ("euclidean", "derivative_dtw"))
    def test_matches_within_equals_naive_scan(self, metric):
        engine, dataset = _small_engine(seed=23)
        rng = np.random.default_rng(3)
        q = rng.normal(size=9)
        base = engine.base(dataset.name)
        lo, hi = base.normalization_bounds
        qn = (np.asarray(q) - lo) / (hi - lo)
        threshold = 0.25
        matches = engine.matches_within(dataset.name, q, threshold, metric=metric)
        spec = get_metric(metric)
        expected = 0
        for bucket in base.buckets():
            if not spec.elastic and bucket.length != 9:
                continue
            for group in bucket.groups:
                for ref in group.members:
                    _, norm = spec.pair(qn, base.dataset.values(ref), None)
                    if norm <= threshold:
                        expected += 1
        assert len(matches) == expected
        assert all(m.distance <= threshold for m in matches)
        assert all(m.exact for m in matches)

    def test_kbest_is_sorted_and_consistent_across_modes(self):
        engine_fast = OnexEngine(QueryConfig(mode="fast"))
        engine_exact = OnexEngine(QueryConfig(mode="exact"))
        rng = np.random.default_rng(31)
        series = [TimeSeries(f"s{i}", rng.normal(size=30)) for i in range(5)]
        for eng in (engine_fast, engine_exact):
            eng.load_dataset(
                TimeSeriesDataset(list(series), name="modes"),
                min_length=8,
                max_length=10,
            )
        q = rng.normal(size=9)
        fast = engine_fast.k_best_matches("modes", q, 5, metric="cityblock")
        exact = engine_exact.k_best_matches("modes", q, 5, metric="cityblock")
        # The metric scan is exact in either mode: identical answers.
        assert [m.distance for m in fast] == [m.distance for m in exact]
        assert [m.ref for m in fast] == [m.ref for m in exact]
        dists = [m.distance for m in fast]
        assert dists == sorted(dists)


class TestServiceBoundary:
    def _service(self):
        service = OnexService()
        resp = service.handle(
            Request("load_dataset", {"source": "matters", "years": 10, "min_years": 8})
        )
        assert resp.ok, resp.error_message
        return service, resp.result["dataset"]

    def test_metric_option_accepted(self):
        service, name = self._service()
        query = {
            "series": service.engine.base(name).dataset.names[0],
            "start": 0,
            "length": 8,
        }
        resp = service.handle(
            Request(
                "k_best",
                {"dataset": name, "query": query, "k": 2, "metric": "euclidean"},
            )
        )
        assert resp.ok, resp.error_message
        assert len(resp.result["matches"]) == 2

    def test_unknown_metric_is_validation_error(self):
        service, name = self._service()
        query = {
            "series": service.engine.base(name).dataset.names[0],
            "start": 0,
            "length": 8,
        }
        for op, extra in (
            ("best_match", {}),
            ("k_best", {"k": 1}),
            ("matches_within", {"threshold": 0.5}),
        ):
            resp = service.handle(
                Request(
                    op,
                    {"dataset": name, "query": query, "metric": "bogus", **extra},
                )
            )
            assert not resp.ok
            assert resp.error_type == "ValidationError"
            assert "unknown metric" in resp.error_message

    def test_query_counter_carries_metric_label(self):
        from repro.obs.metrics import REGISTRY as METRICS

        service, name = self._service()
        query = {
            "series": service.engine.base(name).dataset.names[0],
            "start": 0,
            "length": 8,
        }
        resp = service.handle(
            Request(
                "best_match",
                {"dataset": name, "query": query, "metric": "chebyshev"},
            )
        )
        assert resp.ok, resp.error_message
        exposition = METRICS.render()
        assert 'metric="chebyshev"' in exposition
