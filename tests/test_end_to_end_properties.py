"""Hypothesis end-to-end properties of the full ONEX pipeline.

Each property builds a base over a randomised collection and checks the
system-level contracts: exactness of the exact mode against the raw
scan, the fast mode's threshold guarantee, group invariants, and
agreement between independent implementations of the same question.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import BruteForceSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.core.sensitivity import similarity_profile
from repro.data.dataset import TimeSeriesDataset


def collections():
    """Small random collections: 2-4 series of 8-14 points in [0, 1]."""
    series = st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=8,
        max_size=14,
    )
    return st.lists(series, min_size=2, max_size=4)


def queries():
    return st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=3,
        max_size=8,
    )


def build(arrays, st_value=0.08):
    dataset = TimeSeriesDataset.from_arrays(arrays, name="prop")
    base = OnexBase(
        dataset,
        BuildConfig(
            similarity_threshold=st_value, min_length=4, max_length=6, normalize=False
        ),
    )
    base.build()
    return base


@settings(max_examples=25, deadline=None)
@given(collections(), queries())
def test_exact_mode_equals_brute_force(arrays, query):
    base = build(arrays)
    exact = QueryProcessor(base, QueryConfig(mode="exact"))
    brute = BruteForceSearcher(base.dataset)
    a = exact.best_match(query, normalize=False)
    b = brute.best_match(query, base.lengths)
    assert math.isclose(a.distance, b.distance, rel_tol=1e-9, abs_tol=1e-12)


@settings(max_examples=25, deadline=None)
@given(collections(), queries())
def test_fast_mode_never_beats_exact_and_is_bounded(arrays, query):
    base = build(arrays)
    fast = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    exact = QueryProcessor(base, QueryConfig(mode="exact"))
    d_fast = fast.best_match(query, normalize=False).distance
    d_exact = exact.best_match(query, normalize=False).distance
    assert d_fast >= d_exact - 1e-12
    # The fast-mode slack stays within the similarity threshold regime.
    assert d_fast - d_exact <= base.config.similarity_threshold + 1e-9


@settings(max_examples=20, deadline=None)
@given(collections())
def test_group_invariants_on_random_collections(arrays):
    base = build(arrays)
    base.validate()  # member-within-ST/2 and radii invariants


@settings(max_examples=20, deadline=None)
@given(collections(), queries(), st.floats(min_value=0.01, max_value=0.3))
def test_matches_within_agrees_with_sensitivity(arrays, query, threshold):
    base = build(arrays)
    processor = QueryProcessor(base)
    found = processor.matches_within(query, threshold, normalize=False)
    profile = similarity_profile(
        base, np.asarray(query), (threshold,), verify=True, normalize=False
    )
    assert profile.points[0].exact == len(found)


@settings(max_examples=20, deadline=None)
@given(collections(), queries())
def test_k_best_is_prefix_monotone(arrays, query):
    """The k-best list is a prefix of the (k+2)-best list."""
    base = build(arrays)
    processor = QueryProcessor(base, QueryConfig(mode="exact"))
    small = processor.k_best_matches(query, 2, normalize=False)
    large = processor.k_best_matches(query, 4, normalize=False)
    assert [m.ref for m in small] == [m.ref for m in large[:2]]
