"""Unit tests for the fault-injection registry (repro.testing.faults).

The chaos suites (test_deadline, test_overload, test_build_resilience)
lean on these semantics, so they are pinned directly: arming, firing,
bounded trigger counts, scoping, and the per-action behaviours.
"""

import time

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm_all()
    yield
    faults.disarm_all()


class TestRegistry:
    def test_fire_with_nothing_armed_is_noop(self):
        faults.fire("query.rep_chunk")  # must not raise

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.arm("query.rep_chunk", "explode")

    def test_raise_action(self):
        faults.arm("p", "raise")
        with pytest.raises(faults.FaultInjectedError, match="injected fault"):
            faults.fire("p")

    def test_custom_error(self):
        boom = RuntimeError("custom")
        faults.arm("p", "raise", error=boom)
        with pytest.raises(RuntimeError, match="custom"):
            faults.fire("p")

    def test_other_points_unaffected(self):
        faults.arm("p", "raise")
        faults.fire("q")  # different point: no-op

    def test_times_bounds_triggers(self):
        faults.arm("p", "raise", times=2)
        for _ in range(2):
            with pytest.raises(faults.FaultInjectedError):
                faults.fire("p")
        faults.fire("p")  # third fire: exhausted, passes through

    def test_disarm(self):
        faults.arm("p", "raise")
        faults.disarm("p")
        faults.fire("p")

    def test_inject_scopes_fault(self):
        with faults.inject("p", "raise"):
            with pytest.raises(faults.FaultInjectedError):
                faults.fire("p")
        faults.fire("p")  # disarmed on exit

    def test_inject_disarms_on_error(self):
        with pytest.raises(faults.FaultInjectedError):
            with faults.inject("p", "raise"):
                faults.fire("p")
        faults.fire("p")

    def test_sleep_action_blocks(self):
        faults.arm("p", "sleep", seconds=0.05)
        started = time.perf_counter()
        faults.fire("p")
        assert time.perf_counter() - started >= 0.04

    def test_kill_worker_spares_arming_process(self):
        # The pid guard: the process that armed the fault passes through
        # (a real worker death is exercised in test_build_resilience).
        faults.arm("p", "kill-worker")
        faults.fire("p")


class TestTornWrite:
    def test_truncates_and_raises(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"x" * 100)
        faults.arm("p", "torn-write")
        with pytest.raises(faults.FaultInjectedError, match="torn write"):
            faults.fire("p", path=str(path))
        assert path.stat().st_size == 50

    def test_without_path_still_raises(self):
        faults.arm("p", "torn-write")
        with pytest.raises(faults.FaultInjectedError):
            faults.fire("p")
