"""Unit tests for the PAA index and embedding searcher baselines."""

import numpy as np
import pytest

from repro.baselines.embedding import EmbeddingSearcher
from repro.baselines.paa_index import PaaIndex, paa_transform
from repro.data.dataset import TimeSeriesDataset
from repro.distances.dtw import dtw_path
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(131)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=n).cumsum() for n in (30, 24, 28)], name="paa"
    )
    return ds.normalized()


class TestPaaTransform:
    def test_even_segments_are_chunk_means(self):
        values = np.arange(8.0)
        feats = paa_transform(values, 4)
        assert feats.tolist() == [0.5, 2.5, 4.5, 6.5]

    def test_uneven_segments(self):
        feats = paa_transform(np.arange(10.0), 3)
        assert feats.shape == (3,)

    def test_single_segment_is_mean(self):
        values = np.array([1.0, 3.0, 8.0])
        assert paa_transform(values, 1)[0] == pytest.approx(values.mean())

    def test_too_many_segments(self):
        with pytest.raises(ValidationError):
            paa_transform(np.arange(3.0), 4)


class TestPaaIndex:
    def test_lower_bound_property(self, dataset):
        """PAA feature distance never exceeds true ED (GEMINI lemma)."""
        rng = np.random.default_rng(132)
        index = PaaIndex(dataset, 10, segments=5)
        for _ in range(10):
            q = rng.uniform(size=10)
            bounds = index.feature_lower_bound(paa_transform(q, 5))
            for k, ref in enumerate(index._refs):
                true = np.sqrt(((dataset.values(ref) - q) ** 2).sum())
                assert bounds[k] <= true + 1e-9

    def test_best_match_is_exact_under_ed(self, dataset):
        rng = np.random.default_rng(133)
        index = PaaIndex(dataset, 8)
        for _ in range(5):
            q = rng.uniform(size=8)
            match = index.best_match(q)
            true_best = min(
                np.sqrt(((dataset.values(ref) - q) ** 2).sum())
                for ref in dataset.iter_subsequences(8)
            )
            assert match.distance == pytest.approx(true_best)

    def test_range_query_complete_and_sound(self, dataset):
        rng = np.random.default_rng(134)
        index = PaaIndex(dataset, 8, segments=4)
        q = rng.uniform(size=8)
        radius = 0.6
        got = {m.ref for m in index.range_query(q, radius)}
        expected = {
            ref
            for ref in dataset.iter_subsequences(8)
            if np.sqrt(((dataset.values(ref) - q) ** 2).sum()) <= radius
        }
        assert got == expected

    def test_filtering_happens(self, dataset):
        index = PaaIndex(dataset, 10, segments=5)
        q = dataset.values(next(iter(dataset.iter_subsequences(10))))
        index.best_match(q)
        assert index.last_stats.verified < index.size

    def test_self_query(self, dataset):
        index = PaaIndex(dataset, 10)
        ref = next(iter(dataset.iter_subsequences(10)))
        match = index.best_match(dataset.values(ref))
        assert match.distance == pytest.approx(0.0, abs=1e-12)

    def test_validation(self, dataset):
        with pytest.raises(ValidationError):
            PaaIndex(TimeSeriesDataset(), 8)
        with pytest.raises(ValidationError):
            PaaIndex(dataset, 1)
        with pytest.raises(ValidationError):
            PaaIndex(dataset, 8, segments=0)
        with pytest.raises(ValidationError):
            PaaIndex(dataset, 500)
        index = PaaIndex(dataset, 8)
        with pytest.raises(ValidationError, match="query length"):
            index.best_match(np.arange(5.0))
        with pytest.raises(ValidationError):
            index.range_query(np.arange(8.0), -1.0)


class TestEmbeddingSearcher:
    def test_self_query_found(self, dataset):
        searcher = EmbeddingSearcher(
            dataset, [8], references=6, verify_fraction=0.2, seed=1
        )
        ref = next(iter(dataset.iter_subsequences(8)))
        match = searcher.best_match(dataset.values(ref))
        assert match.distance == pytest.approx(0.0, abs=1e-12)

    def test_reasonable_retrieval_quality(self, dataset):
        """Verified-fraction search should come close to the true best."""
        rng = np.random.default_rng(135)
        searcher = EmbeddingSearcher(
            dataset, [8], references=8, verify_fraction=0.3, seed=2
        )
        regrets = []
        for _ in range(5):
            q = rng.uniform(size=8)
            match = searcher.best_match(q)
            true_best = min(
                dtw_path(q, dataset.values(ref)).normalized_distance
                for ref in dataset.iter_subsequences(8)
            )
            assert match.distance >= true_best - 1e-12
            regrets.append(match.distance - true_best)
        assert np.mean(regrets) < 0.1

    def test_verifies_only_fraction(self, dataset):
        searcher = EmbeddingSearcher(
            dataset, [8], references=4, verify_fraction=0.1, seed=3
        )
        searcher.best_match(np.linspace(0, 1, 8))
        stats = searcher.last_stats
        assert stats.verified <= max(1, int(np.ceil(0.1 * searcher.size)))
        assert stats.candidates == searcher.size

    def test_multiple_lengths_indexed(self, dataset):
        searcher = EmbeddingSearcher(
            dataset, [6, 8], references=4, verify_fraction=0.2, seed=4
        )
        expected = sum(
            len(list(dataset.iter_subsequences(n))) for n in (6, 8)
        )
        assert searcher.size == expected

    def test_validation(self, dataset):
        with pytest.raises(ValidationError):
            EmbeddingSearcher(TimeSeriesDataset(), [8])
        with pytest.raises(ValidationError):
            EmbeddingSearcher(dataset, [8], references=0)
        with pytest.raises(ValidationError):
            EmbeddingSearcher(dataset, [8], verify_fraction=0.0)
        with pytest.raises(ValidationError):
            EmbeddingSearcher(dataset, [999])
