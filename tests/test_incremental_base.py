"""Tests for incremental base updates (OnexBase.add_series)."""

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError, NotBuiltError, ValidationError


def make_base(normalize=True, st=0.1):
    rng = np.random.default_rng(201)
    ds = TimeSeriesDataset.from_arrays(
        [rng.normal(size=16).cumsum() for _ in range(3)], name="inc"
    )
    base = OnexBase(
        ds,
        BuildConfig(
            similarity_threshold=st, min_length=4, max_length=6, normalize=normalize
        ),
    )
    base.build()
    return base


class TestAddSeries:
    def test_summary_accounts_for_all_windows(self):
        base = make_base()
        rng = np.random.default_rng(202)
        new = TimeSeries("extra", rng.normal(size=12).cumsum())
        summary = base.add_series(new)
        expected = sum(12 - n + 1 for n in (4, 5, 6))
        assert summary["windows"] == expected
        assert summary["joined_existing_groups"] + summary["new_groups"] == expected

    def test_invariants_hold_after_add(self):
        base = make_base()
        rng = np.random.default_rng(203)
        base.add_series(TimeSeries("extra", rng.normal(size=10).cumsum()))
        base.validate()

    def test_new_series_is_queryable(self):
        base = make_base()
        rng = np.random.default_rng(204)
        values = rng.normal(size=10).cumsum()
        base.add_series(TimeSeries("extra", values))
        match = QueryProcessor(base).best_match(values[:5])
        assert match.distance == pytest.approx(0.0, abs=1e-9)
        assert match.series_name == "extra"

    def test_stats_updated(self):
        base = make_base()
        before = base.stats
        rng = np.random.default_rng(205)
        summary = base.add_series(TimeSeries("extra", rng.normal(size=8).cumsum()))
        after = base.stats
        assert after.subsequences == before.subsequences + summary["windows"]
        assert after.groups == before.groups + summary["new_groups"]

    def test_identical_series_joins_existing_groups(self):
        base = make_base(st=0.2)
        copy_of = base.raw_dataset[0]
        clone = TimeSeries("clone", copy_of.values)
        summary = base.add_series(clone)
        # Every window of an existing series sits at distance 0 from the
        # group its twin belongs to -> it must join, not create.
        assert summary["new_groups"] == 0
        assert summary["joined_existing_groups"] == summary["windows"]

    def test_normalization_uses_build_time_bounds(self):
        base = make_base()
        lo, hi = base.raw_dataset.global_bounds()
        inside = TimeSeries("inside", np.linspace(lo, hi, 10))
        base.add_series(inside)
        normalized = base.dataset["inside"].values
        assert normalized.min() == pytest.approx(0.0)
        assert normalized.max() == pytest.approx(1.0)

    def test_out_of_bounds_values_allowed(self):
        base = make_base()
        _, hi = base.raw_dataset.global_bounds()
        spiky = TimeSeries("spiky", np.linspace(hi, hi * 2 + 1, 10))
        base.add_series(spiky)
        base.validate()
        assert base.dataset["spiky"].values.max() > 1.0

    def test_longer_series_creates_new_lengths_only_in_range(self):
        base = make_base()
        rng = np.random.default_rng(206)
        base.add_series(TimeSeries("long", rng.normal(size=40).cumsum()))
        assert base.lengths == [4, 5, 6]  # config range is the ceiling

    def test_duplicate_name_rejected(self):
        base = make_base()
        with pytest.raises(DatasetError, match="duplicate"):
            base.add_series(TimeSeries(base.raw_dataset[0].name, [1.0] * 8))

    def test_non_series_rejected(self):
        base = make_base()
        with pytest.raises(ValidationError):
            base.add_series([1.0, 2.0, 3.0])

    def test_unbuilt_base_rejected(self):
        rng = np.random.default_rng(207)
        ds = TimeSeriesDataset.from_arrays([rng.normal(size=10)], name="u")
        base = OnexBase(
            ds, BuildConfig(similarity_threshold=0.1, min_length=4, max_length=5)
        )
        with pytest.raises(NotBuiltError):
            base.add_series(TimeSeries("x", rng.normal(size=8)))

    def test_save_load_round_trip_after_add(self, tmp_path):
        base = make_base()
        rng = np.random.default_rng(208)
        base.add_series(TimeSeries("extra", rng.normal(size=9).cumsum()))
        path = tmp_path / "inc.npz"
        base.save(path)
        loaded = OnexBase.load(path, base.raw_dataset)
        assert loaded.stats.groups == base.stats.groups
        loaded.validate()

    def test_unnormalized_base_add(self):
        base = make_base(normalize=False)
        rng = np.random.default_rng(209)
        summary = base.add_series(TimeSeries("extra", rng.normal(size=8).cumsum()))
        assert summary["windows"] > 0
        base.validate()
