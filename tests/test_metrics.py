"""Unit tests for repro.distances.metrics."""

import numpy as np
import pytest

from repro.distances.metrics import (
    as_sequence,
    chebyshev,
    euclidean,
    euclidean_l1,
    euclidean_l2,
    normalized_euclidean,
    pairwise_euclidean,
)
from repro.exceptions import ValidationError


class TestAsSequence:
    def test_converts_lists(self):
        out = as_sequence([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_sequence([])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            as_sequence([[1, 2], [3, 4]])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_sequence([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_sequence([1.0, float("inf")])

    def test_name_appears_in_error(self):
        with pytest.raises(ValidationError, match="query"):
            as_sequence([], name="query")


class TestEuclideanFamily:
    def test_l1_known_value(self):
        assert euclidean_l1([0, 0, 0], [1, 2, 3]) == 6.0

    def test_l2_known_value(self):
        assert euclidean_l2([0, 0], [3, 4]) == 5.0

    def test_chebyshev_known_value(self):
        assert chebyshev([0, 0, 0], [1, -5, 3]) == 5.0

    def test_identical_inputs_are_zero(self):
        x = [1.5, -2.0, 7.25]
        assert euclidean_l1(x, x) == 0.0
        assert euclidean_l2(x, x) == 0.0
        assert chebyshev(x, x) == 0.0

    def test_symmetry(self):
        x, y = [1, 2, 3], [4, 0, -1]
        assert euclidean_l1(x, y) == euclidean_l1(y, x)
        assert euclidean_l2(x, y) == euclidean_l2(y, x)
        assert chebyshev(x, y) == chebyshev(y, x)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="equal lengths"):
            euclidean_l1([1, 2], [1, 2, 3])

    def test_normalized_l1_is_mean(self):
        assert normalized_euclidean([0, 0, 0, 0], [1, 1, 1, 1]) == 1.0
        assert normalized_euclidean([0, 0], [1, 3]) == 2.0

    def test_normalized_l2_is_rms(self):
        assert normalized_euclidean([0, 0], [3, 3], order=2) == pytest.approx(3.0)

    def test_normalized_invalid_order(self):
        with pytest.raises(ValidationError, match="order"):
            normalized_euclidean([1], [2], order=3)

    def test_euclidean_dispatch(self):
        x, y = [0, 0, 0], [1, 2, 3]
        assert euclidean(x, y, order=1, normalized=False) == 6.0
        assert euclidean(x, y, order=1, normalized=True) == 2.0
        assert euclidean(x, y, order=2, normalized=False) == pytest.approx(
            np.sqrt(14)
        )

    def test_euclidean_invalid_order(self):
        with pytest.raises(ValidationError):
            euclidean([1], [2], order=0, normalized=False)


class TestPairwiseEuclidean:
    def test_matches_scalar_function(self):
        rows = np.array([[0.0, 1.0], [2.0, 3.0], [1.0, 1.0]])
        mat = pairwise_euclidean(rows)
        for i in range(3):
            for j in range(3):
                expected = normalized_euclidean(rows[i], rows[j])
                assert mat[i, j] == pytest.approx(expected)

    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(7)
        rows = rng.normal(size=(5, 8))
        mat = pairwise_euclidean(rows, order=2)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            pairwise_euclidean(np.array([1.0, 2.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            pairwise_euclidean(np.array([[np.nan, 1.0]]))
