"""Kill-9-under-load chaos suite for the worker pool (PR 10 gate).

The acceptance contract: under sustained concurrent client load,
``kill -9`` of a pool worker loses **zero acknowledged requests** (every
client call either succeeds — possibly after transparent failover or a
request-id-idempotent retry — or is never acknowledged), and the pool
returns to full capacity within the backoff budget.  Exercised twice:
in-process against a real HTTP server + retrying clients, and
end-to-end against a ``repro serve --workers N`` subprocess whose
worker pids come from ``/health``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService
from repro.server.supervisor import Supervisor

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_service(name="chaos-toy", seed=13):
    rng = np.random.default_rng(seed)
    dataset = TimeSeriesDataset(
        [TimeSeries(f"s{i}", rng.normal(size=60).cumsum()) for i in range(4)],
        name=name,
    )
    service = OnexService(QueryConfig())
    service.engine.load_dataset(
        dataset,
        similarity_threshold=0.3,
        min_length=10,
        max_length=14,
        step=2,
    )
    return service


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestKill9UnderLoad:
    def test_no_acknowledged_request_lost(self, tmp_path):
        service = make_service()
        supervisor = Supervisor(
            service,
            workers=2,
            snapshot_root=tmp_path / "snaps",
            # The flap breaker has its own test; here it must not latch a
            # slot open while we deliberately kill workers in a loop.
            pool_options={
                "backoff_base_s": 0.05,
                "backoff_cap_s": 0.5,
                "flap_threshold": 100,
            },
        )
        supervisor.start(timeout=60)
        server = OnexHttpServer(supervisor, max_in_flight=8, max_queue=16)
        server.start()
        rng = np.random.default_rng(3)
        queries = [rng.normal(size=12).cumsum().tolist() for _ in range(8)]
        stop = threading.Event()
        failures = []
        successes = [0] * 4
        appended = []

        def reader(worker_idx):
            client = OnexClient(
                server.url, max_retries=6, retry_budget_s=30.0
            )
            i = 0
            while not stop.is_set():
                try:
                    result = client.call(
                        "k_best",
                        {
                            "dataset": "chaos-toy",
                            "query": queries[(worker_idx + i) % len(queries)],
                            "k": 2,
                        },
                    )
                    assert result["matches"], "acknowledged empty result"
                    successes[worker_idx] += 1
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append((worker_idx, repr(exc)))
                i += 1

        def writer():
            # Mutating ops ride the request-id idempotency window: every
            # acknowledged append must be applied exactly once.
            client = OnexClient(
                server.url, max_retries=6, retry_budget_s=30.0
            )
            i = 0
            while not stop.is_set():
                try:
                    summary = client.call(
                        "append_points",
                        {
                            "dataset": "chaos-toy",
                            "series": "s0",
                            "values": [float(i), float(i) + 0.5],
                        },
                    )
                    appended.append(summary["points"])
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(("writer", repr(exc)))
                i += 1
                time.sleep(0.05)

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=writer)]
        try:
            for t in threads:
                t.start()
            kills = 0
            deadline = time.monotonic() + 4.0
            while time.monotonic() < deadline:
                time.sleep(0.8)
                pids = [p for p in supervisor.pool.worker_pids() if p]
                if pids:
                    os.kill(pids[kills % len(pids)], signal.SIGKILL)
                    kills += 1
            stop.set()
            for t in threads:
                t.join(timeout=60)
            assert kills >= 2, "the chaos loop never killed a worker"
            assert failures == [], failures[:5]
            assert sum(successes) > 0 and appended
            # Full capacity back within the backoff budget.
            assert wait_for(
                lambda: supervisor.pool.live_workers == 2, timeout=10
            )
            status = supervisor.pool_status()
            assert sum(w["crashes"] for w in status["workers"]) >= kills - 1
        finally:
            stop.set()
            server.stop()
            supervisor.close()
        # Acknowledged appends really applied: each append indexed its
        # points exactly once (idempotency-window verified server-side).
        total_points = sum(appended)
        preview = service.handle(
            {
                "op": "query_preview",
                "params": {"dataset": "chaos-toy", "series": "s0"},
            }
        )
        assert preview.ok
        assert len(preview.result["values"]) == 60 + total_points


class ServerProcess:
    """One ``repro serve --workers N`` subprocess on an ephemeral port."""

    def __init__(self, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.banner = []
        self.url = None
        deadline = time.monotonic() + 120
        for line in self.proc.stdout:
            self.banner.append(line.rstrip("\n"))
            match = re.search(r"listening on (http://\S+)", line)
            if match:
                self.url = match.group(1)
                break
            if time.monotonic() > deadline:
                break
        if self.url is None:
            raise RuntimeError(
                "server never announced a URL:\n" + "\n".join(self.banner)
            )

    def wait_ready(self, timeout=120):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"{self.url}/ready", timeout=5
                ) as resp:
                    if json.loads(resp.read()).get("ready"):
                        return
            except urllib.error.HTTPError as exc:
                if exc.code != 503:
                    raise
            except OSError:
                pass
            time.sleep(0.05)
        raise RuntimeError("server never became ready")

    def health(self):
        with urllib.request.urlopen(f"{self.url}/health", timeout=10) as resp:
            return json.loads(resp.read())

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


@pytest.fixture()
def pooled_server():
    server = ServerProcess("--workers", "2")
    try:
        server.wait_ready()
        yield server
    finally:
        server.cleanup()


class TestServeWorkersEndToEnd:
    def test_kill9_worker_recovers_and_serves(self, pooled_server):
        client = OnexClient(
            pooled_server.url, max_retries=6, retry_budget_s=30.0
        )
        loaded = client.call(
            "load_dataset",
            {
                "source": "matters",
                "similarity_threshold": 0.08,
                "min_length": 4,
                "max_length": 5,
                "years": 8,
                "min_years": 6,
            },
        )
        dataset = loaded["dataset"]
        query = {"series": "MA/GrowthRate", "start": 0, "length": 5}
        baseline = client.call("best_match", {"dataset": dataset, "query": query})

        pool = client.pool_status()
        assert pool is not None and pool["live"] == 2
        victim = next(w["pid"] for w in pool["workers"] if w["pid"])
        os.kill(victim, signal.SIGKILL)

        # Queries keep answering (failover + retries) and are identical.
        for _ in range(5):
            again = client.call(
                "best_match", {"dataset": dataset, "query": query}
            )
            assert again["connectors"] == baseline["connectors"]

        def back_to_full():
            status = client.pool_status()
            return status["live"] == status["size"] == 2

        assert wait_for(back_to_full, timeout=30)
        status = client.pool_status()
        assert sum(w["crashes"] for w in status["workers"]) >= 1
        assert all(w["pid"] != victim or w["crashes"] for w in status["workers"])

    def test_health_and_ready_report_pool(self, pooled_server):
        health = pooled_server.health()
        assert health["ready"] is True
        assert health["pool"]["size"] == 2
        states = [w["state"] for w in health["pool"]["workers"]]
        assert states == ["live", "live"]
        with urllib.request.urlopen(
            f"{pooled_server.url}/ready", timeout=10
        ) as resp:
            payload = json.loads(resp.read())
        assert payload["ready"] is True
        assert payload["pool"]["live"] == 2
