"""Event-feed ordering under concurrent appenders (HTTP path).

``poll_events(since=)`` is the subscription cursor of the streaming
demo: every consumer must see a strictly increasing, gap-explicit,
duplicate-free sequence even while several producers append and another
client polls mid-stream.  The HTTP layer serialises mutating operations
per dataset (exclusive lock), which is what makes this contract hold —
these tests pin it end to end, including ``flush_monitors`` landing its
deferred tail candidates in the same ordered feed.
"""

import threading

import numpy as np
import pytest

from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService

_LOAD = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
_DATASET = "ElectricityLoad-sim"


@pytest.fixture()
def server():
    with OnexHttpServer(OnexService(), max_in_flight=8, max_queue=32) as srv:
        client = OnexClient(srv.url)
        client.call("load_dataset", _LOAD)
        # Unscoped wide monitor: watches every live series, fires often.
        client.call(
            "register_monitor",
            {
                "dataset": _DATASET,
                "pattern": [0.1, 0.6, 0.2, 0.7],
                "epsilon": 100.0,
                "monitor": "wide",
            },
        )
        yield srv


def _run_appenders(url, n_series=3, n_appends=4, chunk=3):
    """Concurrent producers, one series each; returns per-thread errors."""
    errors = []

    def appender(idx):
        client = OnexClient(url)
        rng = np.random.default_rng(1000 + idx)
        try:
            for _ in range(n_appends):
                client.call(
                    "append_points",
                    {
                        "dataset": _DATASET,
                        "series": f"live-{idx}",
                        "values": [float(v) for v in rng.normal(size=chunk).cumsum()],
                    },
                )
        except Exception as exc:  # surfaced after join
            errors.append((idx, exc))

    threads = [
        threading.Thread(target=appender, args=(i,)) for i in range(n_series)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    return errors


class TestConcurrentAppenders:
    def test_feed_is_strictly_ordered_and_duplicate_free(self, server):
        errors = _run_appenders(server.url)
        assert not errors, errors
        client = OnexClient(server.url)
        polled = client.call("poll_events", {"dataset": _DATASET})
        assert polled["dropped"] == 0
        seqs = [e["seq"] for e in polled["events"]]
        assert seqs, "the wide monitor must have fired"
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert seqs[-1] == polled["last_seq"]
        # Per monitored series, SPRING matches arrive in stream order.
        for idx in range(3):
            matches = [
                e
                for e in polled["events"]
                if e["kind"] == "match" and e["series"] == f"live-{idx}"
            ]
            starts = [e["start"] for e in matches]
            assert starts == sorted(starts)

    def test_since_cursor_sees_every_event_exactly_once(self, server):
        """A consumer polling concurrently with the producers never sees
        a duplicate and never goes backwards; the final drain closes any
        gap left when the producers outran the poll cadence."""
        stop = threading.Event()
        seen = []
        poll_errors = []

        def consumer():
            client = OnexClient(server.url)
            cursor = 0
            try:
                while not stop.is_set():
                    polled = client.call(
                        "poll_events", {"dataset": _DATASET, "since": cursor}
                    )
                    batch = [e["seq"] for e in polled["events"]]
                    assert all(s > cursor for s in batch)
                    assert batch == sorted(batch)
                    seen.extend(batch)
                    if batch:
                        cursor = batch[-1]
            except Exception as exc:
                poll_errors.append(exc)

        poller = threading.Thread(target=consumer)
        poller.start()
        errors = _run_appenders(server.url)
        stop.set()
        poller.join(timeout=60)
        assert not errors and not poll_errors, (errors, poll_errors)
        client = OnexClient(server.url)
        cursor = seen[-1] if seen else 0
        tail = client.call("poll_events", {"dataset": _DATASET, "since": cursor})
        seen.extend(e["seq"] for e in tail["events"])
        assert len(set(seen)) == len(seen)
        assert seen == sorted(seen)
        assert seen[-1] == tail["last_seq"]

    def test_flush_lands_in_the_ordered_feed(self, server):
        errors = _run_appenders(server.url, n_series=2, n_appends=3)
        assert not errors, errors
        client = OnexClient(server.url)
        before = client.call("poll_events", {"dataset": _DATASET})
        flushed = client.call("flush_monitors", {"dataset": _DATASET})["events"]
        after = client.call(
            "poll_events", {"dataset": _DATASET, "since": before["last_seq"]}
        )
        # Every flushed event got a fresh seq past the pre-flush frontier
        # and is pollable like any organic event.
        assert [e["seq"] for e in flushed] == [e["seq"] for e in after["events"]]
        assert all(e["seq"] > before["last_seq"] for e in flushed)
        # Flushing twice emits nothing new.
        assert client.call("flush_monitors", {"dataset": _DATASET})["events"] == []

    def test_limit_pages_without_skipping(self, server):
        errors = _run_appenders(server.url, n_series=2, n_appends=3)
        assert not errors, errors
        client = OnexClient(server.url)
        everything = [
            e["seq"] for e in client.call("poll_events", {"dataset": _DATASET})["events"]
        ]
        paged, cursor = [], 0
        while True:
            batch = client.call(
                "poll_events", {"dataset": _DATASET, "since": cursor, "limit": 2}
            )["events"]
            if not batch:
                break
            paged.extend(e["seq"] for e in batch)
            cursor = batch[-1]["seq"]
        assert paged == everything
