"""Visual analytics layer (§3.4): view payloads and headless renderers.

- :mod:`repro.viz.payloads` — the exact data each web-UI pane consumes
  (overview, query preview, similarity results with warped-point
  connectors, radial chart, connected scatter, seasonal view).
- :mod:`repro.viz.ascii_chart` — terminal renderers so the examples are
  visual without matplotlib.
- :mod:`repro.viz.svg` — a dependency-free SVG writer regenerating the
  paper's figure styles as files.
"""

from repro.viz.ascii_chart import (
    line_chart,
    multi_line_chart,
    overview_strip,
    radial_chart,
    seasonal_chart,
    sparkline,
)
from repro.viz.payloads import (
    connected_scatter_payload,
    overview_payload,
    query_preview_payload,
    radial_chart_payload,
    seasonal_view_payload,
    similarity_view_payload,
)
from repro.viz.svg import (
    svg_connected_scatter,
    svg_line_chart,
    svg_radial_chart,
    svg_seasonal_view,
    svg_similarity_view,
)

__all__ = [
    "connected_scatter_payload",
    "line_chart",
    "multi_line_chart",
    "overview_payload",
    "overview_strip",
    "query_preview_payload",
    "radial_chart",
    "radial_chart_payload",
    "seasonal_chart",
    "seasonal_view_payload",
    "similarity_view_payload",
    "sparkline",
    "svg_connected_scatter",
    "svg_line_chart",
    "svg_radial_chart",
    "svg_seasonal_view",
    "svg_similarity_view",
]
