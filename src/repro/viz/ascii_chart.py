"""Terminal chart renderers.

The demo's web charts have headless stand-ins here so the example scripts
can *show* similarity results in any terminal: block-character sparklines,
grid line charts, and two-series overlays marking warped matches.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "line_chart",
    "multi_line_chart",
    "overview_strip",
    "radial_chart",
    "seasonal_chart",
    "sparkline",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """One-line block-character rendering of a series."""
    v = as_sequence(values, name="values")
    lo, hi = float(v.min()), float(v.max())
    if hi - lo <= 0:
        return _BLOCKS[3] * v.shape[0]
    scaled = (v - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def _scale_to_rows(values: np.ndarray, height: int, lo: float, hi: float) -> np.ndarray:
    if hi - lo <= 0:
        return np.full(values.shape[0], height // 2, dtype=int)
    scaled = (values - lo) / (hi - lo) * (height - 1)
    return np.clip(np.round(scaled).astype(int), 0, height - 1)


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    if values.shape[0] == width:
        return values
    idx = np.linspace(0, values.shape[0] - 1, width)
    return np.interp(idx, np.arange(values.shape[0]), values)


def line_chart(values, *, width: int = 60, height: int = 12, marker: str = "*") -> str:
    """Multi-row character plot of one series."""
    if width < 2 or height < 2:
        raise ValidationError("width and height must be >= 2")
    v = _resample(as_sequence(values, name="values"), width)
    rows = _scale_to_rows(v, height, float(v.min()), float(v.max()))
    grid = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows):
        grid[height - 1 - row][col] = marker
    return "\n".join("".join(line) for line in grid)


def radial_chart(values, *, size: int = 21, marker: str = "*") -> str:
    """Character-grid polar rendering of a series (Fig. 3a, headless).

    Point ``k`` sits at angle ``2*pi*k/(n-1)`` with radius proportional
    to its min–max scaled value — the same mapping as the SVG and JSON
    radial views, so the three stay comparable.
    """
    import math

    v = as_sequence(values, name="values")
    if size < 5 or size % 2 == 0:
        raise ValidationError("size must be an odd number >= 5")
    lo, hi = float(v.min()), float(v.max())
    center = size // 2
    grid = [[" "] * size for _ in range(size)]
    grid[center][center] = "+"
    n = v.shape[0]
    for k, value in enumerate(v):
        angle = 0.0 if n == 1 else 2.0 * math.pi * k / (n - 1)
        if hi - lo <= 0:
            radius = 0.5 * center
        else:
            radius = center * (0.2 + 0.8 * (value - lo) / (hi - lo))
        col = center + int(round(radius * math.cos(angle)))
        row = center - int(round(radius * math.sin(angle)))
        if 0 <= row < size and 0 <= col < size:
            grid[row][col] = marker
    return "\n".join("".join(line) for line in grid)


def seasonal_chart(values, segments, *, width: int = 60, height: int = 10) -> str:
    """Line chart plus an occurrence ruler (Fig. 4, headless).

    *segments* are ``(start, stop)`` index pairs; the extra bottom row
    marks their extents with alternating ``=`` / ``#`` runs, mirroring
    the demo's alternating blue/green shading.
    """
    v = as_sequence(values, name="values")
    for start, stop in segments:
        if not (0 <= start < stop <= v.shape[0]):
            raise ValidationError(f"segment ({start}, {stop}) outside the series")
    chart = line_chart(v, width=width, height=height)
    ruler = [" "] * width
    scale = width / v.shape[0]
    for k, (start, stop) in enumerate(segments):
        mark = "=" if k % 2 == 0 else "#"
        lo = int(start * scale)
        hi = max(int(stop * scale), lo + 1)
        for col in range(lo, min(hi, width)):
            ruler[col] = mark
    return chart + "\n" + "".join(ruler)


def overview_strip(representatives, *, labels=None) -> str:
    """Overview-pane strip: one sparkline per group, intensity-annotated.

    *representatives* is a list of ``(values, cardinality)`` pairs (what
    the engine's overview returns); output is one line per group with
    the cardinality bar the pane encodes as colour intensity.
    """
    reps = list(representatives)
    if not reps:
        return "(no groups)"
    top = max(card for _, card in reps)
    lines = []
    for k, (values, cardinality) in enumerate(reps):
        label = labels[k] if labels is not None else f"group {k}"
        bar = "#" * max(1, round(10 * cardinality / top))
        lines.append(
            f"{label:<12} {sparkline(values)}  x{cardinality:<5} {bar}"
        )
    return "\n".join(lines)


def multi_line_chart(
    first,
    second,
    *,
    width: int = 60,
    height: int = 12,
    markers: tuple[str, str] = ("*", "o"),
    overlap: str = "@",
) -> str:
    """Overlay of two series on one grid (the "multiple lines" chart).

    Both series share the y-scale so level differences stay visible;
    *overlap* marks cells where they coincide — eyeballing how tightly the
    warped match follows the query.
    """
    if width < 2 or height < 2:
        raise ValidationError("width and height must be >= 2")
    a = _resample(as_sequence(first, name="first"), width)
    b = _resample(as_sequence(second, name="second"), width)
    lo = float(min(a.min(), b.min()))
    hi = float(max(a.max(), b.max()))
    rows_a = _scale_to_rows(a, height, lo, hi)
    rows_b = _scale_to_rows(b, height, lo, hi)
    grid = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows_a):
        grid[height - 1 - row][col] = markers[0]
    for col, row in enumerate(rows_b):
        cell = grid[height - 1 - row][col]
        grid[height - 1 - row][col] = overlap if cell == markers[0] else markers[1]
    return "\n".join("".join(line) for line in grid)
