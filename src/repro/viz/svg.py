"""Dependency-free SVG renderers for the paper's chart styles.

Generates standalone ``.svg`` files for the similarity view (multiple
lines with dotted warped-point connectors, Fig. 2), the radial chart
(Fig. 3a), the connected scatter plot (Fig. 3b), and the seasonal view
(Fig. 4).  Only string formatting — no plotting dependencies — so every
figure regenerates headlessly in this offline environment.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "svg_connected_scatter",
    "svg_line_chart",
    "svg_radial_chart",
    "svg_seasonal_view",
    "svg_similarity_view",
]

_W, _H, _PAD = 640, 360, 40


def _document(body: str, width: int = _W, height: int = _H) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
        f"{body}\n</svg>\n"
    )


def _xy(values: np.ndarray, lo: float, hi: float, width: int = _W, height: int = _H):
    n = values.shape[0]
    xs = np.linspace(_PAD, width - _PAD, n)
    if hi - lo <= 0:
        ys = np.full(n, height / 2.0)
    else:
        ys = height - _PAD - (values - lo) / (hi - lo) * (height - 2 * _PAD)
    return xs, ys


def _polyline(xs, ys, color: str, *, dashed: bool = False, width: float = 2.0) -> str:
    points = " ".join(f"{x:.2f},{y:.2f}" for x, y in zip(xs, ys))
    dash = ' stroke-dasharray="6 4"' if dashed else ""
    return (
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        f'stroke-width="{width}"{dash}/>'
    )


def _write(path, content: str) -> Path:
    path = Path(path)
    path.write_text(content, encoding="utf-8")
    return path


def svg_line_chart(values, path, *, color: str = "#1f77b4", title: str = "") -> Path:
    """Single-series line chart."""
    v = as_sequence(values, name="values")
    xs, ys = _xy(v, float(v.min()), float(v.max()))
    body = _polyline(xs, ys, color)
    if title:
        body += f'\n<text x="{_PAD}" y="24" font-size="16">{title}</text>'
    return _write(path, _document(body))


def svg_similarity_view(query, match_values, connectors, path, *, title: str = "") -> Path:
    """Fig. 2 Results Pane: both series plus dotted warped connectors.

    *connectors* are ``(i, j)`` warping-path pairs (query index, match
    index), exactly as carried by ``similarity_view_payload``.
    """
    q = as_sequence(query, name="query")
    m = as_sequence(match_values, name="match_values")
    lo = float(min(q.min(), m.min()))
    hi = float(max(q.max(), m.max()))
    qx, qy = _xy(q, lo, hi)
    mx, my = _xy(m, lo, hi)
    lines = [_polyline(qx, qy, "#1f77b4"), _polyline(mx, my, "#ff7f0e")]
    for i, j in connectors:
        if not (0 <= i < q.shape[0] and 0 <= j < m.shape[0]):
            raise ValidationError("connector indices outside the series")
        lines.append(
            f'<line x1="{qx[i]:.2f}" y1="{qy[i]:.2f}" x2="{mx[j]:.2f}" '
            f'y2="{my[j]:.2f}" stroke="#999" stroke-width="1" '
            f'stroke-dasharray="3 3"/>'
        )
    if title:
        lines.append(f'<text x="{_PAD}" y="24" font-size="16">{title}</text>')
    return _write(path, _document("\n".join(lines)))


def svg_radial_chart(values, path, *, color: str = "#1f77b4", title: str = "") -> Path:
    """Fig. 3a: the series wrapped around a circle (compact comparison)."""
    v = as_sequence(values, name="values")
    lo, hi = float(v.min()), float(v.max())
    size = min(_W, _H)
    cx, cy = _W / 2.0, _H / 2.0
    r_max = size / 2.0 - _PAD
    n = v.shape[0]
    pts = []
    for k, x in enumerate(v):
        angle = 0.0 if n == 1 else 2.0 * math.pi * k / (n - 1)
        if hi - lo <= 0:
            radius = r_max / 2.0
        else:
            radius = r_max * (0.2 + 0.8 * (x - lo) / (hi - lo))
        pts.append((cx + radius * math.cos(angle), cy - radius * math.sin(angle)))
    body = [
        f'<circle cx="{cx}" cy="{cy}" r="{r_max}" fill="none" stroke="#ddd"/>',
        _polyline([p[0] for p in pts], [p[1] for p in pts], color),
    ]
    if title:
        body.append(f'<text x="{_PAD}" y="24" font-size="16">{title}</text>')
    return _write(path, _document("\n".join(body)))


def svg_connected_scatter(points, path, *, color: str = "#2ca02c", title: str = "") -> Path:
    """Fig. 3b: matched values of the pair against each other.

    *points* are ``(query_value, match_value)`` pairs in path order; the
    grey diagonal is the equal-values reference line.
    """
    if not points:
        raise ValidationError("points must be non-empty")
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError("points must be (n, 2)")
    lo = float(arr.min())
    hi = float(arr.max())
    span = hi - lo if hi > lo else 1.0
    size = min(_W, _H)

    def to_px(v):
        return _PAD + (v - lo) / span * (size - 2 * _PAD)

    xs = [to_px(x) for x, _ in arr]
    ys = [size - to_px(y) for _, y in arr]
    body = [
        f'<line x1="{_PAD}" y1="{size - _PAD}" x2="{size - _PAD}" y2="{_PAD}" '
        f'stroke="#ccc" stroke-width="1"/>',
        _polyline(xs, ys, color, width=1.5),
    ]
    body.extend(
        f'<circle cx="{x:.2f}" cy="{y:.2f}" r="3" fill="{color}"/>'
        for x, y in zip(xs, ys)
    )
    if title:
        body.append(f'<text x="{_PAD}" y="24" font-size="16">{title}</text>')
    return _write(path, _document("\n".join(body), width=size, height=size))


def svg_seasonal_view(values, segments, path, *, title: str = "") -> Path:
    """Fig. 4: the series with recurring segments shaded alternately.

    *segments* are ``(start, stop)`` pairs; consecutive occurrences get
    the demo's alternating blue/green shading.
    """
    v = as_sequence(values, name="values")
    xs, ys = _xy(v, float(v.min()), float(v.max()))
    shades = ("#aec7e8", "#98df8a")
    body = []
    for k, (start, stop) in enumerate(segments):
        if not (0 <= start < stop <= v.shape[0]):
            raise ValidationError(f"segment ({start}, {stop}) outside the series")
        x0 = xs[start]
        x1 = xs[stop - 1]
        body.append(
            f'<rect x="{x0:.2f}" y="{_PAD}" width="{max(x1 - x0, 1.0):.2f}" '
            f'height="{_H - 2 * _PAD}" fill="{shades[k % 2]}" opacity="0.5"/>'
        )
    body.append(_polyline(xs, ys, "#1f77b4"))
    if title:
        body.append(f'<text x="{_PAD}" y="24" font-size="16">{title}</text>')
    return _write(path, _document("\n".join(body)))
