"""Payload builders for the ONEX visual panes (§3.4, Figs. 2–4).

Each function returns a plain dict of JSON-serialisable values — exactly
what the demo's d3 front end consumes from the server.  Keeping payloads
as data (rather than rendered images) lets the same builders feed the
HTTP API, the ASCII renderers, and the SVG writers, and makes the panes'
contracts testable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.query import Match
from repro.core.seasonal import SeasonalPattern
from repro.data.timeseries import TimeSeries
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "connected_scatter_payload",
    "overview_payload",
    "query_preview_payload",
    "radial_chart_payload",
    "seasonal_view_payload",
    "similarity_view_payload",
]


def overview_payload(groups: list[dict]) -> dict:
    """Overview Pane: representative thumbnails shaded by cardinality.

    *groups* is the output of :meth:`repro.core.engine.OnexEngine.overview`.
    Adds the colour *intensity* channel (cardinality scaled to [0, 1])
    the pane uses.
    """
    if not groups:
        return {"view": "overview", "groups": []}
    top = max(entry["cardinality"] for entry in groups)
    return {
        "view": "overview",
        "groups": [
            {
                **entry,
                "intensity": entry["cardinality"] / top,
            }
            for entry in groups
        ],
    }


def query_preview_payload(series: TimeSeries, start: int, length: int) -> dict:
    """Query Preview Pane: full series with the brushed window highlighted.

    Brushing the preview (Fig. 2 left) re-queries with the selected
    subsequence; the payload carries both the context line and the brush.
    """
    series.subsequence(start, length)  # validates the brush window
    return {
        "view": "query-preview",
        "series": series.name,
        "values": series.values.tolist(),
        "brush": {"start": start, "length": length},
        "selection": series.values[start : start + length].tolist(),
        "metadata": dict(series.metadata),
    }


def _view_values(values, *, name: str) -> np.ndarray:
    """Like :func:`as_sequence` but also admits 2-D multichannel values."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        return as_sequence(arr, name=name)
    if arr.ndim != 2 or arr.size == 0:
        raise ValidationError(
            f"{name} must be a non-empty 1-D or (length, channels) array, "
            f"got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def similarity_view_payload(query, match_values, match: Match) -> dict:
    """Results Pane "multiple lines" chart with warped-point connectors.

    The dotted connectors of Fig. 2 are the warping path: index pairs
    ``(i, j)`` saying query point ``i`` is matched to candidate point
    ``j`` (multiple matchings included, unlike pointwise distance views).
    Multivariate values pass through as ``(length, channels)`` row lists;
    the path indexes time steps, so the connector check is on axis 0.
    """
    q = _view_values(query, name="query")
    m = _view_values(match_values, name="match_values")
    for i, j in match.path:
        if not (0 <= i < q.shape[0] and 0 <= j < m.shape[0]):
            raise ValidationError("warping path does not fit the given values")
    return {
        "view": "similarity",
        "query": q.tolist(),
        "match": m.tolist(),
        "match_series": match.series_name,
        "match_start": match.start,
        "distance": match.distance,
        "connectors": [list(pair) for pair in match.path],
    }


def radial_chart_payload(values, *, label: str = "") -> dict:
    """Radial Chart (Fig. 3a): the series wrapped around a circle.

    Point ``k`` of ``n`` sits at angle ``2*pi*k/(n-1)`` with radius equal
    to the min–max scaled value (kept off zero so the shape stays
    readable, matching the demo's compact radial display).
    """
    v = as_sequence(values, name="values")
    lo, hi = float(v.min()), float(v.max())
    spread = hi - lo
    if spread <= 0:
        radii = np.full(v.shape[0], 0.5)
    else:
        radii = 0.2 + 0.8 * (v - lo) / spread
    n = v.shape[0]
    angles = [0.0] if n == 1 else [2.0 * math.pi * k / (n - 1) for k in range(n)]
    return {
        "view": "radial",
        "label": label,
        "points": [
            {"angle": a, "radius": float(r), "value": float(x)}
            for a, r, x in zip(angles, radii, v)
        ],
    }


def connected_scatter_payload(query, match_values, match: Match) -> dict:
    """Connected Scatter Plot (Fig. 3b): matched values against each other.

    Each warping-path cell contributes the point
    ``(query[i], match[j])``; consecutive points are connected to show
    ordering.  Points on the 45-degree diagonal have identical values in
    both series — the demo's closeness diagnostic, summarised here as the
    mean absolute deviation from the diagonal.
    """
    q = as_sequence(query, name="query")
    m = as_sequence(match_values, name="match_values")
    points = [[float(q[i]), float(m[j])] for i, j in match.path]
    deviation = float(np.mean([abs(x - y) for x, y in points]))
    return {
        "view": "connected-scatter",
        "points": points,
        "diagonal_deviation": deviation,
    }


def seasonal_view_payload(series: TimeSeries, patterns: list[SeasonalPattern]) -> dict:
    """Seasonal View (Fig. 4): recurring segments with alternating colours.

    Each pattern gets its occurrence segments tagged with alternating
    colour slots (the demo's blue/green striping of consecutive
    instances).
    """
    return {
        "view": "seasonal",
        "series": series.name,
        "values": series.values.tolist(),
        "patterns": [
            {
                "length": p.length,
                "max_pairwise_dtw": p.max_pairwise_dtw,
                "centroid": p.centroid.tolist(),
                "segments": [
                    {
                        "start": start,
                        "stop": stop,
                        "color_slot": k % 2,
                    }
                    for k, (start, stop) in enumerate(p.segments())
                ],
            }
            for p in patterns
        ],
    }
