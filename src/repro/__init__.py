"""ONEX reproduction: interactive time series analytics.

Reproduction of Neamtu et al., *Interactive Time Series Analytics Powered
by ONEX* (SIGMOD 2017 demo).  The package marries two distances: cheap
Euclidean grouping offline (the compact "ONEX base") and robust DTW
exploration online, with a proven transfer inequality bridging the two.

Quickstart::

    from repro import OnexEngine, build_matters_collection

    engine = OnexEngine()
    engine.load_dataset(build_matters_collection())
    query = engine.query_from_series("MATTERS-sim", "MA/GrowthRate")
    match = engine.best_match("MATTERS-sim", query)
    print(match.series_name, match.distance)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.analytics import ClusteringResult, KnnClassifier, kmedoids
from repro.baselines import (
    BruteForceSearcher,
    EmbeddingSearcher,
    PaaIndex,
    SpringMatcher,
    UcrSuiteSearcher,
)
from repro.core import (
    BaseStats,
    BuildConfig,
    Match,
    OnexBase,
    OnexEngine,
    QueryConfig,
    QueryProcessor,
    QueryStats,
    SeasonalPattern,
    SensitivityProfile,
    SimilarityGroup,
    ThresholdRecommendation,
    find_seasonal_patterns,
    recommend_thresholds,
    similarity_profile,
)
from repro.data import (
    SubsequenceRef,
    TimeSeries,
    TimeSeriesDataset,
    build_electricity_collection,
    build_matters_collection,
    load_ucr_file,
    save_ucr_file,
)
from repro.exceptions import (
    DatasetError,
    InvariantError,
    NotBuiltError,
    OnexError,
    ProtocolError,
    ValidationError,
)
from repro.stream import (
    MonitorRegistry,
    OnlineSpringMatcher,
    PatternMonitor,
    StreamEvent,
    StreamIngestor,
)

__version__ = "1.0.0"

__all__ = [
    "BaseStats",
    "BruteForceSearcher",
    "BuildConfig",
    "ClusteringResult",
    "EmbeddingSearcher",
    "KnnClassifier",
    "PaaIndex",
    "SpringMatcher",
    "UcrSuiteSearcher",
    "DatasetError",
    "InvariantError",
    "Match",
    "MonitorRegistry",
    "NotBuiltError",
    "OnexBase",
    "OnexEngine",
    "OnexError",
    "OnlineSpringMatcher",
    "PatternMonitor",
    "ProtocolError",
    "QueryConfig",
    "QueryProcessor",
    "QueryStats",
    "SeasonalPattern",
    "SensitivityProfile",
    "SimilarityGroup",
    "StreamEvent",
    "StreamIngestor",
    "SubsequenceRef",
    "ThresholdRecommendation",
    "TimeSeries",
    "TimeSeriesDataset",
    "ValidationError",
    "build_electricity_collection",
    "build_matters_collection",
    "find_seasonal_patterns",
    "load_ucr_file",
    "kmedoids",
    "recommend_thresholds",
    "save_ucr_file",
    "similarity_profile",
    "__version__",
]
