"""Vectorised SPRING: the live monitors' exact stream matcher.

Same semantics as the reference implementation in
:mod:`repro.baselines.spring` — star-padded subsequence DTW with start
tracking, deferred reporting, and overlap resets — but the per-sample
column update runs as a handful of NumPy kernels over the pattern axis
instead of a Python loop, which is what makes standing queries affordable
for realistic pattern lengths.

The trick: the SPRING column recurrence

    d[i] = c_i + min(d[i-1], prev[i], prev[i-1])        (c_i = |v - q_i|)

carries a serial dependency through ``d[i-1]``, but unrolling it shows
``d[i] = C_i + min_{j <= i} (b_j - C_{j-1})`` where ``C`` is the prefix
sum of the ground costs and ``b_j`` is the best way to *enter* the column
at pattern index ``j`` (``b_0 = 0`` — the star start — else
``min(prev[j], prev[j-1])``).  That inner minimum is a prefix minimum —
``np.minimum.accumulate`` — and the argmin (which decides the recorded
match-start positions) falls out of the positions where the running
minimum strictly improves, reproducing the scalar loop's tie-breaking
exactly: earlier entries win ties, and ``prev[j]`` beats ``prev[j-1]``.

Summed costs may differ from the scalar reference by floating-point
round-off (the unrolled form reassociates the additions).  Consequence:
on an *exact tie* between two candidate boundaries, an ulp of difference
can make the two implementations report different — equally good, both
within epsilon — start/end positions for the same underlying match.  On
value grids where float addition is exact (and in particular in integer
or fixed-point streams) the equivalence is bit-exact; the property tests
assert exactly that, and the continuous-data tests compare distances
with an ulp-scale tolerance.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.spring import SpringMatch
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["OnlineSpringMatcher"]


class OnlineSpringMatcher:
    """Drop-in, vectorised twin of :class:`repro.baselines.spring.SpringMatcher`.

    Feed samples with :meth:`append` or chunks with :meth:`extend`; both
    return the :class:`~repro.baselines.spring.SpringMatch` records that
    became safe to report.  Call :meth:`finish` at end of stream to flush
    the last pending candidate.
    """

    def __init__(self, pattern, epsilon: float) -> None:
        self._pattern = as_sequence(pattern, name="pattern")
        if self._pattern.shape[0] < 2:
            raise ValidationError("pattern must have at least 2 points")
        if not (epsilon > 0 and math.isfinite(epsilon)):
            raise ValidationError(
                f"epsilon must be positive and finite, got {epsilon}"
            )
        self._epsilon = float(epsilon)
        m = self._pattern.shape[0]
        self._d_prev = np.full(m, math.inf)
        self._s_prev = np.zeros(m, dtype=np.int64)
        self._arange = np.arange(m)
        self._t = -1
        self._candidate: tuple[float, int, int] | None = None

    @property
    def pattern_length(self) -> int:
        return self._pattern.shape[0]

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def samples_seen(self) -> int:
        return self._t + 1

    def append(self, value: float) -> list[SpringMatch]:
        """Consume one stream sample; return matches now safe to report."""
        if not math.isfinite(value):
            raise ValidationError(f"stream value must be finite, got {value!r}")
        self._t += 1
        t = self._t
        q = self._pattern
        m = q.shape[0]
        d_prev, s_prev = self._d_prev, self._s_prev

        costs = np.abs(value - q)
        cum = np.cumsum(costs)
        # Best entry into each pattern index: the star start at index 0,
        # else the cheaper of the vertical/diagonal predecessors (ties to
        # the vertical prev[j], as in the scalar loop's check order).
        enter = np.empty(m)
        enter[0] = 0.0
        enter[1:] = np.minimum(d_prev[1:], d_prev[:-1]) - cum[:-1]
        enter_start = np.empty(m, dtype=np.int64)
        enter_start[0] = t
        enter_start[1:] = np.where(d_prev[:-1] < d_prev[1:], s_prev[:-1], s_prev[1:])
        running = np.minimum.accumulate(enter)
        d_cur = cum + running
        improved = np.empty(m, dtype=bool)
        improved[0] = True
        improved[1:] = enter[1:] < running[:-1]
        best_entry = np.maximum.accumulate(np.where(improved, self._arange, 0))
        s_cur = enter_start[best_entry]

        reports: list[SpringMatch] = []
        if self._candidate is not None:
            # Safe to report once every in-flight path either cannot beat
            # the candidate or starts after the candidate ends.
            dist, start, end = self._candidate
            if bool(np.all((d_cur >= dist) | (s_cur > end))):
                reports.append(SpringMatch(start=start, end=end, distance=dist))
                self._candidate = None
                # Reset paths overlapping the reported range so a later
                # occurrence is matched afresh (the paper's reset step).
                d_cur[s_cur <= end] = math.inf

        final = d_cur[m - 1]
        if final <= self._epsilon:
            if self._candidate is None or final < self._candidate[0]:
                self._candidate = (float(final), int(s_cur[m - 1]), t)

        self._d_prev, self._s_prev = d_cur, s_cur
        return reports

    def extend(self, values) -> list[SpringMatch]:
        """Consume many samples; return all matches reported along the way."""
        out: list[SpringMatch] = []
        for value in np.asarray(values, dtype=np.float64):
            out.extend(self.append(float(value)))
        return out

    def finish(self) -> list[SpringMatch]:
        """Flush the pending candidate at end of stream."""
        if self._candidate is None:
            return []
        dist, start, end = self._candidate
        self._candidate = None
        return [SpringMatch(start=start, end=end, distance=dist)]
