"""Typed events emitted by the live pattern monitors.

Events are totally ordered by ``seq`` — a registry-wide monotonic counter
assigned at emission — so clients can poll incrementally with
``poll(since=last_seen_seq)`` without re-reading events.  The registry's
buffer is bounded (oldest evicted first), so a client that falls more
than the buffer size behind can lose events; the registry's ``dropped``
counter (surfaced by the ``poll_events`` operation) reports when that
happened.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamEvent"]

#: Exact SPRING subsequence match (unconstrained warping start/end).
KIND_MATCH = "match"
#: Window-aligned match surfaced by the group-level prefilter.
KIND_WINDOW = "window"


@dataclass(frozen=True)
class StreamEvent:
    """One standing-query hit on a live series.

    ``kind`` is ``"match"`` for an exact SPRING subsequence match (the
    stream positions ``start``..``end`` inclusive warp onto the pattern
    within the monitor's epsilon) or ``"window"`` for a window-aligned
    match found by the ONEX group-level prefilter (``end - start + 1``
    equals the pattern length).  ``distance`` is the summed L1 warping
    cost in the base's value space — the unit epsilon is expressed in.
    """

    seq: int
    monitor: str
    series: str
    kind: str
    start: int
    end: int
    distance: float

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def as_dict(self) -> dict:
        """JSON-ready payload (the protocol's ``poll_events`` result rows)."""
        return {
            "seq": self.seq,
            "monitor": self.monitor,
            "series": self.series,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "distance": self.distance,
        }
