"""Standing pattern queries over live series.

A :class:`PatternMonitor` watches appended data for one pattern and emits
two complementary event kinds (:class:`~repro.stream.events.StreamEvent`):

``"match"`` — exact SPRING subsequence matches.  Every appended point
    feeds a per-series :class:`~repro.stream.spring_online.OnlineSpringMatcher`,
    so matches may start and end anywhere (unconstrained warping), with
    the deferred-report rule guaranteeing each reported range is optimal
    among overlapping candidates.  These events are exact against a
    brute-force SPRING replay of the same stream.

``"window"`` — the ONEX group-level prefilter.  The ingestor assigns each
    newly completed pattern-length window to a similarity group anyway;
    the monitor prunes in two representative-layer stages.  First the
    bucket's persisted summaries
    (:class:`repro.core.base.RepresentativeSummary`, shared with the
    query processor's prefilter; monitor DTW is unconstrained, so the
    applicable bounds are the endpoint LB_Kim and per-centroid min/max
    band — the fixed-radius Keogh envelopes only engage banded queries)
    give a *cheap* lower bound on ``DTW(pattern, rep)`` with no DTW at
    all; a window whose group satisfies ``cheap - (2m-1) * cheb_radius >
    epsilon`` is discarded without the representative ever being
    DTW-evaluated.  Surviving groups get their exact representative DTW
    computed once, lazily, and cached; the tighter transfer bound
    ``DTW(p, rep) - (2m-1) * cheb_radius`` prunes again before any
    window pays an exact DTW verification.  Representatives never move
    (fixed-representative ingestion), so both caches stay valid; radii
    only grow, which keeps the bounds conservative.

A :class:`MonitorRegistry` owns the monitors of one base, assigns the
registry-wide event sequence numbers, and buffers events for polling.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

import numpy as np

from repro.core.base import OnexBase, WindowAssignment
from repro.core.deadline import Deadline
from repro.distances.dtw import dtw_distance
from repro.distances.metrics import as_sequence
from repro.exceptions import DatasetError, ValidationError
from repro.obs.metrics import REGISTRY
from repro.testing import faults
from repro.stream.events import KIND_MATCH, KIND_WINDOW, StreamEvent
from repro.stream.spring_online import OnlineSpringMatcher

__all__ = ["MonitorRegistry", "PatternMonitor"]

_CHECKED_TOTAL = REGISTRY.counter(
    "onex_stream_windows_checked_total",
    "Windows inspected by standing monitors",
)
_PRUNED_TOTAL = REGISTRY.counter(
    "onex_stream_windows_pruned_total",
    "Windows pruned by monitor representative bounds",
)
_MONITOR_DTW_TOTAL = REGISTRY.counter(
    "onex_stream_rep_dtw_total",
    "Representative DTW evaluations made by standing monitors",
)


class PatternMonitor:
    """One standing pattern query (see module docstring for semantics).

    *pattern* is already in the base's value space (the engine normalises
    caller-supplied raw values); *epsilon* is a summed L1 warping cost in
    that space.  *series* restricts the monitor to one series name; None
    watches every live series.
    """

    def __init__(
        self,
        name: str,
        base: OnexBase,
        pattern,
        epsilon: float,
        series: str | None = None,
    ) -> None:
        self.name = name
        self._base = base
        if base.channels > 1:
            # SPRING matching and the representative transfer bounds are
            # defined over scalar point streams; a multivariate standing
            # query has no exact online semantics here yet.
            raise ValidationError(
                f"standing monitors support univariate bases only; this "
                f"base has {base.channels} channels"
            )
        self._pattern = as_sequence(pattern, name="pattern")
        if self._pattern.shape[0] < 2:
            raise ValidationError("pattern must have at least 2 points")
        if not (epsilon > 0 and math.isfinite(epsilon)):
            # Checked here (not just in the lazily created matcher): a
            # monitor with a bad epsilon would otherwise poison every
            # later append to the watched series.
            raise ValidationError(
                f"epsilon must be positive and finite, got {epsilon}"
            )
        self._epsilon = float(epsilon)
        self._series = series
        self._matchers: dict[str, tuple[int, OnlineSpringMatcher]] = {}
        # Representative-layer caches over the pattern-length bucket,
        # extended as ingestion spawns groups: cheap summary bounds
        # (batched, no DTW) for every group, exact DTW(pattern, rep)
        # computed one group at a time only when the cheap bound cannot
        # prune (NaN = not yet needed).
        self._rep_lb = np.empty(0)
        self._rep_dtw = np.empty(0)
        self.windows_checked = 0
        self.windows_pruned = 0
        self.rep_dtw_calls = 0

    @property
    def pattern_length(self) -> int:
        return self._pattern.shape[0]

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def watches(self, series_name: str) -> bool:
        """Whether this monitor applies to *series_name*."""
        return self._series is None or self._series == series_name

    def on_points(
        self, series_name: str, origin: int, values: np.ndarray
    ) -> list[tuple[str, int, int, float]]:
        """Feed appended points; return (series, start, end, distance) hits.

        *origin* is the absolute series position of ``values[0]``; the
        matcher for a series is created the first time data arrives, so
        reported positions are absolute from then on.
        """
        state = self._matchers.get(series_name)
        if state is None:
            state = (origin, OnlineSpringMatcher(self._pattern, self._epsilon))
            self._matchers[series_name] = state
        offset, matcher = state
        expected = offset + matcher.samples_seen
        if origin != expected:
            raise DatasetError(
                f"monitor {self.name!r} expected {series_name!r} to resume at "
                f"position {expected}, got {origin}"
            )
        return [
            (series_name, offset + m.start, offset + m.end, m.distance)
            for m in matcher.extend(values)
        ]

    def on_windows(
        self,
        assignments: Iterable[WindowAssignment],
        deadline: Deadline | None = None,
    ) -> list[tuple[str, int, int, float]]:
        """Group-prefilter the newly indexed windows; return verified hits.

        A *deadline* is checked per window and always raises: a silently
        skipped window would be a lost match event, so there is no
        partial degrade on the monitor path.
        """
        m = self.pattern_length
        out: list[tuple[str, int, int, float]] = []
        try:
            bucket = self._base.bucket(m)
        except DatasetError:
            return out  # pattern length not indexed: no window-aligned view
        max_path = 2 * m - 1
        dataset = self._base.dataset
        before = (self.windows_checked, self.windows_pruned, self.rep_dtw_calls)
        for scanned, assignment in enumerate(assignments):
            faults.fire("stream.step")
            if deadline is not None:
                deadline.check(
                    "stream window scan",
                    {"windows_scanned": scanned, "hits": len(out)},
                )
            ref = assignment.ref
            if ref.length != m:
                continue
            series_name = dataset[ref.series_index].name
            if not self.watches(series_name):
                continue
            self.windows_checked += 1
            g = assignment.group_index
            if g >= self._rep_lb.shape[0]:
                self._extend_rep_cache(bucket)
            cheb = float(bucket.cheb_radii[g])
            if self._rep_lb[g] - max_path * cheb > self._epsilon:
                # The cheap summary bound already rules the whole group
                # out — the representative never gets a DTW call.
                self.windows_pruned += 1
                continue
            raw_rep = float(self._rep_dtw[g])
            if math.isnan(raw_rep):
                raw_rep = float(dtw_distance(self._pattern, bucket.centroids[g]))
                self._rep_dtw[g] = raw_rep
                self.rep_dtw_calls += 1
            if raw_rep - max_path * cheb > self._epsilon:
                self.windows_pruned += 1
                continue
            if cheb == 0.0:
                # Every member of a zero-radius group equals the
                # representative, so the cached representative DTW *is*
                # the exact distance (fresh singletons hit this path).
                raw = raw_rep
            else:
                raw = float(dtw_distance(self._pattern, dataset.values(ref)))
            if raw <= self._epsilon:
                out.append((series_name, ref.start, ref.stop - 1, raw))
        _CHECKED_TOTAL.inc(self.windows_checked - before[0])
        _PRUNED_TOTAL.inc(self.windows_pruned - before[1])
        _MONITOR_DTW_TOTAL.inc(self.rep_dtw_calls - before[2])
        return out

    def flush(self) -> list[tuple[str, int, int, float]]:
        """Flush every matcher's pending candidate (end-of-stream report).

        Mirrors the reference matcher's ``finish``: intended when a
        finite stream ends; after a mid-stream flush a later, overlapping
        match can be reported again.
        """
        out: list[tuple[str, int, int, float]] = []
        for series_name, (offset, matcher) in self._matchers.items():
            out.extend(
                (series_name, offset + m.start, offset + m.end, m.distance)
                for m in matcher.finish()
            )
        return out

    def _extend_rep_cache(self, bucket) -> None:
        """Extend the cheap-bound cache to newly spawned groups.

        The cheap bounds come from the bucket's persisted representative
        summaries in one batched evaluation (no DTW); the exact slots are
        seeded NaN and filled one group at a time when the cheap bound
        cannot prune.
        """
        known = self._rep_lb.shape[0]
        fresh = bucket.rep_summary.cheap_bounds(self._pattern, None, start=known)
        self._rep_lb = np.concatenate([self._rep_lb, fresh])
        self._rep_dtw = np.concatenate(
            [self._rep_dtw, np.full(fresh.shape[0], np.nan)]
        )

    def describe(self) -> dict:
        """Registration/introspection payload."""
        return {
            "monitor": self.name,
            "pattern_length": self.pattern_length,
            "epsilon": self._epsilon,
            "series": self._series,
            "windows_checked": self.windows_checked,
            "windows_pruned": self.windows_pruned,
            "rep_dtw_calls": self.rep_dtw_calls,
        }

    def snapshot(self) -> dict:
        """Checkpointable state: definition plus lifetime counters.

        The pattern is stored in the base's (normalised) value space, so
        a restore re-registers it verbatim without renormalising.  The
        per-series SPRING matcher state is deliberately *not* captured —
        see DESIGN.md §8 — so an in-flight cross-checkpoint match may be
        lost or re-reported after recovery.
        """
        return {
            "name": self.name,
            "pattern": [float(v) for v in self._pattern],
            "epsilon": self._epsilon,
            "series": self._series,
            "windows_checked": self.windows_checked,
            "windows_pruned": self.windows_pruned,
            "rep_dtw_calls": self.rep_dtw_calls,
        }


class MonitorRegistry:
    """All standing queries of one base, plus the shared event buffer.

    Events carry registry-wide monotonic sequence numbers; the buffer is
    bounded (*max_events*, oldest dropped first) and polled incrementally
    with :meth:`poll`.
    """

    def __init__(self, base: OnexBase, max_events: int = 10_000) -> None:
        self._base = base
        self._monitors: dict[str, PatternMonitor] = {}
        self._events: deque[StreamEvent] = deque(maxlen=max_events)
        self._seq = 0
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._monitors)

    @property
    def monitor_names(self) -> list[str]:
        return sorted(self._monitors)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event emitted so far."""
        return self._seq

    def register(
        self,
        pattern,
        epsilon: float,
        *,
        series: str | None = None,
        name: str | None = None,
    ) -> PatternMonitor:
        """Create a standing query; returns the (named) monitor."""
        if name is None:
            name = f"monitor-{len(self._monitors) + 1}"
            while name in self._monitors:
                name = f"{name}+"
        if name in self._monitors:
            raise DatasetError(f"duplicate monitor name: {name!r}")
        monitor = PatternMonitor(name, self._base, pattern, epsilon, series)
        self._monitors[name] = monitor
        return monitor

    def unregister(self, name: str) -> None:
        try:
            del self._monitors[name]
        except KeyError:
            raise DatasetError(
                f"no monitor named {name!r} (registered: {self.monitor_names})"
            ) from None

    def monitor(self, name: str) -> PatternMonitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise DatasetError(
                f"no monitor named {name!r} (registered: {self.monitor_names})"
            ) from None

    def on_points(
        self,
        series_name: str,
        origin: int,
        values: np.ndarray,
        assignments: list[WindowAssignment],
        deadline: Deadline | None = None,
    ) -> list[StreamEvent]:
        """Notify every applicable monitor of one append; emit its events.

        SPRING matches are emitted first (they were *reported* while the
        points arrived), then the prefiltered window matches of the same
        append, each batch in stream order.
        """
        emitted: list[StreamEvent] = []
        for monitor in self._monitors.values():
            if not monitor.watches(series_name):
                continue
            for series, start, end, dist in monitor.on_points(
                series_name, origin, values
            ):
                emitted.append(self._emit(monitor, series, KIND_MATCH, start, end, dist))
            for series, start, end, dist in monitor.on_windows(
                assignments, deadline
            ):
                emitted.append(self._emit(monitor, series, KIND_WINDOW, start, end, dist))
        return emitted

    def flush(self) -> list[StreamEvent]:
        """Flush every monitor's pending SPRING candidates into events."""
        emitted: list[StreamEvent] = []
        for monitor in self._monitors.values():
            for series, start, end, dist in monitor.flush():
                emitted.append(
                    self._emit(monitor, series, KIND_MATCH, start, end, dist)
                )
        return emitted

    def _emit(
        self, monitor: PatternMonitor, series: str, kind: str, start: int, end: int, dist: float
    ) -> StreamEvent:
        self._seq += 1
        event = StreamEvent(
            seq=self._seq,
            monitor=monitor.name,
            series=series,
            kind=kind,
            start=start,
            end=end,
            distance=dist,
        )
        if len(self._events) == self._events.maxlen:
            self._dropped += 1
        self._events.append(event)
        return event

    def poll(self, since: int = 0, limit: int | None = None) -> list[StreamEvent]:
        """Events with ``seq > since``, oldest first, up to *limit*."""
        out = [e for e in self._events if e.seq > since]
        if limit is not None:
            out = out[: max(0, int(limit))]
        return out

    def snapshot(self) -> dict:
        """Checkpointable state: event seq plus every monitor definition.

        The event *buffer* is transient by contract (bounded, droppable)
        and is not captured; only the sequence counter is, so post-crash
        events continue the pre-crash numbering monotonically.
        """
        return {
            "event_seq": self._seq,
            "monitors": [
                self._monitors[name].snapshot()
                for name in sorted(self._monitors)
            ],
        }

    def restore(self, monitors: Iterable[dict], event_seq: int) -> None:
        """Rebuild monitors from :meth:`snapshot` output (recovery only).

        Must be called on a fresh registry; seeds the event sequence so
        the first post-recovery event continues the numbering.
        """
        if self._monitors or self._seq:
            raise DatasetError("restore() requires a fresh MonitorRegistry")
        for snap in monitors:
            monitor = self.register(
                np.asarray(snap["pattern"], dtype=np.float64),
                float(snap["epsilon"]),
                series=snap.get("series"),
                name=snap["name"],
            )
            monitor.windows_checked = int(snap.get("windows_checked", 0))
            monitor.windows_pruned = int(snap.get("windows_pruned", 0))
            monitor.rep_dtw_calls = int(snap.get("rep_dtw_calls", 0))
        self._seq = int(event_seq)

    @property
    def dropped(self) -> int:
        """Events evicted from the bounded buffer before being polled."""
        return self._dropped
