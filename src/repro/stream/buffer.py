"""Grow-only value buffers backing live series.

A :class:`SeriesBuffer` keeps one streaming series' raw and normalised
observations in amortised-doubling arrays, so per-point appends cost O(1)
instead of reallocating the whole history, and hands out *stable
snapshots*: read-only views of the first ``n`` entries.  A snapshot stays
valid forever because appends only ever write past the snapshotted range
(growth reallocates into a fresh array, leaving old views untouched),
which is what lets the ingestor publish a new :class:`~repro.data.timeseries.TimeSeries`
per append without copying the history.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import _grown
from repro.distances.normalize import minmax_normalize
from repro.exceptions import ValidationError

__all__ = ["SeriesBuffer"]

#: Initial capacity of a fresh buffer.
_MIN_CAPACITY = 64


class _GrowArray:
    """Float64 array growable along axis 0 by amortised doubling.

    Rows are scalars for univariate series and ``(channels,)`` vectors for
    multivariate ones; growth preserves the trailing shape.
    """

    __slots__ = ("_data", "_count")

    def __init__(
        self, initial: np.ndarray | None = None, channels: int = 1
    ) -> None:
        tail = () if channels == 1 else (channels,)
        if initial is None:
            self._data = np.empty((_MIN_CAPACITY,) + tail, dtype=np.float64)
            self._count = 0
        else:
            self._count = initial.shape[0]
            self._data = np.empty(
                (max(_MIN_CAPACITY, 2 * self._count),) + initial.shape[1:],
                dtype=np.float64,
            )
            self._data[: self._count] = initial

    def __len__(self) -> int:
        return self._count

    def extend(self, values: np.ndarray) -> None:
        needed = self._count + values.shape[0]
        if needed > self._data.shape[0]:
            self._data = _grown(
                self._data, self._count, minimum=_MIN_CAPACITY, needed=needed
            )
        self._data[self._count : needed] = values
        self._count = needed

    def snapshot(self) -> np.ndarray:
        """Read-only view of the first ``len(self)`` entries (stable)."""
        view = self._data[: self._count]
        view.flags.writeable = False
        return view


class SeriesBuffer:
    """Raw + normalised history of one live series.

    *bounds* are the base's build-time normalisation bounds (or None for
    an unnormalised base); normalisation is pointwise, so normalising each
    arriving chunk with the fixed bounds equals normalising the whole
    series at once — the append/rebuild equivalence the stream subsystem
    guarantees rests on that.
    """

    def __init__(
        self,
        name: str,
        bounds: tuple[float, float] | None,
        initial_raw: np.ndarray | None = None,
        initial_norm: np.ndarray | None = None,
        channels: int = 1,
    ) -> None:
        self.name = name
        self._bounds = bounds
        self._channels = channels if initial_raw is None else (
            1 if initial_raw.ndim == 1 else int(initial_raw.shape[1])
        )
        self._raw = _GrowArray(initial_raw, channels=self._channels)
        self._norm = (
            self._raw
            if bounds is None
            else _GrowArray(initial_norm, channels=self._channels)
        )

    @property
    def channels(self) -> int:
        return self._channels

    def __len__(self) -> int:
        return len(self._raw)

    def extend(self, values) -> np.ndarray:
        """Append a chunk; returns the normalised chunk just appended."""
        chunk = np.asarray(values, dtype=np.float64)
        if self._channels == 1:
            if chunk.ndim != 1 or chunk.size == 0:
                raise ValidationError(
                    f"appended values must be a non-empty 1-D sequence, got "
                    f"shape {chunk.shape}"
                )
        elif (
            chunk.ndim != 2
            or chunk.shape[0] == 0
            or chunk.shape[1] != self._channels
        ):
            raise ValidationError(
                f"appended values must be a non-empty (points, "
                f"{self._channels}) array for this {self._channels}-channel "
                f"series, got shape {chunk.shape}"
            )
        if not np.all(np.isfinite(chunk)):
            raise ValidationError("appended values contain NaN/inf")
        self._raw.extend(chunk)
        if self._bounds is None:
            return chunk
        lo, hi = self._bounds
        normalized = minmax_normalize(chunk, lo=lo, hi=hi)
        self._norm.extend(normalized)
        return normalized

    def raw_snapshot(self) -> np.ndarray:
        """Stable read-only view of the raw history."""
        return self._raw.snapshot()

    def norm_snapshot(self) -> np.ndarray:
        """Stable read-only view of the normalised history."""
        return self._norm.snapshot()
