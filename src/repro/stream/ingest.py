"""Continuous ingestion into a built ONEX base.

:class:`StreamIngestor` is the write path of the live subsystem: point
appends to named series arrive in arbitrary chunks, land in grow-only
buffers (:mod:`repro.stream.buffer`), and are published to the base's
datasets as stable snapshots; every window the new points complete is
then indexed in place through the base's batched fixed-representative
assignment (:meth:`repro.core.base.OnexBase.index_new_windows`), and the
:class:`~repro.stream.monitor.MonitorRegistry` is notified so standing
queries fire.

The subsystem's central invariant is **append/rebuild equivalence**: after
any sequence of appends, the base indexes exactly the windows a
from-scratch ``build()`` over the same data would enumerate, with
identical values (normalisation is pointwise with the build-time bounds),
so exact-strategy query answers are identical to a rebuild's.  Group
*shapes* may differ — fixed-representative assignment can only create
extra groups, never violate the radius invariant — which affects
performance, not results.  The property-test suite asserts both halves.
"""

from __future__ import annotations

from repro.core.base import OnexBase
from repro.core.deadline import Deadline
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError, ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.stream.buffer import SeriesBuffer
from repro.stream.events import StreamEvent
from repro.stream.monitor import MonitorRegistry

__all__ = ["StreamIngestor"]

_POINTS_TOTAL = REGISTRY.counter(
    "onex_stream_points_total", "Points appended through live ingestion"
)
_WINDOWS_TOTAL = REGISTRY.counter(
    "onex_stream_windows_indexed_total",
    "Windows indexed into the base by live ingestion",
)
_EVENTS_TOTAL = REGISTRY.counter(
    "onex_stream_events_total", "Monitor events emitted by live ingestion"
)


class StreamIngestor:
    """Accepts live point appends and keeps one base queryable throughout."""

    def __init__(self, base: OnexBase, registry: MonitorRegistry | None = None) -> None:
        base.stats  # raises NotBuiltError early when unbuilt
        self._base = base
        self.registry = registry if registry is not None else MonitorRegistry(base)
        self._buffers: dict[str, SeriesBuffer] = {}
        self.points_ingested = 0
        self.windows_indexed = 0

    @property
    def base(self) -> OnexBase:
        return self._base

    def series_names(self) -> list[str]:
        """Names of the series that have received live appends."""
        return sorted(self._buffers)

    def append_points(
        self, series_name: str, values, deadline: Deadline | None = None
    ) -> dict:
        """Append *values* to *series_name*, creating it on first contact.

        Raw values are normalised with the base's build-time bounds (the
        same contract as ``add_series``).  Newly completed windows are
        indexed immediately and standing monitors are notified; the
        summary reports the indexing outcome plus any events the append
        emitted.  A *deadline* bounds the monitor notification scan; the
        points themselves are already appended and indexed when it fires,
        so the raised error means lost *events*, not lost data.
        """
        if not isinstance(series_name, str) or not series_name:
            raise ValidationError("series name must be a non-empty string")
        buffer = self._buffers.get(series_name)
        raw_dataset = self._base.raw_dataset
        created_series = False
        if buffer is None:
            if series_name in raw_dataset:
                existing = raw_dataset[series_name]
                buffer = SeriesBuffer(
                    series_name,
                    self._base.normalization_bounds,
                    initial_raw=existing.values,
                    initial_norm=self._base.dataset[series_name].values,
                )
            else:
                buffer = SeriesBuffer(
                    series_name,
                    self._base.normalization_bounds,
                    channels=self._base.channels,
                )
                created_series = True
        previous_length = len(buffer)
        normalized_chunk = buffer.extend(values)
        # Register the buffer only once the chunk validated — a rejected
        # first append must not leave an orphan buffer shadowing the
        # (never created) series.
        self._buffers[series_name] = buffer
        self._publish(series_name, created_series)
        series_index = self._base.dataset.index_of(series_name)
        with span("stream.index", points=int(normalized_chunk.shape[0])):
            assignments = self._base.index_new_windows(
                series_index, previous_length
            )
        with span("stream.scan", windows=len(assignments)) as sp:
            events = self.registry.on_points(
                series_name,
                previous_length,
                normalized_chunk,
                assignments,
                deadline,
            )
            sp.add(events=len(events))
        self.points_ingested += normalized_chunk.shape[0]
        self.windows_indexed += len(assignments)
        _POINTS_TOTAL.inc(int(normalized_chunk.shape[0]))
        _WINDOWS_TOTAL.inc(len(assignments))
        _EVENTS_TOTAL.inc(len(events))
        created_groups = sum(a.created for a in assignments)
        return {
            "series": series_name,
            "points": int(normalized_chunk.shape[0]),
            "total_points": len(buffer),
            "windows": len(assignments),
            "joined_existing_groups": len(assignments) - created_groups,
            "new_groups": created_groups,
            "events": [e.as_dict() for e in events],
        }

    def counters(self) -> dict:
        """Checkpointable lifetime counters."""
        return {
            "points_ingested": self.points_ingested,
            "windows_indexed": self.windows_indexed,
        }

    def restore_counters(
        self, points_ingested: int = 0, windows_indexed: int = 0
    ) -> None:
        """Seed lifetime counters from a checkpoint (recovery only)."""
        self.points_ingested = int(points_ingested)
        self.windows_indexed = int(windows_indexed)

    def poll_events(self, since: int = 0, limit: int | None = None) -> list[StreamEvent]:
        """Monitor events with ``seq > since`` (see the registry)."""
        return self.registry.poll(since, limit)

    def flush_monitors(self) -> list[StreamEvent]:
        """Flush pending SPRING candidates when a finite stream ends."""
        return self.registry.flush()

    def _publish(self, series_name: str, created_series: bool) -> None:
        """Swap the series' latest snapshots into the base's datasets.

        Snapshots are read-only views of grow-only buffers, so publishing
        costs O(1) regardless of history length; existing
        ``SubsequenceRef`` handles keep resolving to identical values.
        """
        buffer = self._buffers[series_name]
        raw_dataset = self._base.raw_dataset
        norm_dataset = self._base.dataset
        metadata = (
            raw_dataset[series_name].metadata
            if not created_series
            else {"stream": True}
        )
        raw = TimeSeries._wrap(series_name, buffer.raw_snapshot(), metadata)
        norm = TimeSeries._wrap(series_name, buffer.norm_snapshot(), metadata)
        if created_series:
            raw_dataset.add(raw)
            if norm_dataset is not raw_dataset:
                norm_dataset.add(norm)
        else:
            raw_dataset.replace_series(raw)
            if norm_dataset is not raw_dataset:
                norm_dataset.replace_series(norm)
