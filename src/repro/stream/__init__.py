"""Streaming ingestion and live pattern monitoring for the ONEX base.

The demo's pitch is loading data "with a click"; this subsystem goes one
step further and keeps a built base live under continuous arrivals:

- :mod:`repro.stream.buffer` — grow-only per-series value buffers with
  stable read-only snapshots (O(1) publication per append).
- :mod:`repro.stream.ingest` — :class:`StreamIngestor`, the write path:
  point appends complete windows that are batch-assigned to similarity
  groups in place (append/rebuild result equivalence is the subsystem's
  core invariant, asserted by property tests).
- :mod:`repro.stream.spring_online` — a vectorised, exact SPRING matcher
  (Sakurai et al.) powering unconstrained subsequence match events.
- :mod:`repro.stream.monitor` — standing pattern queries: the ONEX
  group-level prefilter for window-aligned hits plus the exact SPRING
  stream matcher, merged into one ordered event feed.
- :mod:`repro.stream.events` — the typed, sequence-numbered events.

:class:`repro.core.engine.OnexEngine` exposes the subsystem per loaded
dataset (``append_points`` / ``register_monitor`` / ``poll_events``), and
the server/CLI layers wire those through to HTTP and the shell.
"""

from repro.stream.buffer import SeriesBuffer
from repro.stream.events import StreamEvent
from repro.stream.ingest import StreamIngestor
from repro.stream.monitor import MonitorRegistry, PatternMonitor
from repro.stream.spring_online import OnlineSpringMatcher

__all__ = [
    "MonitorRegistry",
    "OnlineSpringMatcher",
    "PatternMonitor",
    "SeriesBuffer",
    "StreamEvent",
    "StreamIngestor",
]
