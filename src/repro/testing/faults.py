"""Named failpoints for deterministic chaos testing.

Production code is compiled with ``fire("<point>")`` calls at the same
chunk boundaries the deadline layer checks (see DESIGN.md §6).  With
nothing armed a failpoint costs one falsy module-global test; chaos tests
arm actions against points by name:

``sleep``
    Block for ``seconds`` at the failpoint — how the tests make any
    chunk boundary deterministically "slow" so a deadline fires inside a
    chosen cascade stage.
``raise``
    Raise :class:`FaultInjectedError` (or a provided exception instance)
    at the failpoint.
``kill-worker``
    Hard-exit the *current process* via ``os._exit`` — but only when it
    is not the process that armed the fault, so a pool worker dies while
    the parent (and the test runner) survives to observe the recovery.
    Requires a fork-start process pool to inherit the armed registry.
``torn-write``
    Truncate the file the failpoint passes as ``path`` to half its size,
    then raise — simulating a crash mid-write with a partial artifact on
    disk.
``torn-tail``
    Truncate ``cut_bytes`` bytes off the *end* of the file the failpoint
    passes as ``path``, then raise — simulating power loss mid-append
    where only a prefix of the final record reached the platter.  Unlike
    ``torn-write`` the damage is surgical, so a recovery scan can be
    asserted to keep every earlier record.

Failpoints fire at most ``times`` times (default: unlimited) and are
scoped with the :func:`inject` context manager::

    with faults.inject("query.rep_chunk", "sleep", seconds=0.05):
        processor.k_best_matches(q, 3, deadline=Deadline.after(1.0))

Registered failpoint names (kept in sync with the call sites):

- ``query.rep_chunk`` — per chunk of the lazy representative cascade
  (exact and fast search loops, and each batch-planner round);
- ``query.refine_unit`` — per member-refinement unit;
- ``seasonal.pair_chunk`` — per condensed-pair DTW chunk of the
  pairwise-worst finder;
- ``seasonal.group`` — per candidate group of the seasonal miner;
- ``sensitivity.bucket`` — per length bucket of the similarity profile;
- ``build.shard`` — inside each per-length build shard (worker side);
- ``build.merge`` — per merged shard payload (parent side);
- ``persist.save`` — between writing the temp archive and renaming it
  into place (receives ``path``);
- ``persist.rename`` — after the rename, before the directory fsync that
  makes it durable (receives ``path``);
- ``stream.step`` — per window assignment in the monitor step loop;
- ``server.handle`` — around request dispatch in the HTTP handler;
- ``wal.append`` — before a WAL record's bytes are written (receives
  ``path`` and ``seq``);
- ``wal.written`` — after the record bytes are written and flushed but
  before the append is acknowledged (receives ``path`` and ``seq``; the
  natural target for ``torn-tail``);
- ``wal.fsync`` — immediately before the WAL file is fsynced (receives
  ``path``);
- ``checkpoint.manifest`` — after checkpoint artifacts are written,
  before the manifest rename commits them (receives ``path``);
- ``recovery.dataset`` — at the top of each dataset's recovery pass
  (receives ``dataset``); ``sleep`` stretches the not-ready window for
  the recovery x serving tests, ``raise`` degrades one dataset;
- ``worker.kill`` — in the pool worker's request loop, before the
  dispatched operation executes (receives ``op``); the natural target
  for ``kill-worker``, which the fork-inherited registry turns into a
  hard worker death while the supervisor survives;
- ``worker.hang`` — same site; a ``sleep`` longer than the worker's
  stall limit makes its heartbeat go quiet, so the supervisor's monitor
  SIGKILLs it — the hang-detection path end to end.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from repro.exceptions import OnexError

__all__ = ["FaultInjectedError", "arm", "disarm", "disarm_all", "fire", "inject"]


class FaultInjectedError(OnexError):
    """The error an armed ``raise`` failpoint throws."""


_ACTIONS = ("sleep", "raise", "kill-worker", "torn-write", "torn-tail")


class _Fault:
    __slots__ = (
        "action",
        "armed_pid",
        "cut_bytes",
        "error",
        "lock",
        "remaining",
        "seconds",
    )

    def __init__(
        self,
        action: str,
        seconds: float,
        times: int | None,
        error,
        cut_bytes: int,
    ) -> None:
        self.action = action
        self.seconds = seconds
        self.remaining = times
        self.error = error
        self.cut_bytes = cut_bytes
        self.armed_pid = os.getpid()
        self.lock = threading.Lock()

    def trigger(self, point: str, ctx: dict) -> None:
        with self.lock:
            if self.remaining is not None:
                if self.remaining <= 0:
                    return
                self.remaining -= 1
        if self.action == "sleep":
            time.sleep(self.seconds)
        elif self.action == "raise":
            raise (
                self.error
                if self.error is not None
                else FaultInjectedError(f"injected fault at {point!r}")
            )
        elif self.action == "kill-worker":
            # Only worker processes die; the arming process (the test
            # runner / pool parent) passes through unharmed, which is what
            # lets it observe and recover from the crash.
            if os.getpid() != self.armed_pid:
                os._exit(17)
        elif self.action == "torn-write":
            path = ctx.get("path")
            if path is not None:
                size = os.path.getsize(path)
                with open(path, "r+b") as fh:
                    fh.truncate(size // 2)
            raise FaultInjectedError(
                f"injected torn write at {point!r} ({path})"
            )
        elif self.action == "torn-tail":
            path = ctx.get("path")
            if path is not None:
                size = os.path.getsize(path)
                with open(path, "r+b") as fh:
                    fh.truncate(max(0, size - self.cut_bytes))
            raise FaultInjectedError(
                f"injected torn tail at {point!r} ({path}, -{self.cut_bytes}B)"
            )


#: point name -> armed fault.  Kept as a plain module global so the
#: hot-path guard in :func:`fire` is one truthiness test, and so a forked
#: pool worker inherits whatever the parent had armed at fork time.
_ARMED: dict[str, _Fault] = {}


def arm(
    point: str,
    action: str,
    *,
    seconds: float = 0.05,
    times: int | None = None,
    error: Exception | None = None,
    cut_bytes: int = 1,
) -> None:
    """Arm *action* at failpoint *point* (replacing any previous fault).

    *times* bounds how often the fault triggers (``None`` = every time);
    *seconds* parameterises ``sleep``; *error* overrides the exception a
    ``raise`` fault throws; *cut_bytes* is how much ``torn-tail`` shaves
    off the end of the failpoint's file.
    """
    if action not in _ACTIONS:
        raise ValueError(f"unknown fault action {action!r} (known: {_ACTIONS})")
    _ARMED[point] = _Fault(action, float(seconds), times, error, int(cut_bytes))


def disarm(point: str) -> None:
    """Remove the fault at *point* (a no-op when nothing is armed)."""
    _ARMED.pop(point, None)


def disarm_all() -> None:
    """Remove every armed fault."""
    _ARMED.clear()


def fire(point: str, **ctx) -> None:
    """Trigger the fault armed at *point*, if any.

    This is the call compiled into production chunk boundaries: with the
    registry empty it returns after a single falsy test.
    """
    if not _ARMED:
        return
    fault = _ARMED.get(point)
    if fault is not None:
        fault.trigger(point, ctx)


@contextmanager
def inject(
    point: str,
    action: str,
    *,
    seconds: float = 0.05,
    times: int | None = None,
    error: Exception | None = None,
    cut_bytes: int = 1,
):
    """Scope a fault to a ``with`` block (armed on entry, disarmed on exit)."""
    arm(point, action, seconds=seconds, times=times, error=error, cut_bytes=cut_bytes)
    try:
        yield
    finally:
        disarm(point)
