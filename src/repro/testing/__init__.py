"""Test-support utilities shipped with the library.

Only :mod:`repro.testing.faults` lives here: the named-failpoint registry
the chaos tests drive.  Production code paths call ``faults.fire(...)``
at their chunk boundaries; with nothing armed those calls are a dict
lookup away from free.
"""

from repro.testing import faults

__all__ = ["faults"]
