"""Collection-level analytics on top of the distance substrate.

The demo's overview pane groups whole series by similarity; this package
provides the two standard collection analyses that sit one step further:

- :mod:`repro.analytics.kmedoids` — k-medoids clustering under any
  distance (DTW by default), e.g. "cluster the fifty states by the shape
  of their growth-rate trajectory".
- :mod:`repro.analytics.knn` — k-nearest-neighbour classification, the
  canonical evaluation for time series distances (1-NN DTW is the UCR
  archive yardstick) — used by experiment E14 to demonstrate the paper's
  premise that warping-robust similarity beats pointwise ED on shape
  data.
"""

from repro.analytics.kmedoids import ClusteringResult, kmedoids
from repro.analytics.knn import KnnClassifier

__all__ = ["ClusteringResult", "KnnClassifier", "kmedoids"]
