"""K-medoids clustering under an arbitrary sequence distance.

Medoids (actual member sequences) rather than means are the right
"centres" under elastic distances: the mean of warped sequences is not
itself meaningful under DTW, but the member minimising the summed
distance is always well-defined — even for variable-length collections.
The implementation is the classic Voronoi-iteration PAM variant seeded
deterministically with k-means++-style spread (farthest-point after a
seeded first pick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distances.dtw import dtw_distance
from repro.exceptions import ValidationError

__all__ = ["ClusteringResult", "kmedoids"]


def _default_distance(a, b) -> float:
    return dtw_distance(a, b, normalized=True)


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of a k-medoids run."""

    medoid_indices: tuple[int, ...]
    assignments: tuple[int, ...]
    objective: float
    iterations: int

    @property
    def k(self) -> int:
        return len(self.medoid_indices)

    def cluster_members(self, cluster: int) -> list[int]:
        """Indices of items assigned to *cluster*."""
        if not 0 <= cluster < self.k:
            raise ValidationError(f"cluster {cluster} out of range 0..{self.k - 1}")
        return [i for i, c in enumerate(self.assignments) if c == cluster]


def kmedoids(
    sequences,
    k: int,
    *,
    distance: Callable | None = None,
    max_iterations: int = 30,
    seed: int = 0,
) -> ClusteringResult:
    """Cluster *sequences* into *k* groups around medoid members.

    *distance* defaults to normalised DTW; any callable over two
    sequences works (the E14 bench passes ED to contrast).  Pairwise
    distances are computed once (O(n^2) calls) and the Voronoi iteration
    runs on the cached matrix, so convergence is cheap afterwards.
    """
    items = list(sequences)
    n = len(items)
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValidationError(f"need at least k={k} sequences, got {n}")
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    dist_fn = distance or _default_distance

    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(dist_fn(items[i], items[j]))
            matrix[i, j] = matrix[j, i] = d

    # Seeded farthest-point initialisation.
    rng = np.random.default_rng(seed)
    medoids = [int(rng.integers(n))]
    while len(medoids) < k:
        gaps = matrix[:, medoids].min(axis=1)
        gaps[medoids] = -1.0
        medoids.append(int(np.argmax(gaps)))

    assignments = np.argmin(matrix[:, medoids], axis=1)
    for iteration in range(1, max_iterations + 1):
        # Update step: each cluster's best medoid is the member with the
        # smallest summed distance to its cluster.
        changed = False
        for c in range(k):
            members = np.nonzero(assignments == c)[0]
            if members.size == 0:
                continue
            within = matrix[np.ix_(members, members)].sum(axis=1)
            best = int(members[int(np.argmin(within))])
            if best != medoids[c]:
                medoids[c] = best
                changed = True
        new_assignments = np.argmin(matrix[:, medoids], axis=1)
        if not changed and np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
    objective = float(matrix[np.arange(n), np.asarray(medoids)[assignments]].sum())
    return ClusteringResult(
        medoid_indices=tuple(int(m) for m in medoids),
        assignments=tuple(int(a) for a in assignments),
        objective=objective,
        iterations=iteration,
    )
