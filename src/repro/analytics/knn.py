"""K-nearest-neighbour time series classification.

1-NN with DTW is the UCR-archive yardstick for sequence distances, and
the cleanest way to demonstrate the paper's premise that warping-robust
similarity beats pointwise ED on misaligned shape data (experiment E14
does exactly that on cylinder–bell–funnel).  The classifier is lazy:
``fit`` stores the references, ``predict`` runs the distance against all
of them with LB_Kim pre-filtering and early-abandoning DTW when the
default metric is used.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Sequence

import numpy as np

from repro.distances.dtw import dtw_distance_early_abandon, dtw_distance
from repro.distances.lower_bounds import lb_kim
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["KnnClassifier"]


class KnnClassifier:
    """Lazy k-NN classifier over variable-length sequences."""

    def __init__(
        self,
        k: int = 1,
        *,
        distance: Callable | None = None,
        window: int | None = None,
    ) -> None:
        """*distance* overrides the default banded DTW; when supplied,
        the LB/early-abandon fast path is bypassed (it is DTW-specific)."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self._k = k
        self._distance = distance
        self._window = window
        self._references: list[np.ndarray] = []
        self._labels: list = []

    @property
    def is_fitted(self) -> bool:
        return bool(self._references)

    def fit(self, sequences: Sequence, labels: Sequence) -> "KnnClassifier":
        sequences = [as_sequence(s, name="sequence") for s in sequences]
        labels = list(labels)
        if len(sequences) != len(labels):
            raise ValidationError(
                f"{len(sequences)} sequences vs {len(labels)} labels"
            )
        if len(sequences) < self._k:
            raise ValidationError(
                f"need at least k={self._k} references, got {len(sequences)}"
            )
        self._references = sequences
        self._labels = labels
        return self

    def neighbors(self, query) -> list[tuple[float, int]]:
        """The k nearest ``(distance, reference_index)`` pairs."""
        if not self.is_fitted:
            raise ValidationError("classifier not fitted")
        q = as_sequence(query, name="query")
        heap: list[tuple[float, int]] = []  # sorted ascending, size <= k
        for idx, ref in enumerate(self._references):
            cutoff = heap[-1][0] if len(heap) == self._k else math.inf
            if self._distance is not None:
                d = float(self._distance(q, ref))
            else:
                if math.isfinite(cutoff) and lb_kim(q, ref) > cutoff:
                    continue
                if math.isfinite(cutoff):
                    d = dtw_distance_early_abandon(
                        q, ref, cutoff, window=self._window
                    )
                    if math.isinf(d):
                        continue
                else:
                    d = dtw_distance(q, ref, window=self._window)
            entry = (d, idx)
            if len(heap) < self._k:
                heap.append(entry)
                heap.sort()
            elif entry < heap[-1]:
                heap[-1] = entry
                heap.sort()
        return heap

    def predict(self, query):
        """Majority label among the k nearest references (ties: nearest)."""
        nearest = self.neighbors(query)
        votes = Counter(self._labels[idx] for _, idx in nearest)
        top = votes.most_common()
        best_count = top[0][1]
        tied = {label for label, count in top if count == best_count}
        if len(tied) == 1:
            return top[0][0]
        for _, idx in nearest:  # ascending distance: nearest tied label wins
            if self._labels[idx] in tied:
                return self._labels[idx]
        raise AssertionError("unreachable")  # pragma: no cover

    def predict_batch(self, queries) -> list:
        return [self.predict(q) for q in queries]

    def score(self, queries, labels) -> float:
        """Fraction of *queries* classified as *labels*."""
        labels = list(labels)
        if len(labels) == 0:
            raise ValidationError("labels must be non-empty")
        predictions = self.predict_batch(queries)
        if len(predictions) != len(labels):
            raise ValidationError(
                f"{len(predictions)} queries vs {len(labels)} labels"
            )
        hits = sum(p == y for p, y in zip(predictions, labels))
        return hits / len(labels)
