"""Baselines the paper positions ONEX against.

- :mod:`repro.baselines.brute_force` — exact DTW scan over every
  subsequence; the accuracy ground truth (S10 in DESIGN.md).
- :mod:`repro.baselines.ucr_suite` — the UCR Suite of Rakthanmanon et al.
  (SIGKDD 2012), "the fastest known method" the paper benchmarks against
  (S11).
- :mod:`repro.baselines.paa_index` — FRM-style PAA feature index
  (Faloutsos et al. 1994), the Euclidean-camp representative (S12).
- :mod:`repro.baselines.embedding` — EBSM-style landmark embedding
  (Athitsos et al., SIGMOD 2008), the approximate-camp representative
  (S13).
- :mod:`repro.baselines.spring` — SPRING stream monitoring under DTW
  (Sakurai et al., ICDE 2007), the exact-streaming camp (reference [7]).
"""

from repro.baselines.brute_force import BruteForceSearcher
from repro.baselines.embedding import EmbeddingSearcher
from repro.baselines.paa_index import PaaIndex
from repro.baselines.spring import SpringMatch, SpringMatcher
from repro.baselines.ucr_suite import UcrSuiteSearcher

__all__ = [
    "BruteForceSearcher",
    "EmbeddingSearcher",
    "PaaIndex",
    "SpringMatch",
    "SpringMatcher",
    "UcrSuiteSearcher",
]
