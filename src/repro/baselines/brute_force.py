"""Exact brute-force DTW search — the accuracy ground truth (S10).

Scans every indexed subsequence with DTW.  Two implementations share the
public API:

- ``batch=True`` (default): raw DTW to every window of a length via the
  vectorised anti-diagonal kernel (the same kernel ONEX uses), then exact
  normalised distances for candidates in ascending optimistic order until
  no unverified candidate can improve the k-th best.  Exact, and the
  fairest "no index" comparator for the speed experiments.
- ``batch=False``: sequential scan with LB_Kim and early-abandoning DTW
  (the careful practitioner's loop), or fully naive with ``prune=False``
  — the cost regime of the paper's challenge 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.core.query import Match
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.dtw import (
    dtw_distance_batch,
    dtw_distance_early_abandon,
    dtw_path,
)
from repro.distances.lower_bounds import lb_kim
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["BruteForceSearcher", "BruteForceStats"]


@dataclass
class BruteForceStats:
    candidates: int = 0
    lb_prunes: int = 0
    abandoned: int = 0
    dtw_calls: int = 0


class BruteForceSearcher:
    """Exact best-match search over all subsequences of a dataset.

    Operates on the dataset exactly as given — callers pass the same
    (normalised) dataset the ONEX base indexes so distances are comparable.
    """

    def __init__(
        self, dataset: TimeSeriesDataset, *, prune: bool = True, batch: bool = True
    ) -> None:
        if len(dataset) == 0:
            raise ValidationError("dataset must be non-empty")
        self._dataset = dataset
        self._prune = prune
        self._batch = batch
        self.last_stats = BruteForceStats()

    def best_match(
        self,
        query,
        lengths,
        *,
        window: int | None = None,
    ) -> Match:
        """Exact best match (normalised DTW) over windows of *lengths*."""
        matches = self.k_best_matches(query, 1, lengths, window=window)
        return matches[0]

    def k_best_matches(
        self,
        query,
        k: int,
        lengths,
        *,
        window: int | None = None,
    ) -> list[Match]:
        """Exact *k* best matches, best first."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        q = as_sequence(query, name="query")
        lengths = sorted(set(int(n) for n in lengths))
        if not lengths or lengths[0] < 1:
            raise ValidationError("lengths must be positive integers")
        stats = BruteForceStats()
        if self._batch:
            best = self._search_batch(q, k, lengths, window, stats)
        else:
            best = self._search_scan(q, k, lengths, window, stats)
        self.last_stats = stats
        if not best:
            raise ValidationError("no candidate subsequences for these lengths")
        return [
            Match(
                ref=ref,
                series_name=self._dataset[ref.series_index].name,
                distance=dist,
                raw_distance=raw,
                path=path,
                group=(-1, -1),
            )
            for dist, ref, raw, path in best
        ]

    # ------------------------------------------------------------------
    # Vectorised search
    # ------------------------------------------------------------------

    def _search_batch(self, q, k, lengths, window, stats):
        qlen = q.shape[0]
        # Raw DTW to everything, then verify candidates in ascending order
        # of the optimistic normalised distance raw / (max path length):
        # once that bound exceeds the k-th best true distance, no
        # unverified candidate can improve the answer.
        candidates: list[tuple[float, float, SubsequenceRef]] = []
        for length in lengths:
            matrix, refs = self._dataset.subsequence_matrix(length)
            if not refs:
                continue
            raw = dtw_distance_batch(q, matrix, window=window)
            stats.candidates += len(refs)
            max_path = qlen + length - 1
            candidates.extend(
                (float(raw[i]) / max_path, float(raw[i]), refs[i])
                for i in range(len(refs))
            )
        candidates.sort(key=lambda e: (e[0], e[2]))
        best: list[tuple[float, SubsequenceRef, float, tuple]] = []
        for optimistic, _, ref in candidates:
            if len(best) == k and optimistic > best[-1][0]:
                break
            stats.dtw_calls += 1
            res = dtw_path(q, self._dataset.values(ref), window=window)
            entry = (res.normalized_distance, ref, res.distance, res.path)
            self._keep_best(best, entry, k)
        stats.lb_prunes = stats.candidates - stats.dtw_calls
        return best

    # ------------------------------------------------------------------
    # Sequential scan (prune=True adds LB_Kim + early abandoning)
    # ------------------------------------------------------------------

    def _search_scan(self, q, k, lengths, window, stats):
        qlen = q.shape[0]
        best: list[tuple[float, SubsequenceRef, float, tuple]] = []
        for length in lengths:
            max_path = qlen + length - 1
            for ref in self._dataset.iter_subsequences(length):
                stats.candidates += 1
                values = self._dataset.values(ref)
                cutoff = best[-1][0] if len(best) == k else math.inf
                if self._prune and math.isfinite(cutoff):
                    if lb_kim(q, values) / max_path > cutoff:
                        stats.lb_prunes += 1
                        continue
                    raw = dtw_distance_early_abandon(
                        q, values, cutoff * max_path, window=window
                    )
                    if math.isinf(raw):
                        stats.abandoned += 1
                        continue
                stats.dtw_calls += 1
                res = dtw_path(q, values, window=window)
                entry = (res.normalized_distance, ref, res.distance, res.path)
                self._keep_best(best, entry, k)
        return best

    @staticmethod
    def _keep_best(best: list, entry: tuple, k: int) -> None:
        if len(best) < k:
            best.append(entry)
            best.sort(key=lambda e: (e[0], e[1]))
        elif (entry[0], entry[1]) < (best[-1][0], best[-1][1]):
            best[-1] = entry
            best.sort(key=lambda e: (e[0], e[1]))