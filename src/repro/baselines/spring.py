"""SPRING: stream monitoring under DTW (reference [7], Sakurai et al.,
ICDE 2007).

The paper's state-of-the-art discussion cites SPRING as the exact
solution "at the expense of responsiveness": it reports every stream
subsequence whose DTW distance to a fixed query pattern is below a
threshold, processing each arriving sample in O(m) for a length-m
pattern.  The trick is *star-padding*: the DP over the (stream x
pattern) grid lets a warping path start at any stream position for free,
and each DP cell carries the start position of its best path, so
non-overlapping optimal matches can be reported online.

Implemented faithfully from the paper, including the deferred-report
rule: a candidate match is emitted only once no in-flight path that
could beat it overlaps it.  :meth:`SpringMatcher.finish` flushes the
final pending candidate when the stream ends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["SpringMatch", "SpringMatcher"]


@dataclass(frozen=True)
class SpringMatch:
    """One reported stream subsequence within the threshold.

    ``start``/``end`` are inclusive stream indices; ``distance`` is the
    summed L1 warping cost between the subsequence and the pattern.
    """

    start: int
    end: int
    distance: float

    @property
    def length(self) -> int:
        return self.end - self.start + 1


class SpringMatcher:
    """Online subsequence-DTW monitor for one pattern.

    Feed samples with :meth:`append` (returns matches that became safe to
    report); call :meth:`finish` at end of stream for the last candidate.
    """

    def __init__(self, pattern, epsilon: float) -> None:
        self._pattern = as_sequence(pattern, name="pattern")
        if self._pattern.shape[0] < 2:
            raise ValidationError("pattern must have at least 2 points")
        if not (epsilon > 0 and math.isfinite(epsilon)):
            raise ValidationError(f"epsilon must be positive and finite, got {epsilon}")
        self._epsilon = float(epsilon)
        m = self._pattern.shape[0]
        self._d_prev = np.full(m, math.inf)
        self._s_prev = np.zeros(m, dtype=np.int64)
        self._t = -1  # index of the last consumed sample
        # Best pending candidate (distance, start, end) awaiting safety.
        self._candidate: tuple[float, int, int] | None = None

    @property
    def pattern_length(self) -> int:
        return self._pattern.shape[0]

    @property
    def samples_seen(self) -> int:
        return self._t + 1

    def append(self, value: float) -> list[SpringMatch]:
        """Consume one stream sample; return matches now safe to report."""
        if not math.isfinite(value):
            raise ValidationError(f"stream value must be finite, got {value!r}")
        self._t += 1
        t = self._t
        q = self._pattern
        m = q.shape[0]
        d_prev, s_prev = self._d_prev, self._s_prev
        d_cur = np.empty(m)
        s_cur = np.empty(m, dtype=np.int64)

        # Star padding: a path may start at the current sample for free.
        d_cur[0] = abs(value - q[0])
        s_cur[0] = t
        for i in range(1, m):
            best = d_cur[i - 1]
            start = s_cur[i - 1]
            if d_prev[i] < best:
                best = d_prev[i]
                start = s_prev[i]
            if d_prev[i - 1] < best:
                best = d_prev[i - 1]
                start = s_prev[i - 1]
            d_cur[i] = abs(value - q[i]) + best
            s_cur[i] = start

        reports: list[SpringMatch] = []
        if self._candidate is not None:
            # Safe to report once every in-flight path either cannot beat
            # the candidate or starts after the candidate ends.
            dist, start, end = self._candidate
            if bool(np.all((d_cur >= dist) | (s_cur > end))):
                reports.append(SpringMatch(start=start, end=end, distance=dist))
                self._candidate = None
                # Reset paths overlapping the reported range so a later
                # occurrence is matched afresh (the paper's reset step).
                overlap = s_cur <= end
                d_cur[overlap] = math.inf

        final = d_cur[m - 1]
        if final <= self._epsilon:
            if self._candidate is None or final < self._candidate[0]:
                self._candidate = (float(final), int(s_cur[m - 1]), t)

        self._d_prev, self._s_prev = d_cur, s_cur
        return reports

    def extend(self, values) -> list[SpringMatch]:
        """Consume many samples; return all matches reported along the way."""
        out: list[SpringMatch] = []
        for value in np.asarray(values, dtype=np.float64):
            out.extend(self.append(float(value)))
        return out

    def finish(self) -> list[SpringMatch]:
        """Flush the pending candidate at end of stream."""
        if self._candidate is None:
            return []
        dist, start, end = self._candidate
        self._candidate = None
        return [SpringMatch(start=start, end=end, distance=dist)]
