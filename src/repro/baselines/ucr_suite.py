"""UCR Suite baseline — "the fastest known method" (reference [6], S11).

A faithful reimplementation of the core of Rakthanmanon et al., *Searching
and mining trillions of time series subsequences under dynamic time
warping* (SIGKDD 2012), adapted from streaming to collection scanning:

- every candidate window and the query are **z-normalised**,
- the ground cost is **squared difference** (UCR convention),
- a cascade of lower bounds prunes candidates against the best-so-far:
  LB_Kim (constant-time endpoints) → LB_Keogh with the query envelope
  (accumulated in decreasing |q_z| order, abandoning early) → reversed
  LB_Keogh with the candidate envelope → banded DTW with early abandoning
  fed by the LB_Keogh suffix sums.

Deviations from the C original, documented for honesty: windows are
z-normalised eagerly per candidate (O(m), vs the original's amortised
online trick) and the mean/std come from the O(n) cumulative-sum
precomputation; neither changes pruning behaviour, only a constant factor.

The suite answers a *fixed-length, z-normalised* nearest neighbour — the
regime mismatch against ONEX's variable-length, value-space exploration is
exactly what the paper's "up to 19% more accurate" claim is about (E6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.dtw import dtw_distance_early_abandon
from repro.distances.envelope import keogh_envelope
from repro.distances.normalize import sliding_mean_std, znormalize
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["UcrMatch", "UcrSearchStats", "UcrSuiteSearcher"]

_FLAT_EPS = 1e-12


@dataclass(frozen=True)
class UcrMatch:
    """Best window found by the suite (distance in z-normalised space)."""

    ref: SubsequenceRef
    series_name: str
    squared_distance: float

    @property
    def distance(self) -> float:
        """Root of the squared-DTW total (comparable across lengths)."""
        return math.sqrt(self.squared_distance)


@dataclass
class UcrSearchStats:
    candidates: int = 0
    kim_prunes: int = 0
    keogh_eq_prunes: int = 0
    keogh_ec_prunes: int = 0
    dtw_abandons: int = 0
    dtw_calls: int = 0

    @property
    def pruning_rate(self) -> float:
        if self.candidates == 0:
            return 0.0
        pruned = (
            self.kim_prunes
            + self.keogh_eq_prunes
            + self.keogh_ec_prunes
            + self.dtw_abandons
        )
        return pruned / self.candidates


class UcrSuiteSearcher:
    """Best-match subsequence search with the UCR Suite optimisations."""

    def __init__(self, dataset: TimeSeriesDataset, *, band_fraction: float = 0.05) -> None:
        """*band_fraction* is the Sakoe–Chiba radius as a fraction of the
        query length (UCR's usual 5% default)."""
        if len(dataset) == 0:
            raise ValidationError("dataset must be non-empty")
        if not 0.0 <= band_fraction <= 1.0:
            raise ValidationError("band_fraction must be in [0, 1]")
        self._dataset = dataset
        self._band_fraction = band_fraction
        self.last_stats = UcrSearchStats()

    def best_match(self, query) -> UcrMatch:
        """The nearest z-normalised window of the query's length."""
        q_raw = as_sequence(query, name="query")
        m = q_raw.shape[0]
        if m < 2:
            raise ValidationError("query must have at least 2 points")
        q = znormalize(q_raw)
        radius = max(0, int(math.floor(self._band_fraction * m)))
        lower, upper = keogh_envelope(q, radius)
        # UCR optimisation: accumulate LB_Keogh terms in decreasing |q_z|
        # order so large contributions trigger abandonment early.
        order = np.argsort(-np.abs(q))
        q_sorted = q[order]
        lower_sorted = lower[order]
        upper_sorted = upper[order]

        stats = UcrSearchStats()
        best_sq = math.inf
        best_ref: SubsequenceRef | None = None

        for series_index, series in enumerate(self._dataset):
            n = len(series)
            if n < m:
                continue
            values = series.values
            means, stds = sliding_mean_std(values, m)
            for start in range(n - m + 1):
                stats.candidates += 1
                std = stds[start]
                window = values[start : start + m]
                if std <= _FLAT_EPS:
                    c = np.zeros(m)
                else:
                    c = (window - means[start]) / std

                # --- LB_Kim (constant time on the z-normalised window).
                kim = (q[0] - c[0]) ** 2 + (q[-1] - c[-1]) ** 2
                if m >= 4:
                    kim += min(
                        (q[1] - c[0]) ** 2,
                        (q[1] - c[1]) ** 2,
                        (q[0] - c[1]) ** 2,
                    )
                    kim += min(
                        (q[-2] - c[-1]) ** 2,
                        (q[-2] - c[-2]) ** 2,
                        (q[-1] - c[-2]) ** 2,
                    )
                if kim >= best_sq:
                    stats.kim_prunes += 1
                    continue

                # --- LB_Keogh (query envelope), best-order early abandon.
                c_sorted = c[order]
                cb_sorted = np.zeros(m)
                keogh_eq = 0.0
                abandoned = False
                for i in range(m):
                    x = c_sorted[i]
                    if x > upper_sorted[i]:
                        d = (x - upper_sorted[i]) ** 2
                    elif x < lower_sorted[i]:
                        d = (lower_sorted[i] - x) ** 2
                    else:
                        continue
                    keogh_eq += d
                    cb_sorted[i] = d
                    if keogh_eq >= best_sq:
                        abandoned = True
                        break
                if abandoned:
                    stats.keogh_eq_prunes += 1
                    continue

                # --- Reversed LB_Keogh (candidate envelope vs query).
                c_lower, c_upper = keogh_envelope(c, radius)
                breach = np.where(
                    q > c_upper, q - c_upper, np.where(q < c_lower, c_lower - q, 0.0)
                )
                keogh_ec = float((breach * breach).sum())
                if max(keogh_eq, keogh_ec) >= best_sq:
                    stats.keogh_ec_prunes += 1
                    continue

                # --- Early-abandoning DTW with cumulative bound from the
                # tighter of the two LB_Keogh term vectors.
                cb = np.zeros(m)
                cb[order] = cb_sorted
                if keogh_ec > keogh_eq:
                    cb = breach * breach
                suffix = np.zeros(m + 1)
                suffix[:m] = np.cumsum(cb[::-1])[::-1]
                # A path cell in row i may sit as far right as column
                # i + radius, whose breach term is then already inside the
                # cumulative cost; only terms beyond the band are certainly
                # unpaid, so shift the suffix by the radius (the original's
                # ``cb[i + r + 1]``).  Unshifted suffixes double-count and
                # can abandon the true nearest neighbour.
                if radius:
                    suffix = suffix[np.minimum(m, np.arange(m + 1) + radius)]
                sq = dtw_distance_early_abandon(
                    q,
                    c,
                    best_sq if math.isfinite(best_sq) else 1e300,
                    window=radius,
                    ground="squared",
                    cumulative_bound=suffix,
                )
                if math.isinf(sq):
                    stats.dtw_abandons += 1
                    continue
                stats.dtw_calls += 1
                if sq < best_sq:
                    best_sq = sq
                    best_ref = SubsequenceRef(series_index, start, m)
        self.last_stats = stats
        if best_ref is None:
            raise ValidationError(
                f"no window of length {m} exists in the dataset"
            )
        return UcrMatch(
            ref=best_ref,
            series_name=self._dataset[best_ref.series_index].name,
            squared_distance=best_sq,
        )
