"""FRM-style PAA feature index (reference [4], S12).

Faloutsos, Ranganathan & Manolopoulos (SIGMOD 1994) pioneered subsequence
matching by mapping windows to a low-dimensional feature space and pruning
with a distance that underestimates the true one ("GEMINI" framework).  We
use Piecewise Aggregate Approximation features — segment means — whose
scaled L2 distance provably lower-bounds the true Euclidean distance, so
range queries are exact: filter in feature space, verify survivors.

This is the Euclidean-camp baseline: fast, exact *under ED* — and blind to
time warping, which is what the E6 accuracy experiment demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["PaaIndex", "PaaMatch", "PaaStats"]


def paa_transform(values: np.ndarray, segments: int) -> np.ndarray:
    """Segment means of *values* split into *segments* near-equal parts."""
    n = values.shape[0]
    if segments > n:
        raise ValidationError(f"segments ({segments}) exceed length ({n})")
    bounds = np.linspace(0, n, segments + 1).round().astype(int)
    return np.array(
        [values[bounds[i] : bounds[i + 1]].mean() for i in range(segments)]
    )


@dataclass(frozen=True)
class PaaMatch:
    ref: SubsequenceRef
    series_name: str
    distance: float  # true Euclidean (L2) distance


@dataclass
class PaaStats:
    candidates: int = 0
    filtered_out: int = 0
    verified: int = 0

    @property
    def filter_rate(self) -> float:
        return self.filtered_out / self.candidates if self.candidates else 0.0


class PaaIndex:
    """PAA filter-and-verify index over all windows of one length."""

    def __init__(
        self, dataset: TimeSeriesDataset, length: int, *, segments: int = 8
    ) -> None:
        if len(dataset) == 0:
            raise ValidationError("dataset must be non-empty")
        if length < 2:
            raise ValidationError(f"length must be >= 2, got {length}")
        if segments < 1:
            raise ValidationError(f"segments must be >= 1, got {segments}")
        segments = min(segments, length)
        self._dataset = dataset
        self._length = length
        self._segments = segments
        self._refs = list(dataset.iter_subsequences(length))
        if not self._refs:
            raise ValidationError(f"no windows of length {length} in the dataset")
        self._features = np.vstack(
            [paa_transform(dataset.values(ref), segments) for ref in self._refs]
        )
        # Widths of the PAA segments, for the lower-bounding scale factor.
        bounds = np.linspace(0, length, segments + 1).round().astype(int)
        self._widths = np.diff(bounds).astype(np.float64)
        self.last_stats = PaaStats()

    @property
    def length(self) -> int:
        return self._length

    @property
    def size(self) -> int:
        return len(self._refs)

    def feature_lower_bound(self, q_features: np.ndarray) -> np.ndarray:
        """Vector of PAA lower bounds on true ED for every indexed window.

        ``sqrt(sum_i w_i * (qf_i - cf_i)^2) <= ED_L2(q, c)`` — the GEMINI
        lower-bounding lemma for segment means (Keogh et al. 2001).
        """
        diff = self._features - q_features
        return np.sqrt((self._widths * diff * diff).sum(axis=1))

    def range_query(self, query, radius: float) -> list[PaaMatch]:
        """All windows with true ED_L2 <= *radius* (exact, filter+verify)."""
        q = self._check_query(query)
        if not radius >= 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        stats = PaaStats(candidates=self.size)
        q_features = paa_transform(q, self._segments)
        bounds = self.feature_lower_bound(q_features)
        survivors = np.nonzero(bounds <= radius)[0]
        stats.filtered_out = self.size - survivors.size
        out = []
        for idx in survivors:
            stats.verified += 1
            ref = self._refs[idx]
            true = float(np.sqrt(((self._dataset.values(ref) - q) ** 2).sum()))
            if true <= radius:
                out.append(
                    PaaMatch(
                        ref=ref,
                        series_name=self._dataset[ref.series_index].name,
                        distance=true,
                    )
                )
        self.last_stats = stats
        return sorted(out, key=lambda m: (m.distance, m.ref))

    def best_match(self, query) -> PaaMatch:
        """Exact ED nearest neighbour via ascending-bound verification."""
        q = self._check_query(query)
        stats = PaaStats(candidates=self.size)
        q_features = paa_transform(q, self._segments)
        bounds = self.feature_lower_bound(q_features)
        order = np.argsort(bounds)
        best = (math.inf, None)
        for idx in order:
            if bounds[idx] >= best[0]:
                # Every remaining bound is larger; the answer is final.
                stats.filtered_out = self.size - stats.verified
                break
            stats.verified += 1
            ref = self._refs[idx]
            true = float(np.sqrt(((self._dataset.values(ref) - q) ** 2).sum()))
            if true < best[0]:
                best = (true, ref)
        self.last_stats = stats
        distance, ref = best
        return PaaMatch(
            ref=ref,
            series_name=self._dataset[ref.series_index].name,
            distance=distance,
        )

    def _check_query(self, query) -> np.ndarray:
        q = as_sequence(query, name="query")
        if q.shape[0] != self._length:
            raise ValidationError(
                f"query length {q.shape[0]} != indexed length {self._length}"
            )
        return q
