"""EBSM-style landmark embedding baseline (reference [1], S13).

Athitsos et al., *Approximate embedding-based subsequence matching of time
series* (SIGMOD 2008) speed up DTW search by embedding sequences into a
vector space — each coordinate is the DTW distance to a fixed "reference"
sequence — and ranking candidates by cheap vector distance, verifying only
the top fraction with real DTW.  DTW to a common reference obeys a
triangle-like relation, so near neighbours tend to embed nearby, but the
method is *approximate*: the true best match can be ranked outside the
verified set.  Its retrieval-accuracy-vs-speed trade-off is the
"approximate camp" foil in experiment E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.dtw import dtw_distance, dtw_path
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["EmbeddingMatch", "EmbeddingSearcher", "EmbeddingStats"]


@dataclass(frozen=True)
class EmbeddingMatch:
    ref: SubsequenceRef
    series_name: str
    distance: float  # normalised DTW, same unit as ONEX reports


@dataclass
class EmbeddingStats:
    candidates: int = 0
    verified: int = 0
    dtw_calls: int = 0


class EmbeddingSearcher:
    """Approximate DTW best-match via landmark embeddings."""

    def __init__(
        self,
        dataset: TimeSeriesDataset,
        lengths,
        *,
        references: int = 8,
        verify_fraction: float = 0.05,
        seed: int = 0,
    ) -> None:
        """Index all windows of the given *lengths*.

        *references* landmark subsequences are sampled from the data; each
        window's embedding is its vector of normalised DTW distances to
        them.  At query time the closest ``verify_fraction`` of windows by
        embedding L-infinity distance are verified with exact DTW.
        """
        if len(dataset) == 0:
            raise ValidationError("dataset must be non-empty")
        if references < 1:
            raise ValidationError(f"references must be >= 1, got {references}")
        if not 0.0 < verify_fraction <= 1.0:
            raise ValidationError("verify_fraction must be in (0, 1]")
        self._dataset = dataset
        self._verify_fraction = verify_fraction
        self._refs: list[SubsequenceRef] = []
        for length in sorted(set(int(n) for n in lengths)):
            self._refs.extend(dataset.iter_subsequences(length))
        if not self._refs:
            raise ValidationError("no windows for the requested lengths")

        rng = np.random.default_rng(seed)
        picks = rng.choice(len(self._refs), size=min(references, len(self._refs)), replace=False)
        self._landmarks = [dataset.values(self._refs[int(p)]).copy() for p in picks]
        self._embeddings = np.empty((len(self._refs), len(self._landmarks)))
        for i, ref in enumerate(self._refs):
            values = dataset.values(ref)
            for j, landmark in enumerate(self._landmarks):
                self._embeddings[i, j] = dtw_distance(values, landmark, normalized=True)
        self.last_stats = EmbeddingStats()

    @property
    def size(self) -> int:
        return len(self._refs)

    def embed(self, query) -> np.ndarray:
        """Embedding of an arbitrary query sequence."""
        q = as_sequence(query, name="query")
        return np.array(
            [dtw_distance(q, landmark, normalized=True) for landmark in self._landmarks]
        )

    def best_match(self, query) -> EmbeddingMatch:
        """Approximate DTW nearest neighbour (verified top fraction)."""
        q = as_sequence(query, name="query")
        stats = EmbeddingStats(candidates=self.size)
        q_emb = self.embed(q)
        stats.dtw_calls += len(self._landmarks)
        # L-infinity in embedding space: |DTW(q,l) - DTW(x,l)| lower-bounds
        # nothing formally for DTW (no triangle inequality), hence the
        # method's approximation; it is still a strong ranking signal.
        scores = np.abs(self._embeddings - q_emb).max(axis=1)
        n_verify = max(1, int(math.ceil(self._verify_fraction * self.size)))
        candidates = np.argsort(scores)[:n_verify]
        best: tuple[float, SubsequenceRef | None] = (math.inf, None)
        for idx in candidates:
            stats.verified += 1
            stats.dtw_calls += 1
            ref = self._refs[int(idx)]
            res = dtw_path(q, self._dataset.values(ref))
            if res.normalized_distance < best[0]:
                best = (res.normalized_distance, ref)
        self.last_stats = stats
        distance, ref = best
        return EmbeddingMatch(
            ref=ref,
            series_name=self._dataset[ref.series_index].name,
            distance=distance,
        )
