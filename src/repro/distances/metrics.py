"""Euclidean-family distances on equal-length sequences.

ONEX (DESIGN.md §2) uses the length-normalised L1 distance as its cheap
"ED" for building similarity groups; the L2 and Chebyshev variants are used
by baselines and by the ED→DTW transfer bounds respectively.

All functions accept anything :func:`numpy.asarray` understands, validate
that the inputs are one-dimensional, equal-length, finite, and non-empty,
and return a Python ``float``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "as_sequence",
    "chebyshev",
    "euclidean",
    "euclidean_l1",
    "euclidean_l2",
    "normalized_euclidean",
    "pairwise_euclidean",
]


def as_sequence(values, *, name: str = "sequence") -> np.ndarray:
    """Validate and convert *values* to a 1-D float64 array.

    Raises :class:`ValidationError` if the input is empty, not 1-D, or
    contains NaN/inf.  Used at every public distance entry point so the
    numeric kernels can assume clean input.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def _pair(x, y) -> tuple[np.ndarray, np.ndarray]:
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    if a.shape[0] != b.shape[0]:
        raise ValidationError(
            f"equal lengths required, got {a.shape[0]} and {b.shape[0]}"
        )
    return a, b


def euclidean_l1(x, y) -> float:
    """Sum of absolute pointwise differences (Manhattan distance)."""
    a, b = _pair(x, y)
    return float(np.abs(a - b).sum())


def euclidean_l2(x, y) -> float:
    """Classic Euclidean (L2) distance."""
    a, b = _pair(x, y)
    return float(np.sqrt(((a - b) ** 2).sum()))


def chebyshev(x, y) -> float:
    """Maximum absolute pointwise difference (L-infinity distance)."""
    a, b = _pair(x, y)
    return float(np.abs(a - b).max())


def normalized_euclidean(x, y, *, order: int = 1) -> float:
    """Length-normalised ED — ONEX's similarity-group distance.

    ``order=1`` (default, used throughout the ONEX core) returns
    ``mean(|x_i - y_i|)``; ``order=2`` returns ``sqrt(mean((x_i - y_i)^2))``.
    Length normalisation is what lets a single similarity threshold ``ST``
    apply across subsequence lengths.
    """
    a, b = _pair(x, y)
    if order == 1:
        return float(np.abs(a - b).mean())
    if order == 2:
        return float(np.sqrt(((a - b) ** 2).mean()))
    raise ValidationError(f"order must be 1 or 2, got {order!r}")


def euclidean(x, y, *, order: int = 1, normalized: bool = True) -> float:
    """General entry point for the ED family.

    Parameters
    ----------
    order:
        1 for L1 aggregation, 2 for L2.
    normalized:
        If true (ONEX convention), divide out the length so thresholds are
        comparable across lengths.
    """
    if normalized:
        return normalized_euclidean(x, y, order=order)
    if order == 1:
        return euclidean_l1(x, y)
    if order == 2:
        return euclidean_l2(x, y)
    raise ValidationError(f"order must be 1 or 2, got {order!r}")


def pairwise_euclidean(rows: np.ndarray, *, order: int = 1) -> np.ndarray:
    """Dense pairwise length-normalised ED matrix for a stack of rows.

    *rows* is a 2-D array whose rows are equal-length sequences.  Returns an
    ``(n, n)`` symmetric matrix with zero diagonal.  Used by the threshold
    recommender and by tests; O(n^2 * m) time, vectorised over columns.
    """
    mat = np.asarray(rows, dtype=np.float64)
    if mat.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {mat.shape}")
    if mat.size == 0:
        raise ValidationError("rows must be non-empty")
    if not np.all(np.isfinite(mat)):
        raise ValidationError("rows contain NaN or infinite values")
    diff = mat[:, None, :] - mat[None, :, :]
    if order == 1:
        return np.abs(diff).mean(axis=2)
    if order == 2:
        return np.sqrt((diff**2).mean(axis=2))
    raise ValidationError(f"order must be 1 or 2, got {order!r}")
