"""Dynamic time warping: distances, optimal paths, bands, early abandoning.

Conventions (DESIGN.md §2): the ground cost between two points is
``|a - b|`` by default (``ground="l1"``); ``ground="squared"`` is provided
for the UCR Suite baseline, which follows Rakthanmanon et al. and works on
sums of squared differences.  ``DTW(x, y)`` is the minimum over warping
paths of the summed ground cost; the *normalised* DTW divides by the length
of the optimal path, which is what makes a single similarity threshold
``ST`` comparable across sequence lengths in ONEX.

Three implementations are deliberately kept side by side:

- :func:`dtw_distance` — anti-diagonal vectorised DP (no path), the fast
  kernel used by the ONEX query processor.
- :func:`dtw_cost_matrix` / :func:`dtw_path` — straightforward row-scan DP
  with traceback, used where the warping path itself is needed (the visual
  "matched points" connectors of Fig. 2 and the ED→DTW transfer bounds).
- :func:`dtw_distance_early_abandon` — row-scan with a best-so-far
  threshold and optional cumulative lower bounds, used by the UCR Suite
  baseline and kept as the scalar fallback of ONEX's member refinement
  (the default batched cascade is LB_Kim → LB_Keogh → :func:`dtw_distance_batch`,
  see :mod:`repro.core.query`).

The row-scan and vectorised kernels are cross-checked against each other in
the property-test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "DtwResult",
    "dtw_cost_matrix",
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_distance_batch_banded",
    "dtw_distance_condensed",
    "dtw_distance_early_abandon",
    "dtw_path",
    "effective_band",
]

_INF = math.inf


def _ground_is_squared(ground: str) -> bool:
    if ground == "l1":
        return False
    if ground == "squared":
        return True
    raise ValidationError(f"ground must be 'l1' or 'squared', got {ground!r}")


def effective_band(n: int, m: int, window: int | None) -> int | None:
    """Resolve a Sakoe–Chiba radius for an ``n`` x ``m`` alignment.

    ``None`` means unconstrained.  A finite *window* is widened to at least
    ``|n - m|`` so that the corner cell stays reachable — the standard
    convention for banded DTW on different-length inputs.
    """
    if window is None:
        return None
    if window < 0:
        raise ValidationError(f"window must be >= 0, got {window}")
    return max(window, abs(n - m))


@dataclass(frozen=True)
class DtwResult:
    """Outcome of a path-producing DTW computation.

    Attributes
    ----------
    distance:
        Summed ground cost along the optimal warping path.
    path:
        Tuple of ``(i, j)`` index pairs, monotone in both coordinates,
        starting at ``(0, 0)`` and ending at ``(n-1, m-1)``.
    """

    distance: float
    path: tuple[tuple[int, int], ...]

    @property
    def path_length(self) -> int:
        return len(self.path)

    @property
    def normalized_distance(self) -> float:
        """Distance divided by warping-path length (ONEX's comparable DTW)."""
        return self.distance / len(self.path)

    def multiplicities(self, axis: int, length: int) -> np.ndarray:
        """How many path entries touch each index along *axis* (0=x, 1=y).

        This is the ``m_j`` vector of the ED→DTW transfer lemma
        (DESIGN.md §2).
        """
        counts = np.zeros(length, dtype=np.int64)
        for pair in self.path:
            counts[pair[axis]] += 1
        return counts


def dtw_cost_matrix(x, y, *, window: int | None = None, ground: str = "l1") -> np.ndarray:
    """Full cumulative-cost matrix ``C`` with ``C[i, j] = DTW(x[:i+1], y[:j+1])``.

    Cells outside the Sakoe–Chiba band are ``inf``.  Quadratic memory; use
    :func:`dtw_distance` when only the final distance is needed.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    squared = _ground_is_squared(ground)
    n, m = a.shape[0], b.shape[0]
    band = effective_band(n, m, window)

    cost = np.full((n, m), _INF, dtype=np.float64)
    for i in range(n):
        j_lo, j_hi = 0, m - 1
        if band is not None:
            j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
        row_prev = cost[i - 1] if i > 0 else None
        running = _INF  # cost[i, j-1] as the scan moves right
        xi = a[i]
        for j in range(j_lo, j_hi + 1):
            diff = xi - b[j]
            d = diff * diff if squared else abs(diff)
            if i == 0 and j == 0:
                best = 0.0
            else:
                up = row_prev[j] if row_prev is not None else _INF
                diag = row_prev[j - 1] if (row_prev is not None and j > 0) else _INF
                best = min(up, diag, running)
            value = d + best
            cost[i, j] = value
            running = value
    return cost


#: Adaptive-dispatch threshold for :func:`dtw_distance_batch`, tuned with
#: the microbenchmarks behind ``benchmarks/bench_rep_cascade.py``.  The
#: vectorised kernels pay a fixed numpy dispatch cost per anti-diagonal
#: while the scalar row scan pays per cell, so the scalar path wins while
#: the *cells per diagonal* stay small: total cells at most this factor
#: times the diagonal count (measured crossover ≈ 170; kept conservative
#: for hosts with cheaper numpy dispatch).  This is what fixed the
#: BENCH_pr2 `batched_vs_legacy` regression at small member counts.
_SCALAR_CELLS_PER_DIAGONAL = 128


def _as_batch_rows(rows) -> np.ndarray:
    mat = np.asarray(rows, dtype=np.float64)
    if mat.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {mat.shape}")
    if mat.shape[0] and mat.shape[1] == 0:
        raise ValidationError("rows must have at least one column")
    if not np.all(np.isfinite(mat)):
        raise ValidationError("rows contain NaN or infinite values")
    return mat


def _as_query_stack(x) -> np.ndarray:
    """*x* as a 1-D query or a paired 2-D query stack (see paired mode)."""
    probe = np.asarray(x, dtype=np.float64)
    if probe.ndim == 2:
        if probe.shape[1] == 0:
            raise ValidationError("paired queries must have at least one column")
        if not np.all(np.isfinite(probe)):
            raise ValidationError("paired queries contain NaN or infinite values")
        return probe
    return as_sequence(x, name="x")


def dtw_distance_batch(
    x,
    rows,
    *,
    window: int | None = None,
    ground: str = "l1",
    with_path_length: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """DTW from *x* to every row of *rows* in one vectorised dynamic program.

    Each anti-diagonal of the cost matrix depends only elementwise on the
    two previous anti-diagonals, and the recurrence is identical across
    candidates, so evaluating the query against a whole stack of
    equal-length sequences (e.g. every group representative of a length in
    the ONEX base) costs ``n + m - 1`` vector operations total.  This is
    the kernel that makes "DTW over the compact base" interactive.

    With ``with_path_length=True`` the kernel also tracks, per cell, the
    length of the warping path :func:`dtw_path` would trace back — same
    tie-breaking: diagonal, then vertical, then horizontal — and returns
    ``(distances, path_lengths)``.  ``distances / path_lengths`` is then
    bit-identical to ``dtw_path(...).normalized_distance`` without any
    per-candidate traceback, which is what lets the ONEX member refinement
    rank whole groups on normalised DTW in one batch.

    **Paired mode**: *x* may itself be a 2-D stack with the same row count
    as *rows*, in which case row ``i`` of the result is ``DTW(x[i],
    rows[i])`` — one kernel invocation evaluates an arbitrary set of
    equal-shape *pairs*.  This is what lets the multi-query execution
    layer stack several queries' candidate sets into a single dynamic
    program instead of paying the kernel dispatch per query.

    Three result-identical implementations sit behind this entry point,
    picked adaptively: a scalar row scan for stacks whose whole dynamic
    program is tiny (numpy dispatch overhead would dominate), the
    band-limited kernel of :func:`dtw_distance_batch_banded` when a
    Sakoe–Chiba window covers a sliver of each matrix, and the full
    anti-diagonal kernel otherwise.  The property-test suite asserts
    bitwise agreement between all three.
    """
    a = _as_query_stack(x)
    mat = _as_batch_rows(rows)
    if a.ndim == 2 and a.shape[0] != mat.shape[0]:
        raise ValidationError(
            f"paired mode needs matching row counts, got {a.shape[0]} "
            f"queries for {mat.shape[0]} candidates"
        )
    if mat.shape[0] == 0:
        empty = np.empty(0)
        return (empty, np.empty(0, dtype=np.int64)) if with_path_length else empty
    squared = _ground_is_squared(ground)
    n, m = a.shape[-1], mat.shape[1]
    band = effective_band(n, m, window)
    if mat.shape[0] * n * m <= _SCALAR_CELLS_PER_DIAGONAL * (n + m - 1):
        return _dtw_batch_scalar(a, mat, band, squared, with_path_length)
    if band is not None and band < max(n, m) - 1:
        # Any band that excludes at least one cell shrinks the banded
        # kernel's working strips below the full kernel's buffers; the
        # microbenchmarks show it ahead across the whole radius range.
        return _dtw_batch_banded(a, mat, band, squared, with_path_length)
    return _dtw_batch_full(a, mat, band, squared, with_path_length)


def dtw_distance_batch_banded(
    x,
    rows,
    *,
    window: int,
    ground: str = "l1",
    with_path_length: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Band-limited batch DTW: ``O(B·(2r+1))`` state per anti-diagonal.

    Same contract as :func:`dtw_distance_batch` but *window* is required:
    only cells inside the (widened, see :func:`effective_band`) Sakoe–Chiba
    band are ever materialised, so the per-diagonal working set is the band
    width instead of the full sequence length — the memory-traffic win that
    makes narrow-band batch DTW cheap on long sequences.  Results
    (distances and tracked path lengths) are bit-identical to the full
    kernel's; the property-test suite sweeps every radius.
    """
    if window is None:
        raise ValidationError("dtw_distance_batch_banded requires a finite window")
    a = _as_query_stack(x)
    mat = _as_batch_rows(rows)
    if a.ndim == 2 and a.shape[0] != mat.shape[0]:
        raise ValidationError(
            f"paired mode needs matching row counts, got {a.shape[0]} "
            f"queries for {mat.shape[0]} candidates"
        )
    if mat.shape[0] == 0:
        empty = np.empty(0)
        return (empty, np.empty(0, dtype=np.int64)) if with_path_length else empty
    band = effective_band(a.shape[-1], mat.shape[1], window)
    return _dtw_batch_banded(
        a, mat, band, _ground_is_squared(ground), with_path_length
    )


def _dtw_batch_full(
    a: np.ndarray,
    mat: np.ndarray,
    band: int | None,
    squared: bool,
    with_path_length: bool,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Full-width anti-diagonal kernel (three rotating ``(g, n)`` buffers)."""
    n, m = a.shape[-1], mat.shape[1]
    g = mat.shape[0]
    aq = a if a.ndim == 2 else a[None, :]

    # prev / prevprev hold anti-diagonals k-1 and k-2; axis 0 is the
    # candidate, axis 1 the row index i of the cost matrix.  The three
    # buffers rotate in place instead of reallocating per diagonal.
    prev = np.full((g, n), _INF)
    prevprev = np.full((g, n), _INF)
    spare = np.empty((g, n))
    pad = np.full((g, 1), _INF)
    if with_path_length:
        # Path lengths of the tie-broken optimal prefix path per cell.
        plen_prev = np.zeros((g, n), dtype=np.int64)
        plen_prevprev = np.zeros((g, n), dtype=np.int64)
        plen_spare = np.empty((g, n), dtype=np.int64)
        plen_pad = np.zeros((g, 1), dtype=np.int64)
    for k in range(n + m - 1):
        i_lo = max(0, k - m + 1)
        i_hi = min(n - 1, k)
        idx = np.arange(i_lo, i_hi + 1)
        # Ground costs for cells (i, k-i) on this diagonal.
        d = aq[:, i_lo : i_hi + 1] - mat[:, k - idx]
        d = d * d if squared else np.abs(d)

        cur = spare
        cur.fill(_INF)
        if with_path_length:
            plen_cur = plen_spare
            plen_cur.fill(0)
        if k == 0:
            cur[:, 0] = d[:, 0]
            if with_path_length:
                plen_cur[:, 0] = 1
        else:
            if i_lo > 0:
                up = prev[:, idx - 1]
                diag = prevprev[:, idx - 1]
            else:
                up = np.concatenate([pad, prev[:, idx[1:] - 1]], axis=1)
                diag = np.concatenate([pad, prevprev[:, idx[1:] - 1]], axis=1)
            left = prev[:, idx]
            best = np.minimum(np.minimum(up, left), diag)
            cur[:, idx] = d + best
            if with_path_length:
                if i_lo > 0:
                    lup = plen_prev[:, idx - 1]
                    ldiag = plen_prevprev[:, idx - 1]
                else:
                    lup = np.concatenate([plen_pad, plen_prev[:, idx[1:] - 1]], axis=1)
                    ldiag = np.concatenate(
                        [plen_pad, plen_prevprev[:, idx[1:] - 1]], axis=1
                    )
                lleft = plen_prev[:, idx]
                # Predecessor choice mirrors dtw_path's traceback order:
                # diagonal wins ties, then vertical, then horizontal.
                from_pred = np.where(
                    (diag <= up) & (diag <= left),
                    ldiag,
                    np.where(up <= left, lup, lleft),
                )
                plen_cur[:, idx] = from_pred + 1
        if band is not None:
            outside = np.abs(idx - (k - idx)) > band
            if outside.any():
                cur[:, idx[outside]] = _INF
        spare, prevprev, prev = prevprev, prev, cur
        if with_path_length:
            plen_spare, plen_prevprev, plen_prev = (
                plen_prevprev,
                plen_prev,
                plen_cur,
            )
    if with_path_length:
        return prev[:, n - 1].copy(), plen_prev[:, n - 1].copy()
    return prev[:, n - 1].copy()


def _band_rows(k: int, n: int, m: int, band: int) -> tuple[int, int]:
    """Row range ``[i_lo, i_hi]`` of diagonal *k*'s in-band cells.

    Cell ``(i, k - i)`` is in the matrix when ``max(0, k-m+1) <= i <=
    min(n-1, k)`` and inside the band when ``|2i - k| <= band``.
    """
    i_lo = max(0, k - m + 1, -((band - k) // 2) if k > band else 0)
    i_hi = min(n - 1, k, (k + band) // 2)
    return i_lo, i_hi


def _shifted(
    arr: np.ndarray, lo: int, i_lo: int, i_hi: int, fill
) -> np.ndarray:
    """Values for rows ``[i_lo, i_hi]`` from a diagonal buffer.

    *arr* holds one value per row in ``[lo, lo + arr.shape[1] - 1]``;
    requested rows outside that coverage read as *fill* (``inf`` cost /
    ``0`` path length, matching the full kernel's uninitialised cells).
    Row ranges are contiguous, so this is pure slicing — no gathers.
    """
    width = i_hi - i_lo + 1
    s0 = max(i_lo, lo)
    s1 = min(i_hi, lo + arr.shape[1] - 1)
    if s0 == i_lo and s1 == i_hi:
        return arr[:, s0 - lo : s1 - lo + 1]
    out = np.full((arr.shape[0], width), fill, dtype=arr.dtype)
    if s0 <= s1:
        out[:, s0 - i_lo : s1 - i_lo + 1] = arr[:, s0 - lo : s1 - lo + 1]
    return out


def _dtw_batch_banded(
    a: np.ndarray,
    mat: np.ndarray,
    band: int,
    squared: bool,
    with_path_length: bool,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Band-limited anti-diagonal kernel.

    Only in-band cells of each diagonal are materialised, as a ``(g, w)``
    strip plus the row offset it starts at; predecessors are recovered by
    re-aligning the two previous strips (:func:`_shifted`).  Cost per
    diagonal is ``O(g * band)`` instead of ``O(g * n)``.
    """
    n, m = a.shape[-1], mat.shape[1]
    g = mat.shape[0]
    aq = a if a.ndim == 2 else a[None, :]
    prev = prevprev = None
    prev_lo = prevprev_lo = 0
    plen_prev = plen_prevprev = None
    for k in range(n + m - 1):
        i_lo, i_hi = _band_rows(k, n, m, band)
        idx = np.arange(i_lo, i_hi + 1)
        d = aq[:, i_lo : i_hi + 1] - mat[:, k - idx]
        d = d * d if squared else np.abs(d)
        if k == 0:
            cur = d
            if with_path_length:
                plen_cur = np.ones((g, 1), dtype=np.int64)
        else:
            up = _shifted(prev, prev_lo + 1, i_lo, i_hi, _INF)
            left = _shifted(prev, prev_lo, i_lo, i_hi, _INF)
            if prevprev is not None:
                diag = _shifted(prevprev, prevprev_lo + 1, i_lo, i_hi, _INF)
            else:
                diag = np.full((g, i_hi - i_lo + 1), _INF)
            best = np.minimum(np.minimum(up, left), diag)
            cur = d + best
            if with_path_length:
                lup = _shifted(plen_prev, prev_lo + 1, i_lo, i_hi, 0)
                lleft = _shifted(plen_prev, prev_lo, i_lo, i_hi, 0)
                if plen_prevprev is not None:
                    ldiag = _shifted(plen_prevprev, prevprev_lo + 1, i_lo, i_hi, 0)
                else:
                    ldiag = np.zeros((g, i_hi - i_lo + 1), dtype=np.int64)
                from_pred = np.where(
                    (diag <= up) & (diag <= left),
                    ldiag,
                    np.where(up <= left, lup, lleft),
                )
                plen_cur = from_pred + 1
        prevprev, prev = prev, cur
        prevprev_lo, prev_lo = prev_lo, i_lo
        if with_path_length:
            plen_prevprev, plen_prev = plen_prev, plen_cur
    if with_path_length:
        return prev[:, -1].copy(), plen_prev[:, -1].copy()
    return prev[:, -1].copy()


def _dtw_batch_scalar(
    a: np.ndarray,
    mat: np.ndarray,
    band: int | None,
    squared: bool,
    with_path_length: bool,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Row-scan fallback for tiny stacks (numpy overhead would dominate).

    Plain Python floats throughout; the arithmetic (and the diagonal →
    vertical → horizontal tie-break of the tracked path length) is the
    same double-precision sequence as the vectorised kernels', so the
    results are bit-identical.
    """
    n, m = a.shape[-1], mat.shape[1]
    g = mat.shape[0]
    paired = a.ndim == 2
    out = np.empty(g)
    plens = np.empty(g, dtype=np.int64)
    stack = a.tolist()
    for r in range(g):
        xs = stack[r] if paired else stack
        ys = mat[r].tolist()
        cost_prev = [_INF] * m
        plen_prev = [0] * m
        for i in range(n):
            j_lo, j_hi = 0, m - 1
            if band is not None:
                j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
            cost_cur = [_INF] * m
            plen_cur = [0] * m if with_path_length else plen_prev
            xi = xs[i]
            for j in range(j_lo, j_hi + 1):
                diff = xi - ys[j]
                d = diff * diff if squared else abs(diff)
                if i == 0 and j == 0:
                    cost_cur[0] = d
                    if with_path_length:
                        plen_cur[0] = 1
                    continue
                up = cost_prev[j]
                diag = cost_prev[j - 1] if j > 0 else _INF
                left = cost_cur[j - 1] if j > 0 else _INF
                if with_path_length:
                    if diag <= up and diag <= left:
                        best, plen = diag, plen_prev[j - 1]
                    elif up <= left:
                        best, plen = up, plen_prev[j]
                    else:
                        best, plen = left, plen_cur[j - 1]
                    cost_cur[j] = d + best
                    plen_cur[j] = plen + 1
                else:
                    cost_cur[j] = d + (
                        diag
                        if diag <= up and diag <= left
                        else up if up <= left else left
                    )
            cost_prev = cost_cur
            if with_path_length:
                plen_prev = plen_cur
        out[r] = cost_prev[m - 1]
        if with_path_length:
            plens[r] = plen_prev[m - 1]
    if with_path_length:
        return out, plens
    return out


def dtw_distance_condensed(
    rows,
    *,
    pairs: tuple[np.ndarray, np.ndarray] | None = None,
    window: int | None = None,
    ground: str = "l1",
    with_path_length: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Condensed pairwise DTW: every unique row pair through one paired call.

    The pairwise twin of :func:`dtw_distance_batch`: entry ``p`` of the
    result is ``DTW(rows[iu[p]], rows[ju[p]])`` where ``(iu, ju)`` default
    to ``np.triu_indices(len(rows), 1)`` — the condensed upper triangle in
    row-major order, as :func:`scipy.spatial.distance.pdist` lays it out.
    *pairs* restricts the evaluation to an explicit ``(iu, ju)`` subset,
    which is how the seasonal verifier evaluates only the pairs its bound
    prescreen could not decide.  All pairs run as **one** paired-mode
    kernel invocation, so the per-call dispatch cost is paid once per
    group instead of once per pair; with ``with_path_length=True`` the
    tracked path lengths make ``distances / path_lengths`` bit-identical
    to per-pair ``dtw_path(...).normalized_distance``.
    """
    mat = _as_batch_rows(rows)
    if pairs is None:
        iu, ju = np.triu_indices(mat.shape[0], k=1)
    else:
        iu = np.asarray(pairs[0], dtype=np.int64)
        ju = np.asarray(pairs[1], dtype=np.int64)
        if iu.shape != ju.shape or iu.ndim != 1:
            raise ValidationError(
                f"pairs must be matching 1-D index arrays, got shapes "
                f"{iu.shape} / {ju.shape}"
            )
        if iu.size and not (
            0 <= iu.min() and iu.max() < mat.shape[0]
            and 0 <= ju.min() and ju.max() < mat.shape[0]
        ):
            raise ValidationError(
                f"pair indices out of range 0..{mat.shape[0] - 1}"
            )
    if not iu.size:
        empty = np.empty(0)
        return (empty, np.empty(0, dtype=np.int64)) if with_path_length else empty
    return dtw_distance_batch(
        mat[iu],
        mat[ju],
        window=window,
        ground=ground,
        with_path_length=with_path_length,
    )


def dtw_distance(
    x,
    y,
    *,
    window: int | None = None,
    ground: str = "l1",
    normalized: bool = False,
) -> float:
    """DTW distance via the vectorised anti-diagonal kernel.

    With ``normalized=True`` the summed cost is divided by the optimal
    warping-path length (requires a traceback, so it delegates to
    :func:`dtw_path`).
    """
    if normalized:
        return dtw_path(x, y, window=window, ground=ground).normalized_distance
    b = as_sequence(y, name="y")
    return float(dtw_distance_batch(x, b[None, :], window=window, ground=ground)[0])


def dtw_path(x, y, *, window: int | None = None, ground: str = "l1") -> DtwResult:
    """DTW distance plus the optimal warping path (traceback).

    Tie-breaking prefers the diagonal step, then the vertical, then the
    horizontal — producing the shortest path among optimal ones in the
    common case, which keeps the Fig. 2 "matched points" connectors tidy.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    cost = dtw_cost_matrix(a, b, window=window, ground=ground)
    n, m = cost.shape
    distance = float(cost[n - 1, m - 1])
    if not math.isfinite(distance):
        raise ValidationError(
            "no feasible warping path (window too narrow for these lengths)"
        )
    path: list[tuple[int, int]] = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while (i, j) != (0, 0):
        candidates: list[tuple[float, tuple[int, int]]] = []
        if i > 0 and j > 0:
            candidates.append((cost[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((cost[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((cost[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return DtwResult(distance=distance, path=tuple(path))


def dtw_distance_early_abandon(
    x,
    y,
    threshold: float,
    *,
    window: int | None = None,
    ground: str = "l1",
    cumulative_bound: np.ndarray | None = None,
) -> float:
    """Banded DTW that abandons once the distance provably exceeds *threshold*.

    Returns the exact DTW distance if it is ``<= threshold`` and ``inf``
    otherwise.  After each row the minimum feasible cell is compared against
    the threshold; with *cumulative_bound* (an array where entry ``i`` lower
    bounds the cost still to be paid after row ``i``, as in the UCR Suite's
    reversed LB_Keogh trick) the comparison is tightened to
    ``row_min + cumulative_bound[i + 1]``.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    if not math.isfinite(threshold):
        raise ValidationError("threshold must be finite")
    squared = _ground_is_squared(ground)
    n, m = a.shape[0], b.shape[0]
    band = effective_band(n, m, window)
    if cumulative_bound is not None and len(cumulative_bound) < n + 1:
        raise ValidationError(
            "cumulative_bound must have at least len(x) + 1 entries"
        )

    prev = [_INF] * m
    xs = a.tolist()
    ys = b.tolist()
    for i in range(n):
        j_lo, j_hi = 0, m - 1
        if band is not None:
            j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
        cur = [_INF] * m
        running = _INF
        row_min = _INF
        xi = xs[i]
        for j in range(j_lo, j_hi + 1):
            diff = xi - ys[j]
            d = diff * diff if squared else abs(diff)
            if i == 0 and j == 0:
                best = 0.0
            else:
                up = prev[j]
                diag = prev[j - 1] if j > 0 else _INF
                best = min(up, diag, running)
            value = d + best
            cur[j] = value
            running = value
            if value < row_min:
                row_min = value
        # The bound applies on every row including the last: entry ``n``
        # lower-bounds the cost still unpaid after the final row (zero for
        # suffix-sum bounds, but callers may supply a tighter terminal
        # bound and it must not be silently dropped).
        remaining = (
            float(cumulative_bound[i + 1]) if cumulative_bound is not None else 0.0
        )
        if row_min + remaining > threshold:
            return _INF
        prev = cur
    final = prev[m - 1]
    return final if final <= threshold else _INF
