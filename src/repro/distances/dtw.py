"""Dynamic time warping: distances, optimal paths, bands, early abandoning.

Conventions (DESIGN.md §2): the ground cost between two points is
``|a - b|`` by default (``ground="l1"``); ``ground="squared"`` is provided
for the UCR Suite baseline, which follows Rakthanmanon et al. and works on
sums of squared differences.  ``DTW(x, y)`` is the minimum over warping
paths of the summed ground cost; the *normalised* DTW divides by the length
of the optimal path, which is what makes a single similarity threshold
``ST`` comparable across sequence lengths in ONEX.

Three implementations are deliberately kept side by side:

- :func:`dtw_distance` — anti-diagonal vectorised DP (no path), the fast
  kernel used by the ONEX query processor.
- :func:`dtw_cost_matrix` / :func:`dtw_path` — straightforward row-scan DP
  with traceback, used where the warping path itself is needed (the visual
  "matched points" connectors of Fig. 2 and the ED→DTW transfer bounds).
- :func:`dtw_distance_early_abandon` — row-scan with a best-so-far
  threshold and optional cumulative lower bounds, used by the UCR Suite
  baseline and kept as the scalar fallback of ONEX's member refinement
  (the default batched cascade is LB_Kim → LB_Keogh → :func:`dtw_distance_batch`,
  see :mod:`repro.core.query`).

The row-scan and vectorised kernels are cross-checked against each other in
the property-test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "DtwResult",
    "dtw_cost_matrix",
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_distance_early_abandon",
    "dtw_path",
    "effective_band",
]

_INF = math.inf


def _ground_is_squared(ground: str) -> bool:
    if ground == "l1":
        return False
    if ground == "squared":
        return True
    raise ValidationError(f"ground must be 'l1' or 'squared', got {ground!r}")


def effective_band(n: int, m: int, window: int | None) -> int | None:
    """Resolve a Sakoe–Chiba radius for an ``n`` x ``m`` alignment.

    ``None`` means unconstrained.  A finite *window* is widened to at least
    ``|n - m|`` so that the corner cell stays reachable — the standard
    convention for banded DTW on different-length inputs.
    """
    if window is None:
        return None
    if window < 0:
        raise ValidationError(f"window must be >= 0, got {window}")
    return max(window, abs(n - m))


@dataclass(frozen=True)
class DtwResult:
    """Outcome of a path-producing DTW computation.

    Attributes
    ----------
    distance:
        Summed ground cost along the optimal warping path.
    path:
        Tuple of ``(i, j)`` index pairs, monotone in both coordinates,
        starting at ``(0, 0)`` and ending at ``(n-1, m-1)``.
    """

    distance: float
    path: tuple[tuple[int, int], ...]

    @property
    def path_length(self) -> int:
        return len(self.path)

    @property
    def normalized_distance(self) -> float:
        """Distance divided by warping-path length (ONEX's comparable DTW)."""
        return self.distance / len(self.path)

    def multiplicities(self, axis: int, length: int) -> np.ndarray:
        """How many path entries touch each index along *axis* (0=x, 1=y).

        This is the ``m_j`` vector of the ED→DTW transfer lemma
        (DESIGN.md §2).
        """
        counts = np.zeros(length, dtype=np.int64)
        for pair in self.path:
            counts[pair[axis]] += 1
        return counts


def dtw_cost_matrix(x, y, *, window: int | None = None, ground: str = "l1") -> np.ndarray:
    """Full cumulative-cost matrix ``C`` with ``C[i, j] = DTW(x[:i+1], y[:j+1])``.

    Cells outside the Sakoe–Chiba band are ``inf``.  Quadratic memory; use
    :func:`dtw_distance` when only the final distance is needed.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    squared = _ground_is_squared(ground)
    n, m = a.shape[0], b.shape[0]
    band = effective_band(n, m, window)

    cost = np.full((n, m), _INF, dtype=np.float64)
    for i in range(n):
        j_lo, j_hi = 0, m - 1
        if band is not None:
            j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
        row_prev = cost[i - 1] if i > 0 else None
        running = _INF  # cost[i, j-1] as the scan moves right
        xi = a[i]
        for j in range(j_lo, j_hi + 1):
            diff = xi - b[j]
            d = diff * diff if squared else abs(diff)
            if i == 0 and j == 0:
                best = 0.0
            else:
                up = row_prev[j] if row_prev is not None else _INF
                diag = row_prev[j - 1] if (row_prev is not None and j > 0) else _INF
                best = min(up, diag, running)
            value = d + best
            cost[i, j] = value
            running = value
    return cost


def dtw_distance_batch(
    x,
    rows,
    *,
    window: int | None = None,
    ground: str = "l1",
    with_path_length: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """DTW from *x* to every row of *rows* in one vectorised dynamic program.

    Each anti-diagonal of the cost matrix depends only elementwise on the
    two previous anti-diagonals, and the recurrence is identical across
    candidates, so evaluating the query against a whole stack of
    equal-length sequences (e.g. every group representative of a length in
    the ONEX base) costs ``n + m - 1`` vector operations total.  This is
    the kernel that makes "DTW over the compact base" interactive.

    With ``with_path_length=True`` the kernel also tracks, per cell, the
    length of the warping path :func:`dtw_path` would trace back — same
    tie-breaking: diagonal, then vertical, then horizontal — and returns
    ``(distances, path_lengths)``.  ``distances / path_lengths`` is then
    bit-identical to ``dtw_path(...).normalized_distance`` without any
    per-candidate traceback, which is what lets the ONEX member refinement
    rank whole groups on normalised DTW in one batch.
    """
    a = as_sequence(x, name="x")
    mat = np.asarray(rows, dtype=np.float64)
    if mat.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {mat.shape}")
    if mat.shape[0] == 0:
        empty = np.empty(0)
        return (empty, np.empty(0, dtype=np.int64)) if with_path_length else empty
    if mat.shape[1] == 0:
        raise ValidationError("rows must have at least one column")
    if not np.all(np.isfinite(mat)):
        raise ValidationError("rows contain NaN or infinite values")
    squared = _ground_is_squared(ground)
    n, m = a.shape[0], mat.shape[1]
    g = mat.shape[0]
    band = effective_band(n, m, window)

    # prev / prevprev hold anti-diagonals k-1 and k-2; axis 0 is the
    # candidate, axis 1 the row index i of the cost matrix.
    prev = np.full((g, n), _INF)
    prevprev = np.full((g, n), _INF)
    pad = np.full((g, 1), _INF)
    if with_path_length:
        # Path lengths of the tie-broken optimal prefix path per cell.
        plen_prev = np.zeros((g, n), dtype=np.int64)
        plen_prevprev = np.zeros((g, n), dtype=np.int64)
        plen_pad = np.zeros((g, 1), dtype=np.int64)
    for k in range(n + m - 1):
        i_lo = max(0, k - m + 1)
        i_hi = min(n - 1, k)
        idx = np.arange(i_lo, i_hi + 1)
        # Ground costs for cells (i, k-i) on this diagonal.
        d = a[i_lo : i_hi + 1][None, :] - mat[:, k - idx]
        d = d * d if squared else np.abs(d)

        cur = np.full((g, n), _INF)
        if with_path_length:
            plen_cur = np.zeros((g, n), dtype=np.int64)
        if k == 0:
            cur[:, 0] = d[:, 0]
            if with_path_length:
                plen_cur[:, 0] = 1
        else:
            if i_lo > 0:
                up = prev[:, idx - 1]
                diag = prevprev[:, idx - 1]
            else:
                up = np.concatenate([pad, prev[:, idx[1:] - 1]], axis=1)
                diag = np.concatenate([pad, prevprev[:, idx[1:] - 1]], axis=1)
            left = prev[:, idx]
            best = np.minimum(np.minimum(up, left), diag)
            cur[:, idx] = d + best
            if with_path_length:
                if i_lo > 0:
                    lup = plen_prev[:, idx - 1]
                    ldiag = plen_prevprev[:, idx - 1]
                else:
                    lup = np.concatenate([plen_pad, plen_prev[:, idx[1:] - 1]], axis=1)
                    ldiag = np.concatenate(
                        [plen_pad, plen_prevprev[:, idx[1:] - 1]], axis=1
                    )
                lleft = plen_prev[:, idx]
                # Predecessor choice mirrors dtw_path's traceback order:
                # diagonal wins ties, then vertical, then horizontal.
                from_pred = np.where(
                    (diag <= up) & (diag <= left),
                    ldiag,
                    np.where(up <= left, lup, lleft),
                )
                plen_cur[:, idx] = from_pred + 1
        if band is not None:
            outside = np.abs(idx - (k - idx)) > band
            if outside.any():
                cur[:, idx[outside]] = _INF
        prevprev, prev = prev, cur
        if with_path_length:
            plen_prevprev, plen_prev = plen_prev, plen_cur
    if with_path_length:
        return prev[:, n - 1], plen_prev[:, n - 1]
    return prev[:, n - 1]


def dtw_distance(
    x,
    y,
    *,
    window: int | None = None,
    ground: str = "l1",
    normalized: bool = False,
) -> float:
    """DTW distance via the vectorised anti-diagonal kernel.

    With ``normalized=True`` the summed cost is divided by the optimal
    warping-path length (requires a traceback, so it delegates to
    :func:`dtw_path`).
    """
    if normalized:
        return dtw_path(x, y, window=window, ground=ground).normalized_distance
    b = as_sequence(y, name="y")
    return float(dtw_distance_batch(x, b[None, :], window=window, ground=ground)[0])


def dtw_path(x, y, *, window: int | None = None, ground: str = "l1") -> DtwResult:
    """DTW distance plus the optimal warping path (traceback).

    Tie-breaking prefers the diagonal step, then the vertical, then the
    horizontal — producing the shortest path among optimal ones in the
    common case, which keeps the Fig. 2 "matched points" connectors tidy.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    cost = dtw_cost_matrix(a, b, window=window, ground=ground)
    n, m = cost.shape
    distance = float(cost[n - 1, m - 1])
    if not math.isfinite(distance):
        raise ValidationError(
            "no feasible warping path (window too narrow for these lengths)"
        )
    path: list[tuple[int, int]] = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while (i, j) != (0, 0):
        candidates: list[tuple[float, tuple[int, int]]] = []
        if i > 0 and j > 0:
            candidates.append((cost[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((cost[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((cost[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return DtwResult(distance=distance, path=tuple(path))


def dtw_distance_early_abandon(
    x,
    y,
    threshold: float,
    *,
    window: int | None = None,
    ground: str = "l1",
    cumulative_bound: np.ndarray | None = None,
) -> float:
    """Banded DTW that abandons once the distance provably exceeds *threshold*.

    Returns the exact DTW distance if it is ``<= threshold`` and ``inf``
    otherwise.  After each row the minimum feasible cell is compared against
    the threshold; with *cumulative_bound* (an array where entry ``i`` lower
    bounds the cost still to be paid after row ``i``, as in the UCR Suite's
    reversed LB_Keogh trick) the comparison is tightened to
    ``row_min + cumulative_bound[i + 1]``.
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    if not math.isfinite(threshold):
        raise ValidationError("threshold must be finite")
    squared = _ground_is_squared(ground)
    n, m = a.shape[0], b.shape[0]
    band = effective_band(n, m, window)
    if cumulative_bound is not None and len(cumulative_bound) < n + 1:
        raise ValidationError(
            "cumulative_bound must have at least len(x) + 1 entries"
        )

    prev = [_INF] * m
    xs = a.tolist()
    ys = b.tolist()
    for i in range(n):
        j_lo, j_hi = 0, m - 1
        if band is not None:
            j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
        cur = [_INF] * m
        running = _INF
        row_min = _INF
        xi = xs[i]
        for j in range(j_lo, j_hi + 1):
            diff = xi - ys[j]
            d = diff * diff if squared else abs(diff)
            if i == 0 and j == 0:
                best = 0.0
            else:
                up = prev[j]
                diag = prev[j - 1] if j > 0 else _INF
                best = min(up, diag, running)
            value = d + best
            cur[j] = value
            running = value
            if value < row_min:
                row_min = value
        # The bound applies on every row including the last: entry ``n``
        # lower-bounds the cost still unpaid after the final row (zero for
        # suffix-sum bounds, but callers may supply a tighter terminal
        # bound and it must not be silently dropped).
        remaining = (
            float(cumulative_bound[i + 1]) if cumulative_bound is not None else 0.0
        )
        if row_min + remaining > threshold:
            return _INF
        prev = cur
    final = prev[m - 1]
    return final if final <= threshold else _INF
