"""Cheap-to-expensive lower bounds for DTW: LB_Kim and LB_Keogh.

These implement the "early pruning of unpromising candidates" optimisation
of §3.3 and are the core of the UCR Suite baseline (Rakthanmanon et al.,
SIGKDD 2012).  Every function here returns a value that provably never
exceeds the corresponding (banded) DTW distance, which the property-test
suite checks exhaustively; pruning with them therefore never changes
results, only speed.

Scalar and batched forms are provided side by side: :func:`lb_kim` /
:func:`lb_keogh` bound one candidate, while :func:`lb_kim_batch` /
:func:`lb_keogh_batch` bound every row of a 2-D candidate stack in a
handful of vector operations.  The batched forms are the first two stages
of the ONEX member-refinement cascade (LB_Kim → LB_Keogh → batched DTW,
see :mod:`repro.core.query`); each is cross-checked row-by-row against its
scalar twin by the property-test suite.

All bounds take a ``ground`` argument matching :mod:`repro.distances.dtw`:
``"l1"`` (ONEX convention) or ``"squared"`` (UCR convention).
"""

from __future__ import annotations

import numpy as np

from repro.distances.dtw import _as_query_stack, _ground_is_squared
from repro.distances.envelope import keogh_envelope, keogh_envelope_batch
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "lb_cascade",
    "lb_keogh",
    "lb_keogh_batch",
    "lb_keogh_reverse_batch",
    "lb_keogh_terms",
    "lb_kim",
    "lb_kim_batch",
    "lb_kim_endpoints_batch",
    "lb_pairwise_table",
]


def _cost(diff: np.ndarray, squared: bool) -> np.ndarray:
    return diff * diff if squared else np.abs(diff)


def lb_kim(x, y, *, ground: str = "l1") -> float:
    """Constant-time bound from the endpoints of both sequences.

    Every warping path matches ``x[0]`` with ``y[0]`` and ``x[-1]`` with
    ``y[-1]``, so those two ground costs are always paid.  When both
    sequences have at least three points the second and penultimate path
    cells contribute as well: the second cell is one of (1,0), (1,1), (0,1)
    and is distinct from both endpoint cells, so its cheapest realisation
    can be added (symmetrically for the penultimate cell).
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    squared = _ground_is_squared(ground)

    def d(u: float, v: float) -> float:
        diff = u - v
        return diff * diff if squared else abs(diff)

    bound = d(a[0], b[0])
    if a.shape[0] > 1 or b.shape[0] > 1:
        bound += d(a[-1], b[-1])
    n, m = a.shape[0], b.shape[0]
    if n >= 3 and m >= 3 and (n >= 4 or m >= 4):
        # With 3x3 alignments the second and penultimate path cells can both
        # be (1, 1); requiring one side >= 4 keeps the candidate sets
        # disjoint so the two extra terms never double count a cell.
        bound += min(d(a[1], b[0]), d(a[1], b[1]), d(a[0], b[1]))
        bound += min(d(a[-2], b[-1]), d(a[-2], b[-2]), d(a[-1], b[-2]))
    return float(bound)


def _as_candidate_stack(rows) -> np.ndarray:
    mat = np.asarray(rows, dtype=np.float64)
    if mat.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {mat.shape}")
    if mat.shape[0] and mat.shape[1] == 0:
        raise ValidationError("rows must have at least one column")
    if not np.all(np.isfinite(mat)):
        raise ValidationError("rows contain NaN or infinite values")
    return mat


def lb_kim_batch(x, rows, *, ground: str = "l1") -> np.ndarray:
    """:func:`lb_kim` of *x* against every row of a 2-D stack at once.

    Semantically identical to calling :func:`lb_kim` per row (the property
    tests assert bitwise agreement) but evaluated with a constant number of
    vector operations over the whole stack — the first, cheapest stage of
    the batched member-refinement cascade.
    """
    a = as_sequence(x, name="x")
    mat = _as_candidate_stack(rows)
    if mat.shape[0] == 0:
        return np.empty(0)
    squared = _ground_is_squared(ground)

    def d(u, v) -> np.ndarray:
        diff = u - v
        return diff * diff if squared else np.abs(diff)

    bound = d(a[0], mat[:, 0])
    n, m = a.shape[0], mat.shape[1]
    if n > 1 or m > 1:
        bound = bound + d(a[-1], mat[:, -1])
    if n >= 3 and m >= 3 and (n >= 4 or m >= 4):
        second = np.minimum(
            np.minimum(d(a[1], mat[:, 0]), d(a[1], mat[:, 1])), d(a[0], mat[:, 1])
        )
        penult = np.minimum(
            np.minimum(d(a[-2], mat[:, -1]), d(a[-2], mat[:, -2])),
            d(a[-1], mat[:, -2]),
        )
        bound = bound + second + penult
    return bound.astype(np.float64, copy=False)


def _as_query_rows(x) -> tuple[np.ndarray, bool]:
    """*x* as a ``(Q, n)`` stack plus whether the input was a single query.

    Shares the batch kernel's validator so "what counts as a query
    stack" is defined in exactly one place.
    """
    probe = _as_query_stack(x)
    if probe.ndim == 2:
        return probe, False
    return probe[None, :], True


def lb_kim_endpoints_batch(
    x, endpoints: np.ndarray, m: int, *, ground: str = "l1"
) -> np.ndarray:
    """:func:`lb_kim_batch` evaluated from persisted endpoint summaries.

    *endpoints* is a ``(G, 4)`` array whose columns are each candidate's
    first, second, penultimate, and last value (``rows[:, [0, 1, -2, -1]]``
    — well defined for any length >= 2) and *m* the candidates' common
    length.  Bitwise identical to :func:`lb_kim_batch` on the full stack
    (property-tested); this is the form the representative-layer cascade
    uses so the constant-time bound never touches the centroid matrix.
    *x* may also be a ``(Q, n)`` stack of equal-length queries, giving a
    ``(Q, G)`` bound table in one broadcasted evaluation (the multi-query
    planner's bound stage).
    """
    qs, single = _as_query_rows(x)
    pts = np.asarray(endpoints, dtype=np.float64)
    if pts.ndim != 2 or (pts.shape[0] and pts.shape[1] != 4):
        raise ValidationError(f"endpoints must be (G, 4), got shape {pts.shape}")
    if m < 2:
        raise ValidationError(f"candidate length must be >= 2, got {m}")
    if pts.shape[0] == 0:
        return np.empty(0) if single else np.empty((qs.shape[0], 0))
    squared = _ground_is_squared(ground)

    def d(u, v) -> np.ndarray:
        # u: one value per query (Q,); v: one value per candidate (G,).
        diff = u[:, None] - v[None, :]
        return diff * diff if squared else np.abs(diff)

    first, second, penult, last = (pts[:, c] for c in range(4))
    bound = d(qs[:, 0], first)
    n = qs.shape[1]
    if n > 1 or m > 1:
        bound = bound + d(qs[:, -1], last)
    if n >= 3 and m >= 3 and (n >= 4 or m >= 4):
        # See lb_kim for why one side must have >= 4 points: it keeps the
        # second/penultimate candidate cell sets disjoint from the
        # endpoint cells, so no ground cost is double counted.
        bound = bound + np.minimum(
            np.minimum(d(qs[:, 1], first), d(qs[:, 1], second)),
            d(qs[:, 0], second),
        )
        bound = bound + np.minimum(
            np.minimum(d(qs[:, -2], last), d(qs[:, -2], penult)),
            d(qs[:, -1], penult),
        )
    return bound[0] if single else bound


def lb_keogh_reverse_batch(
    x, lower: np.ndarray, upper: np.ndarray, *, ground: str = "l1"
) -> np.ndarray:
    """Keogh bound of a sequence against many candidate envelopes.

    The mirror image of :func:`lb_keogh_batch`: *lower*/*upper* are per-
    candidate envelopes — ``(G, n)`` arrays, or ``(G, 1)`` per-candidate
    global min/max bands — and the bound for candidate ``g`` is the total
    cost of *x* escaping candidate ``g``'s tube.  Provably a DTW lower
    bound whenever each envelope's radius covers the DTW band (a ``(G, 1)``
    min/max band covers any radius, including unconstrained DTW: every
    warping path matches each ``x[i]`` to *some* candidate point).  *x*
    may also be a ``(Q, n)`` query stack, giving a ``(Q, G)`` table.
    """
    qs, single = _as_query_rows(x)
    lo = np.asarray(lower, dtype=np.float64)
    hi = np.asarray(upper, dtype=np.float64)
    if lo.ndim != 2 or hi.shape != lo.shape:
        raise ValidationError(
            f"envelopes must be matching 2-D stacks, got {lo.shape} / {hi.shape}"
        )
    if lo.shape[1] not in (1, qs.shape[1]):
        raise ValidationError(
            f"envelope width {lo.shape[1]} matches neither the sequence "
            f"length {qs.shape[1]} nor a (G, 1) min/max band"
        )
    # (G, n) envelopes broadcast elementwise against each query; (G, 1)
    # min/max bands broadcast every point against the same band.  Either
    # way the breach tensor is (Q, G, n), summed to (Q, G).
    stacked = qs[:, None, :]
    breach = np.where(
        stacked > hi, stacked - hi, np.where(stacked < lo, lo - stacked, 0.0)
    )
    out = _cost(breach, _ground_is_squared(ground)).sum(axis=2)
    return out[0] if single else out


def lb_keogh_terms(candidate, lower: np.ndarray, upper: np.ndarray, *, ground: str = "l1") -> np.ndarray:
    """Per-point envelope breach costs (the summands of LB_Keogh).

    The UCR Suite accumulates these in a best-order traversal and also
    reuses the suffix sums as cumulative bounds for DTW early abandoning,
    so the raw terms are exposed separately from their sum.
    """
    c = as_sequence(candidate, name="candidate")
    lo = np.asarray(lower, dtype=np.float64)
    hi = np.asarray(upper, dtype=np.float64)
    if lo.shape != c.shape or hi.shape != c.shape:
        raise ValidationError(
            "envelope and candidate lengths differ: "
            f"{lo.shape[0]}/{hi.shape[0]} vs {c.shape[0]}"
        )
    squared = _ground_is_squared(ground)
    breach = np.where(c > hi, c - hi, np.where(c < lo, lo - c, 0.0))
    return _cost(breach, squared)


def lb_keogh(candidate, lower: np.ndarray, upper: np.ndarray, *, ground: str = "l1") -> float:
    """LB_Keogh: total cost of a candidate escaping the query envelope.

    *lower*/*upper* must come from :func:`repro.distances.envelope.keogh_envelope`
    of the query with radius >= the DTW band radius, and *candidate* must
    have the same length as the query; under those conditions
    ``lb_keogh(c, l, u) <= DTW_banded(q, c)``.
    """
    return float(lb_keogh_terms(candidate, lower, upper, ground=ground).sum())


def lb_keogh_batch(rows, lower: np.ndarray, upper: np.ndarray, *, ground: str = "l1") -> np.ndarray:
    """:func:`lb_keogh` of every row of a 2-D stack against one envelope.

    *lower*/*upper* are the query's Keogh envelope (radius >= the DTW band
    radius); every row must have the query's length.  Returns one bound per
    row, each provably <= the banded DTW distance to the query — the second
    stage of the batched member-refinement cascade.
    """
    mat = _as_candidate_stack(rows)
    lo = np.asarray(lower, dtype=np.float64)
    hi = np.asarray(upper, dtype=np.float64)
    if mat.shape[0] == 0:
        return np.empty(0)
    if lo.shape != (mat.shape[1],) or hi.shape != (mat.shape[1],):
        raise ValidationError(
            "envelope and candidate lengths differ: "
            f"{lo.shape[0]}/{hi.shape[0]} vs {mat.shape[1]}"
        )
    breach = np.where(mat > hi, mat - hi, np.where(mat < lo, lo - mat, 0.0))
    return _cost(breach, _ground_is_squared(ground)).sum(axis=1)


def lb_pairwise_table(
    rows, *, radius: int | None = None, ground: str = "l1"
) -> np.ndarray:
    """Pairwise DTW lower-bound table over all rows of one stack.

    Entry ``(i, j)`` lower-bounds ``DTW(rows[i], rows[j])`` (banded with
    any Sakoe–Chiba radius ``<= radius``; *radius* ``None`` means the full
    length, valid for unconstrained DTW too).  The table is the maximum of
    the LB_Kim endpoint bound and the Keogh envelope bound, each evaluated
    for every pair at once from one broadcasted table — no Python loop over
    pairs.  This is the prescreening stage of the condensed-pairwise
    seasonal verifier: pairs whose bound already decides the question never
    reach :func:`repro.distances.dtw.dtw_distance_condensed`.

    The diagonal is 0 by construction (a sequence never escapes its own
    envelope and its endpoint costs vanish), and the table is symmetric in
    the bound it proves, though LB_Keogh itself is evaluated row-vs-
    envelope so entries ``(i, j)`` and ``(j, i)`` may differ; callers
    reading unique pairs can take ``np.maximum(T, T.T)`` for the tightest
    symmetric form — this function already returns that maximum.
    """
    mat = _as_candidate_stack(rows)
    g, n = mat.shape
    if g == 0:
        return np.empty((0, 0))
    if n < 2:
        raise ValidationError(f"rows must have length >= 2, got {n}")
    if radius is None:
        radius = n - 1
    kim = lb_kim_endpoints_batch(mat, mat[:, [0, 1, -2, -1]], n, ground=ground)
    lo, hi = keogh_envelope_batch(mat, radius)
    keogh = lb_keogh_reverse_batch(mat, lo, hi, ground=ground)
    table = np.maximum(kim, np.maximum(keogh, keogh.T))
    return table


def lb_cascade(
    query,
    candidate,
    threshold: float,
    *,
    radius: int = 0,
    ground: str = "l1",
    envelope: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[bool, float]:
    """Apply LB_Kim then LB_Keogh against a pruning *threshold*.

    Returns ``(pruned, tightest_bound)``.  ``pruned=True`` means the banded
    DTW distance provably exceeds *threshold* and the candidate can be
    skipped.  The query envelope is computed on demand unless supplied
    (callers answering many candidates should pass it in).
    """
    q = as_sequence(query, name="query")
    c = as_sequence(candidate, name="candidate")
    bound = lb_kim(q, c, ground=ground)
    if bound > threshold:
        return True, bound
    if q.shape[0] == c.shape[0]:
        if envelope is None:
            envelope = keogh_envelope(q, radius)
        keogh = lb_keogh(c, envelope[0], envelope[1], ground=ground)
        bound = max(bound, keogh)
        if keogh > threshold:
            return True, bound
    return False, bound
