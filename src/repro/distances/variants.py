"""DTW variants: derivative DTW, weighted DTW, and DBA barycenters.

Extensions beyond the paper's core that a time series library is
expected to ship (cf. tslearn / dtaidistance), and that ONEX's design
discussion motivates directly:

- :func:`derivative_dtw` — DDTW (Keogh & Pazzani, SDM 2001): align
  estimated local slopes instead of raw values, making matching
  level-invariant (the seasonal view's ``remove_level`` sibling).
- :func:`weighted_dtw` — WDTW (Jeong, Jeong & Omitaomu, 2011): a
  sigmoid penalty on warping-path deviation from the diagonal, a softer
  alternative to the hard Sakoe–Chiba band.
- :func:`dtw_barycenter` — DBA (Petitjean, Ketterlin & Gançarski, 2011):
  an average *under DTW*.  ONEX summarises similarity groups by their
  arithmetic centroid (cheap, ED-faithful); DBA is the natural
  alternative representative, and the E12 ablation benchmark quantifies
  the trade-off.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances.dtw import dtw_distance, dtw_path
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["dtw_barycenter", "derivative", "derivative_dtw", "weighted_dtw"]


def derivative(values) -> np.ndarray:
    """Keogh–Pazzani derivative estimate of a sequence.

    ``d_i = ((x_i - x_{i-1}) + (x_{i+1} - x_{i-1}) / 2) / 2`` for interior
    points, with the endpoints copying their neighbours' estimates.
    Requires at least 3 points.
    """
    x = as_sequence(values, name="values")
    if x.shape[0] < 3:
        raise ValidationError("derivative needs at least 3 points")
    interior = ((x[1:-1] - x[:-2]) + (x[2:] - x[:-2]) / 2.0) / 2.0
    return np.concatenate(([interior[0]], interior, [interior[-1]]))


def derivative_dtw(
    x,
    y,
    *,
    window: int | None = None,
    normalized: bool = False,
) -> float:
    """DTW on derivative estimates (DDTW) — shape-of-change alignment.

    Invariant to constant level offsets by construction; two series that
    rise and fall together match even at different absolute levels.
    """
    return dtw_distance(
        derivative(x), derivative(y), window=window, normalized=normalized
    )


def weighted_dtw(x, y, *, g: float = 0.05, w_max: float = 1.0) -> float:
    """Weighted DTW: ground costs scaled by a sigmoid of |i - j|.

    ``w(d) = w_max / (1 + exp(-g * (d - m/2)))`` with ``m`` the longer
    length — small for near-diagonal cells, approaching *w_max* far from
    it.  ``g`` controls how sharply off-diagonal matching is penalised
    (``g=0`` gives a flat ``w_max/2`` weighting, recovering plain DTW up
    to a constant factor).
    """
    a = as_sequence(x, name="x")
    b = as_sequence(y, name="y")
    if g < 0:
        raise ValidationError(f"g must be >= 0, got {g}")
    if w_max <= 0:
        raise ValidationError(f"w_max must be > 0, got {w_max}")
    n, m = a.shape[0], b.shape[0]
    half = max(n, m) / 2.0
    # Precompute weights per |i - j| (bounded by max(n, m) - 1).
    offsets = np.arange(max(n, m))
    weights = w_max / (1.0 + np.exp(-g * (offsets - half)))

    inf = math.inf
    prev = [inf] * m
    for i in range(n):
        cur = [inf] * m
        running = inf
        for j in range(m):
            cost = weights[abs(i - j)] * abs(a[i] - b[j])
            if i == 0 and j == 0:
                best = 0.0
            else:
                diag = prev[j - 1] if j > 0 else inf
                best = min(prev[j], diag, running)
            value = cost + best
            cur[j] = value
            running = value
        prev = cur
    return float(prev[m - 1])


def dtw_barycenter(
    sequences,
    *,
    length: int | None = None,
    iterations: int = 10,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """DBA: the sequence minimising the summed DTW to *sequences*.

    Starts from the medoid (the member with the least summed DTW), then
    repeats: align every member to the current average, assign each
    member point to the average coordinates its warping path touches,
    and replace every coordinate by the mean of its assigned points.
    Converges monotonically in the DBA objective; stops early when the
    average moves less than *tolerance*.

    *length* resamples the initial average to a fixed length (members may
    have heterogeneous lengths); by default the medoid's length is kept.
    """
    members = [as_sequence(s, name="sequence") for s in sequences]
    if not members:
        raise ValidationError("sequences must be non-empty")
    if iterations < 1:
        raise ValidationError("iterations must be >= 1")

    # Medoid initialisation.
    totals = [
        sum(dtw_distance(candidate, other) for other in members)
        for candidate in members
    ]
    average = members[int(np.argmin(totals))].copy()
    if length is not None:
        if length < 1:
            raise ValidationError("length must be >= 1")
        idx = np.linspace(0, average.shape[0] - 1, length)
        average = np.interp(idx, np.arange(average.shape[0]), average)

    for _ in range(iterations):
        sums = np.zeros_like(average)
        counts = np.zeros_like(average)
        for member in members:
            path = dtw_path(average, member).path
            for i, j in path:
                sums[i] += member[j]
                counts[i] += 1
        updated = np.where(counts > 0, sums / np.maximum(counts, 1), average)
        if float(np.abs(updated - average).max()) < tolerance:
            average = updated
            break
        average = updated
    return average
