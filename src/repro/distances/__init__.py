"""Distance substrate: ED family, DTW, envelopes, lower bounds, transfer bounds.

This subpackage is self-contained (numpy only) and provides every distance
primitive the ONEX core and the baselines need:

- :mod:`repro.distances.metrics` — Euclidean-family distances on
  equal-length sequences (L1 / L2 / Chebyshev, raw and length-normalised).
- :mod:`repro.distances.dtw` — dynamic time warping: full matrix, optimal
  warping path, Sakoe–Chiba band, early abandoning, normalised variants.
- :mod:`repro.distances.envelope` — Keogh bounding envelopes in O(n).
- :mod:`repro.distances.lower_bounds` — LB_Kim / LB_Keogh cascades.
- :mod:`repro.distances.bounds` — the ED↔DTW transfer inequality that is
  ONEX's theoretical foundation (DESIGN.md §2).
- :mod:`repro.distances.normalize` — min–max and z-normalisation plus
  streaming statistics.
- :mod:`repro.distances.registry` — the pluggable metric registry mapping
  names to distance kernels, batch kernels, and lower-bound families
  (DESIGN.md §9).
"""

from repro.distances.bounds import (
    TransferBound,
    group_pruning_lower_bound,
    path_multiplicities,
    transfer_bounds,
)
from repro.distances.dtw import (
    DtwResult,
    dtw_cost_matrix,
    dtw_distance,
    dtw_distance_batch,
    dtw_distance_early_abandon,
    dtw_path,
)
from repro.distances.envelope import QueryEnvelopeCache, keogh_envelope
from repro.distances.lower_bounds import (
    lb_cascade,
    lb_keogh,
    lb_keogh_batch,
    lb_kim,
    lb_kim_batch,
)
from repro.distances.metrics import (
    chebyshev,
    euclidean,
    euclidean_l1,
    euclidean_l2,
    normalized_euclidean,
)
from repro.distances.normalize import (
    RunningStats,
    minmax_normalize,
    sliding_mean_std,
    znormalize,
)
from repro.distances.registry import (
    DistanceRegistry,
    MetricSpec,
    get_metric,
    registered_metrics,
)
from repro.distances.variants import (
    derivative,
    derivative_dtw,
    dtw_barycenter,
    weighted_dtw,
)

__all__ = [
    "DistanceRegistry",
    "DtwResult",
    "MetricSpec",
    "QueryEnvelopeCache",
    "RunningStats",
    "TransferBound",
    "chebyshev",
    "derivative",
    "derivative_dtw",
    "dtw_barycenter",
    "dtw_cost_matrix",
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_distance_early_abandon",
    "dtw_path",
    "euclidean",
    "euclidean_l1",
    "euclidean_l2",
    "get_metric",
    "group_pruning_lower_bound",
    "keogh_envelope",
    "lb_cascade",
    "lb_keogh",
    "lb_keogh_batch",
    "lb_kim",
    "lb_kim_batch",
    "minmax_normalize",
    "normalized_euclidean",
    "path_multiplicities",
    "registered_metrics",
    "sliding_mean_std",
    "transfer_bounds",
    "weighted_dtw",
    "znormalize",
]
