"""Pluggable distance registry: metric names → kernels and bound families.

The ONEX cascade was DTW-only; everything upstream of it now resolves the
query metric through this registry instead (DESIGN.md §9).  A registered
:class:`MetricSpec` bundles what the query layers need:

- ``pair`` — the scalar distance on two windows, returning ``(raw,
  normalized)`` where *normalized* is the length-comparable value ONEX
  thresholds are expressed in (mean-per-element for the Lp family, cost
  per warping-path step for the DTW family);
- ``batch`` — an optional vectorised kernel evaluating one query against
  a stack of flattened candidate rows in a single numpy dispatch;
- ``lower_bound`` — an optional group-level bound family: given the
  normalized distance from the query to each group representative and
  the group radii, a provable lower bound on the distance to *any*
  member.  Metrics with a bound get an LB prescreen in the scan; metrics
  without one fall back to the brute-force-verified full member scan.

Multivariate windows are stored channel-flattened (C-order ``(length,
channels)`` rows of width ``length * channels``); ``pair`` receives the
channel-shaped array, ``batch`` the flattened rows.  The triangle
inequality of the Lp metrics holds verbatim on flattened rows, which is
what makes the stored ``ed_radius`` / ``cheb_radius`` usable as bound
inputs for any channel count.

The default DTW path through the representative cascade never consults
this registry — ``QueryConfig(metric="dtw")`` on a univariate base is
bit-identical to the pre-registry engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distances.dtw import dtw_distance_batch, effective_band
from repro.distances.variants import derivative, weighted_dtw
from repro.exceptions import ValidationError

__all__ = [
    "DistanceRegistry",
    "MetricSpec",
    "REGISTRY",
    "get_metric",
    "registered_metrics",
]


@dataclass(frozen=True)
class MetricSpec:
    """One registered distance metric and its optional fast paths.

    Attributes
    ----------
    name:
        Registry key, also the closed-set ``metric`` label value of the
        ``onex_queries_total`` counter.
    pair:
        ``pair(x, y, window) -> (raw, normalized)`` — the scalar ground
        truth.  *x*/*y* are channel-shaped float64 arrays (1-D for
        univariate windows, ``(length, channels)`` otherwise).
    batch:
        ``batch(q_flat, rows, length, channels, window) -> (raws,
        normalized)`` over flattened candidate rows, or ``None`` when the
        metric has no vectorised kernel (the scan then loops ``pair``).
    lower_bound:
        ``lower_bound(rep_normalized, ed_radii, cheb_radii) -> bounds``
        mapping per-group representative distances and radii to provable
        per-member lower bounds (normalized space), or ``None``.
    elastic:
        Whether the metric compares windows of different lengths (the
        DTW family).  Non-elastic metrics scan only the query's length.
    multivariate:
        Whether the metric is defined for multi-channel windows.
    """

    name: str
    pair: Callable
    batch: Callable | None = None
    lower_bound: Callable | None = None
    elastic: bool = True
    multivariate: bool = True

    def pair_shaped(self, q_flat, row_flat, length, channels, window):
        """Run :attr:`pair` on flattened rows, restoring channel shape."""
        if channels > 1:
            q = q_flat.reshape(-1, channels)
            r = row_flat.reshape(length, channels)
        else:
            q, r = q_flat, row_flat
        return self.pair(q, r, window)


class DistanceRegistry:
    """Name → :class:`MetricSpec` mapping with a closed, known key set."""

    def __init__(self) -> None:
        self._specs: dict[str, MetricSpec] = {}

    def register(self, spec: MetricSpec) -> MetricSpec:
        if not isinstance(spec, MetricSpec):
            raise ValidationError(
                f"expected MetricSpec, got {type(spec).__name__}"
            )
        if not spec.name or not isinstance(spec.name, str):
            raise ValidationError("metric name must be a non-empty string")
        if spec.name in self._specs:
            raise ValidationError(f"metric {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MetricSpec:
        """Resolve *name*, raising a clear error for unknown metrics."""
        if not isinstance(name, str):
            raise ValidationError(
                f"metric must be a string, got {type(name).__name__}"
            )
        try:
            return self._specs[name]
        except KeyError:
            raise ValidationError(
                f"unknown metric {name!r} (registered: "
                f"{', '.join(self.names())})"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


def _dtw_pair_dependent(x, y, window) -> tuple[float, float]:
    """Dependent DTW on channel-shaped windows, with tracked path length.

    Ground cost between time steps is the summed per-channel absolute
    difference (for 1-D inputs this is exactly the library's default
    ``ground="l1"`` DTW).  The predecessor tie-break — diagonal, then
    vertical, then horizontal — matches :func:`repro.distances.dtw.
    dtw_path`, so the normalized value agrees with the cascade's on
    univariate input.
    """
    a = np.atleast_2d(np.asarray(x, dtype=np.float64).T).T
    b = np.atleast_2d(np.asarray(y, dtype=np.float64).T).T
    n, m = a.shape[0], b.shape[0]
    band = effective_band(n, m, window)
    inf = math.inf
    cost_prev = [inf] * m
    plen_prev = [0] * m
    ground = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    for i in range(n):
        j_lo, j_hi = 0, m - 1
        if band is not None:
            j_lo, j_hi = max(0, i - band), min(m - 1, i + band)
        cost_cur = [inf] * m
        plen_cur = [0] * m
        for j in range(j_lo, j_hi + 1):
            d = ground[i, j]
            if i == 0 and j == 0:
                cost_cur[0] = d
                plen_cur[0] = 1
                continue
            up = cost_prev[j]
            diag = cost_prev[j - 1] if j > 0 else inf
            left = cost_cur[j - 1] if j > 0 else inf
            if diag <= up and diag <= left:
                best, plen = diag, plen_prev[j - 1]
            elif up <= left:
                best, plen = up, plen_prev[j]
            else:
                best, plen = left, plen_cur[j - 1]
            cost_cur[j] = d + best
            plen_cur[j] = plen + 1
        cost_prev, plen_prev = cost_cur, plen_cur
    raw = cost_prev[m - 1]
    if not math.isfinite(raw):
        raise ValidationError(
            "no feasible warping path (window too narrow for these lengths)"
        )
    return float(raw), float(raw) / plen_prev[m - 1]


def _dtw_batch(q_flat, rows, length, channels, window):
    if channels > 1:
        return None  # dependent DTW has no batched kernel; scan loops pair
    raws, plens = dtw_distance_batch(
        q_flat, rows, window=window, with_path_length=True
    )
    return raws, raws / plens


def _derivative_rows(rows: np.ndarray) -> np.ndarray:
    """Keogh–Pazzani derivative of every row of a 2-D stack."""
    if rows.shape[1] < 3:
        raise ValidationError("derivative needs at least 3 points")
    x = rows
    interior = ((x[:, 1:-1] - x[:, :-2]) + (x[:, 2:] - x[:, :-2]) / 2.0) / 2.0
    return np.concatenate(
        [interior[:, :1], interior, interior[:, -1:]], axis=1
    )


def _ddtw_pair(x, y, window) -> tuple[float, float]:
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape[0] < 3 or b.shape[0] < 3:
        raise ValidationError("derivative needs at least 3 points")
    if a.ndim == 2:
        da = np.column_stack([derivative(a[:, c]) for c in range(a.shape[1])])
        db = np.column_stack([derivative(b[:, c]) for c in range(b.shape[1])])
    else:
        da, db = derivative(a), derivative(b)
    return _dtw_pair_dependent(da, db, window)


def _ddtw_batch(q_flat, rows, length, channels, window):
    if channels > 1:
        return None
    raws, plens = dtw_distance_batch(
        _derivative_rows(q_flat[None, :])[0],
        _derivative_rows(rows),
        window=window,
        with_path_length=True,
    )
    return raws, raws / plens


def _wdtw_pair(x, y, window) -> tuple[float, float]:
    a = np.asarray(x, dtype=np.float64)
    if a.ndim != 1:
        raise ValidationError(
            "metric 'weighted_dtw' supports univariate series only"
        )
    raw = weighted_dtw(x, y)
    # No warping path is tracked; the minimum possible path length is the
    # consistent normaliser (exact when the optimal path is the diagonal).
    return raw, raw / max(a.shape[0], np.asarray(y).shape[0])


def _lp_pair(norm_fn, raw_of):
    def pair(x, y, window) -> tuple[float, float]:
        a = np.asarray(x, dtype=np.float64).ravel()
        b = np.asarray(y, dtype=np.float64).ravel()
        if a.shape[0] != b.shape[0]:
            raise ValidationError(
                f"equal lengths required, got {a.shape[0]} and {b.shape[0]}"
            )
        norm = norm_fn(a - b)
        return raw_of(norm, a.shape[0]), norm

    return pair


def _euclidean_batch(q_flat, rows, length, channels, window):
    norms = np.sqrt(((rows - q_flat) ** 2).mean(axis=1))
    return norms * math.sqrt(rows.shape[1]), norms


def _cityblock_batch(q_flat, rows, length, channels, window):
    norms = np.abs(rows - q_flat).mean(axis=1)
    return norms * rows.shape[1], norms


def _chebyshev_batch(q_flat, rows, length, channels, window):
    norms = np.abs(rows - q_flat).max(axis=1)
    return norms, norms


def _euclidean_bound(rep_norms, ed_radii, cheb_radii):
    # rms is (1/sqrt(width))·L2, a true metric; rms(c, m)^2 = mean(d^2)
    # <= max|d| · mean|d| <= cheb_radius · ed_radius, so the triangle
    # inequality gives rms(q, m) >= rms(q, c) - sqrt(ed · cheb).
    return np.maximum(rep_norms - np.sqrt(ed_radii * cheb_radii), 0.0)


def _cityblock_bound(rep_norms, ed_radii, cheb_radii):
    # ed_radius IS the max mean-abs distance from representative to any
    # member, and mean-abs is a metric: d(q, m) >= d(q, c) - ed_radius.
    return np.maximum(rep_norms - ed_radii, 0.0)


def _chebyshev_bound(rep_norms, ed_radii, cheb_radii):
    return np.maximum(rep_norms - cheb_radii, 0.0)


#: The process-wide default registry consulted by the query layers.
REGISTRY = DistanceRegistry()

REGISTRY.register(
    MetricSpec(
        name="dtw",
        pair=_dtw_pair_dependent,
        batch=_dtw_batch,
        lower_bound=None,  # the univariate cascade has its own LB family
        elastic=True,
        multivariate=True,
    )
)
REGISTRY.register(
    MetricSpec(
        name="euclidean",
        pair=_lp_pair(
            lambda d: float(np.sqrt((d**2).mean())),
            lambda norm, width: norm * math.sqrt(width),
        ),
        batch=_euclidean_batch,
        lower_bound=_euclidean_bound,
        elastic=False,
        multivariate=True,
    )
)
REGISTRY.register(
    MetricSpec(
        name="cityblock",
        pair=_lp_pair(
            lambda d: float(np.abs(d).mean()),
            lambda norm, width: norm * width,
        ),
        batch=_cityblock_batch,
        lower_bound=_cityblock_bound,
        elastic=False,
        multivariate=True,
    )
)
REGISTRY.register(
    MetricSpec(
        name="chebyshev",
        pair=_lp_pair(
            lambda d: float(np.abs(d).max()), lambda norm, width: norm
        ),
        batch=_chebyshev_batch,
        lower_bound=_chebyshev_bound,
        elastic=False,
        multivariate=True,
    )
)
REGISTRY.register(
    MetricSpec(
        name="derivative_dtw",
        pair=_ddtw_pair,
        batch=_ddtw_batch,
        lower_bound=None,
        elastic=True,
        multivariate=True,
    )
)
REGISTRY.register(
    MetricSpec(
        name="weighted_dtw",
        pair=_wdtw_pair,
        batch=None,
        lower_bound=None,
        elastic=True,
        multivariate=False,
    )
)


def get_metric(name: str) -> MetricSpec:
    """Resolve *name* against the default registry (ValidationError if unknown)."""
    return REGISTRY.get(name)


def registered_metrics() -> tuple[str, ...]:
    """Names in the default registry — the closed metric label set."""
    return REGISTRY.names()
