"""Normalisation utilities and streaming statistics.

ONEX min–max normalises every dataset to [0, 1] at load time so that one
similarity threshold is meaningful across indicators measured on different
scales (§3.3 of the paper: growth-rate percentages vs unemployment counts).
The UCR Suite baseline instead requires z-normalisation of every candidate
window; :func:`sliding_mean_std` provides the O(n) cumulative-sum machinery
it needs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "RunningStats",
    "minmax_normalize",
    "minmax_params",
    "sliding_mean_std",
    "znormalize",
]

#: Spread below which a sequence is treated as constant (avoids dividing
#: by a denormal spread and exploding round-off noise).
_FLAT_EPS = 1e-12


def minmax_params(values) -> tuple[float, float]:
    """Return ``(lo, hi)`` bounds used for min–max scaling of *values*."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("cannot normalise an empty array")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("values contain NaN or infinite entries")
    return float(arr.min()), float(arr.max())


def minmax_normalize(values, *, lo: float | None = None, hi: float | None = None) -> np.ndarray:
    """Scale *values* affinely so that [lo, hi] maps to [0, 1].

    When *lo*/*hi* are omitted they are taken from the data itself.  A flat
    input (hi == lo) maps to all zeros rather than raising, matching how
    ONEX treats constant indicator series.  Passing dataset-level bounds
    keeps all series of a collection on a common scale, which is what the
    ONEX base construction assumes.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("cannot normalise an empty array")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("values contain NaN or infinite entries")
    if lo is None or hi is None:
        data_lo, data_hi = minmax_params(arr)
        lo = data_lo if lo is None else lo
        hi = data_hi if hi is None else hi
    if hi < lo:
        raise ValidationError(f"hi ({hi}) must be >= lo ({lo})")
    spread = hi - lo
    if spread <= _FLAT_EPS:
        return np.zeros_like(arr)
    return (arr - lo) / spread


def znormalize(values, *, eps: float = _FLAT_EPS) -> np.ndarray:
    """Subtract the mean and divide by the standard deviation.

    Flat sequences (std <= eps) are returned as all zeros — the same
    convention the original UCR Suite code uses, and the one our UCR Suite
    baseline relies on.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("cannot normalise an empty array")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("values contain NaN or infinite entries")
    mean = arr.mean()
    std = arr.std()
    if std <= eps:
        return np.zeros_like(arr)
    return (arr - mean) / std


def sliding_mean_std(values, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean and std of every length-*window* sliding window, in O(n).

    Uses cumulative sums (the trick from Rakthanmanon et al., SIGKDD 2012)
    so the UCR Suite baseline can z-normalise candidate windows lazily
    without touching each window's points twice.  Returns two arrays of
    length ``len(values) - window + 1``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {arr.shape}")
    if window <= 0:
        raise ValidationError(f"window must be positive, got {window}")
    if window > arr.size:
        raise ValidationError(
            f"window ({window}) longer than values ({arr.size})"
        )
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    csq = np.concatenate(([0.0], np.cumsum(arr * arr)))
    totals = csum[window:] - csum[:-window]
    squares = csq[window:] - csq[:-window]
    mean = totals / window
    # Clamp tiny negative round-off before the sqrt.
    var = np.maximum(squares / window - mean * mean, 0.0)
    return mean, np.sqrt(var)


class RunningStats:
    """Welford online mean/variance accumulator.

    The ONEX threshold recommender streams sampled pairwise distances
    through one of these to derive data-driven threshold suggestions
    without materialising the full distance matrix.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        if not math.isfinite(value):
            raise ValidationError(f"non-finite observation: {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values) -> None:
        """Push every element of an iterable of floats."""
        for value in values:
            self.push(float(value))

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations pushed yet")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self._count == 0:
            raise ValidationError("no observations pushed yet")
        return self._m2 / self._count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations pushed yet")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations pushed yet")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(count={self._count}, mean={self._mean:.6g}, "
            f"std={self.std:.6g}, min={self._min:.6g}, max={self._max:.6g})"
        )
