"""The ED→DTW transfer inequality — ONEX's theoretical foundation.

ONEX builds its similarity groups with the cheap Euclidean distance but
answers queries under DTW.  The bridge (§3.2 of the paper, made precise in
DESIGN.md §2) is a triangle-style inequality: for equal-length sequences
``r`` (a group representative) and ``s`` (a member of its group), and any
query ``q``, let ``P*`` be the optimal warping path of ``(q, r)`` and
``m_j`` the number of path cells touching ``r_j``.  Applying the pointwise
triangle inequality along ``P*``:

    DTW(q, s) <= DTW(q, r) + sum_j m_j * |r_j - s_j|                (upper)

and symmetrically, bounding the unknown optimal ``(q, s)`` path length by
``len(q) + len(s) - 1``:

    DTW(q, s) >= DTW(q, r) - (len(q) + len(s) - 1) * max_j |r_j - s_j|  (lower)

The upper bound is what carries a representative-level match to every
member of its group; the lower bound is what lets the query processor
discard whole groups without touching their members.  Both directions are
verified by hypothesis property tests against exact DTW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distances.dtw import DtwResult, dtw_path
from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "TransferBound",
    "group_pruning_lower_bound",
    "path_multiplicities",
    "transfer_bounds",
    "transfer_slack",
]


def path_multiplicities(path, length: int, *, axis: int = 1) -> np.ndarray:
    """Count how many warping-path cells touch each index along *axis*.

    ``axis=1`` (default) counts per index of the second sequence, which is
    the representative in ONEX's usage.
    """
    if axis not in (0, 1):
        raise ValidationError(f"axis must be 0 or 1, got {axis}")
    counts = np.zeros(length, dtype=np.int64)
    for cell in path:
        idx = cell[axis]
        if idx < 0 or idx >= length:
            raise ValidationError(f"path index {idx} out of range 0..{length - 1}")
        counts[idx] += 1
    return counts


def transfer_slack(path, r, s, *, axis: int = 1) -> float:
    """``sum_j m_j * |r_j - s_j|`` — the slack term of the transfer lemma."""
    rv = as_sequence(r, name="r")
    sv = as_sequence(s, name="s")
    if rv.shape[0] != sv.shape[0]:
        raise ValidationError(
            f"r and s must have equal length, got {rv.shape[0]} and {sv.shape[0]}"
        )
    mult = path_multiplicities(path, rv.shape[0], axis=axis)
    return float((mult * np.abs(rv - sv)).sum())


@dataclass(frozen=True)
class TransferBound:
    """Interval guaranteed to contain ``DTW(q, s)`` for a group member ``s``.

    Produced from one DTW computation against the group representative
    only — no DTW against ``s`` itself is performed.
    """

    dtw_query_rep: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValidationError(
                f"inconsistent bound: lower {self.lower} > upper {self.upper}"
            )

    @property
    def width(self) -> float:
        return self.upper - self.lower


def transfer_bounds(
    q,
    r,
    s,
    *,
    window: int | None = None,
    rep_result: DtwResult | None = None,
) -> TransferBound:
    """Bound ``DTW(q, s)`` using only ``DTW(q, r)`` and ``ED(r, s)``.

    *r* and *s* must be equal length (they share a similarity group).
    *rep_result* may carry a precomputed ``dtw_path(q, r)`` so that one
    representative evaluation serves every member of the group.

    Note the guarantee is for **unconstrained** DTW on ``(q, s)``: the lower
    bound caps the unknown optimal path length at ``len(q) + len(s) - 1``,
    and a *window* only restricts the ``(q, r)`` evaluation.
    """
    qv = as_sequence(q, name="q")
    rv = as_sequence(r, name="r")
    sv = as_sequence(s, name="s")
    if rv.shape[0] != sv.shape[0]:
        raise ValidationError(
            f"r and s must have equal length, got {rv.shape[0]} and {sv.shape[0]}"
        )
    if rep_result is None:
        rep_result = dtw_path(qv, rv, window=window)
    slack = transfer_slack(rep_result.path, rv, sv, axis=1)
    cheb = float(np.abs(rv - sv).max())
    max_path = qv.shape[0] + sv.shape[0] - 1
    lower = max(0.0, rep_result.distance - max_path * cheb)
    upper = rep_result.distance + slack
    return TransferBound(dtw_query_rep=rep_result.distance, lower=lower, upper=upper)


def group_pruning_lower_bound(
    dtw_query_rep: float,
    query_length: int,
    member_length: int,
    chebyshev_radius: float,
) -> float:
    """Lower bound on ``DTW(q, s)`` for **every** member ``s`` of a group.

    *chebyshev_radius* is the maximum ``max_j |r_j - s_j|`` over the group's
    members, which the ONEX base maintains incrementally during
    construction.  If this bound already exceeds the best match found so
    far, the whole group is skipped — the key online-phase optimisation.
    """
    if chebyshev_radius < 0:
        raise ValidationError("chebyshev_radius must be >= 0")
    if query_length <= 0 or member_length <= 0:
        raise ValidationError("lengths must be positive")
    max_path = query_length + member_length - 1
    return max(0.0, dtw_query_rep - max_path * chebyshev_radius)
