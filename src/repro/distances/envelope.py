"""Keogh bounding envelopes.

The envelope of a sequence ``q`` with Sakoe–Chiba radius ``r`` is the pair
of sequences ``upper[i] = max(q[i-r : i+r+1])`` and ``lower[i] = min(...)``.
LB_Keogh (``repro.distances.lower_bounds``) measures how far a candidate
escapes this tube, which lower-bounds banded DTW — the "indexing of time
series using bounding envelopes" optimisation named in §3.3 of the paper.

The sliding min/max uses the standard monotonic-deque algorithm
(Lemire 2009), so building an envelope is O(n) regardless of the radius.

:class:`QueryEnvelopeCache` memoises the envelopes of one fixed query by
radius: the ONEX query processor needs one envelope per (bucket length,
window) pair and reuses it across every group of that length, so each
distinct radius is computed exactly once per query.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = [
    "QueryEnvelopeCache",
    "keogh_envelope",
    "keogh_envelope_batch",
    "sliding_max",
    "sliding_min",
]


def _sliding_extreme(arr: np.ndarray, radius: int, *, take_max: bool) -> np.ndarray:
    """Windowed max (or min) over ``[i - radius, i + radius]`` for every i."""
    n = arr.shape[0]
    out = np.empty(n, dtype=np.float64)
    window: deque[int] = deque()  # indices, values monotone from the front

    def dominates(a: float, b: float) -> bool:
        return a >= b if take_max else a <= b

    # The window for position i covers indices [i - radius, i + radius].
    for k in range(n + radius):
        if k < n:
            while window and dominates(arr[k], arr[window[-1]]):
                window.pop()
            window.append(k)
        i = k - radius
        if i >= 0:
            while window[0] < i - radius:
                window.popleft()
            out[i] = arr[window[0]]
    return out


def sliding_max(values, radius: int) -> np.ndarray:
    """Centred sliding maximum with the given radius, O(n)."""
    arr = as_sequence(values, name="values")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    return _sliding_extreme(arr, radius, take_max=True)


def sliding_min(values, radius: int) -> np.ndarray:
    """Centred sliding minimum with the given radius, O(n)."""
    arr = as_sequence(values, name="values")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    return _sliding_extreme(arr, radius, take_max=False)


def keogh_envelope(values, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(lower, upper)`` Keogh envelope arrays for *values*.

    ``radius`` is the Sakoe–Chiba band radius the envelope must cover; with
    ``radius=0`` both envelopes equal the input.  Guaranteed pointwise:
    ``lower <= values <= upper``.
    """
    arr = as_sequence(values, name="values")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    return _sliding_extreme(arr, radius, take_max=False), _sliding_extreme(
        arr, radius, take_max=True
    )


def keogh_envelope_batch(rows, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Keogh envelopes of every row of a 2-D stack at once.

    Returns ``(lower, upper)`` with the same shape as *rows*; row ``g`` is
    exactly ``keogh_envelope(rows[g], radius)`` (cross-checked by the
    property tests).  Used to build the persisted per-representative
    envelopes of :class:`repro.core.base.RepresentativeSummary` without a
    Python loop over groups: the stack is edge-padded with ``±inf`` and a
    sliding-window view reduces each centred window in one vector
    operation per row block.
    """
    mat = np.asarray(rows, dtype=np.float64)
    if mat.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {mat.shape}")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    if mat.shape[0] == 0 or radius == 0:
        return mat.copy(), mat.copy()
    lo_pad = np.pad(mat, ((0, 0), (radius, radius)), constant_values=np.inf)
    hi_pad = np.pad(mat, ((0, 0), (radius, radius)), constant_values=-np.inf)
    window = 2 * radius + 1
    lower = np.lib.stride_tricks.sliding_window_view(lo_pad, window, axis=1).min(axis=2)
    upper = np.lib.stride_tricks.sliding_window_view(hi_pad, window, axis=1).max(axis=2)
    return lower, upper


class QueryEnvelopeCache:
    """Keogh envelopes of one fixed query, memoised by radius.

    Answering a query against an ONEX base needs the query's envelope at
    one radius per (candidate length, window) combination; this cache
    computes each distinct radius once and hands back the same arrays on
    every subsequent request.  The arrays are shared, not copied — callers
    must treat them as read-only.
    """

    def __init__(self, query) -> None:
        self._query = as_sequence(query, name="query")
        self._by_radius: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def query(self) -> np.ndarray:
        return self._query

    def get(self, radius: int) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` envelope of the query at *radius* (cached)."""
        radius = int(radius)
        try:
            return self._by_radius[radius]
        except KeyError:
            envelope = keogh_envelope(self._query, radius)
            self._by_radius[radius] = envelope
            return envelope

    def __len__(self) -> int:
        return len(self._by_radius)
