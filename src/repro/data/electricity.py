"""Simulated ElectricityLoad collection (DESIGN.md substitution S4).

The paper's seasonal demonstration (Fig. 4) explores one Portuguese
household's electricity usage over a year from the UCR ElectricityLoad
collection, which is not available offline.  This generator produces the
same structure: a daily-resolution yearly load curve with

- an annual seasonal swing (heating/cooling),
- a weekly rhythm (weekends differ from weekdays),
- a *recurring monthly habit pattern* — the ground-truth motif the
  seasonal view should rediscover — and
- occasional habit shifts (vacations) plus measurement noise.

Series are named ``"household-<k>"`` with the habit-pattern positions
recorded in metadata so experiments can score recovered patterns against
truth.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError

__all__ = ["build_electricity_collection"]


def _yearly_profile(days: int, rng: np.random.Generator) -> np.ndarray:
    """Annual + weekly structure for one household."""
    t = np.arange(days, dtype=np.float64)
    annual = 1.0 + 0.45 * np.cos(2.0 * np.pi * (t - 15.0) / 365.0)
    weekly = 0.18 * np.sin(2.0 * np.pi * t / 7.0 + rng.uniform(0, 2 * np.pi))
    return annual + weekly


def build_electricity_collection(
    *,
    households: int = 8,
    days: int = 365,
    pattern_length: int = 30,
    pattern_repeats: int = 4,
    noise: float = 0.05,
    seed: int = 417,
) -> TimeSeriesDataset:
    """Build the simulated ElectricityLoad collection.

    Each household's series contains *pattern_repeats* noisy copies of a
    household-specific ``pattern_length``-day habit motif at spaced
    positions; their starts are stored in ``metadata["pattern_starts"]``.
    """
    if households < 1:
        raise ValidationError("households must be >= 1")
    if days < 30:
        raise ValidationError("days must be >= 30")
    if not 2 <= pattern_length <= days // max(pattern_repeats, 1):
        raise ValidationError(
            f"pattern_length {pattern_length} with {pattern_repeats} repeats "
            f"does not fit into {days} days"
        )
    if pattern_repeats < 1:
        raise ValidationError("pattern_repeats must be >= 1")

    rng = np.random.default_rng(seed)
    dataset = TimeSeriesDataset(name="ElectricityLoad-sim")
    for k in range(households):
        base_level = float(rng.uniform(8.0, 20.0))  # kWh/day
        values = base_level * _yearly_profile(days, rng)
        values = values + rng.normal(scale=noise * base_level, size=days)

        # Habit motif: a distinctive consumption shape (e.g. laundry +
        # heating schedule) recurring across the year.
        tt = np.linspace(0.0, 2.0 * np.pi, pattern_length)
        motif = 0.35 * base_level * (np.sin(tt) + 0.6 * np.sin(2.0 * tt + 1.0))
        stride = days // pattern_repeats
        starts = []
        for r in range(pattern_repeats):
            lo = r * stride
            hi = min((r + 1) * stride - pattern_length, days - pattern_length)
            if hi < lo:
                continue
            start = int(rng.integers(lo, hi + 1))
            jitter = rng.normal(scale=0.03 * base_level, size=pattern_length)
            values[start : start + pattern_length] += motif + jitter
            starts.append(start)

        # A vacation dip: one 7–14 day window of much lower usage.
        vac_len = int(rng.integers(7, 15))
        vac_start = int(rng.integers(0, days - vac_len))
        values[vac_start : vac_start + vac_len] *= 0.35

        dataset.add(
            TimeSeries(
                f"household-{k}",
                values,
                metadata={
                    "country": "PT",
                    "units": "kWh/day",
                    "pattern_starts": tuple(starts),
                    "pattern_length": pattern_length,
                    "vacation": (vac_start, vac_len),
                },
            )
        )
    return dataset
