"""Data substrate: time series model, collections, generators, file formats.

- :mod:`repro.data.timeseries` — the immutable :class:`TimeSeries` record.
- :mod:`repro.data.dataset` — :class:`TimeSeriesDataset`, a heterogeneous
  variable-length collection with subsequence enumeration (the raw material
  of the ONEX base) and collection-level min–max normalisation.
- :mod:`repro.data.synthetic` — reusable signal generators.
- :mod:`repro.data.matters` — simulated MATTERS economic panel (DESIGN.md
  substitution S3).
- :mod:`repro.data.electricity` — simulated ElectricityLoad collection
  (substitution S4).
- :mod:`repro.data.ucr_format` — UCR-archive-style text files.
"""

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.electricity import build_electricity_collection
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection
from repro.data.resample import (
    detrend_moving_average,
    moving_average,
    resample_linear,
)
from repro.data.synthetic import (
    cylinder_bell_funnel,
    noisy_sine,
    planted_motif_series,
    random_walk,
    seasonal_series,
    trend_series,
    warped_copy,
)
from repro.data.timeseries import TimeSeries
from repro.data.ucr_format import load_ucr_file, save_ucr_file

__all__ = [
    "STATE_ABBREVIATIONS",
    "SubsequenceRef",
    "TimeSeries",
    "TimeSeriesDataset",
    "build_electricity_collection",
    "build_matters_collection",
    "cylinder_bell_funnel",
    "detrend_moving_average",
    "load_ucr_file",
    "moving_average",
    "noisy_sine",
    "planted_motif_series",
    "random_walk",
    "resample_linear",
    "save_ucr_file",
    "seasonal_series",
    "trend_series",
    "warped_copy",
]
