"""Heterogeneous time series collections and subsequence enumeration.

A :class:`TimeSeriesDataset` is what the analyst loads into ONEX (§4 "Data
Loading into ONEX"): a set of named, variable-length series.  The ONEX base
is built over *every contiguous subsequence* of every series within a
length range, so the dataset exposes an enumeration API returning
lightweight :class:`SubsequenceRef` handles instead of copies — with tens
of thousands of windows, materialising them all would defeat the point.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.data.timeseries import TimeSeries
from repro.distances.normalize import minmax_normalize
from repro.exceptions import DatasetError, ValidationError

__all__ = ["SubsequenceRef", "TimeSeriesDataset"]


class SubsequenceRef(NamedTuple):
    """Lightweight handle to one window of one series in a dataset.

    ``(series_index, start, length)`` fully identifies the window; resolve
    it to values with :meth:`TimeSeriesDataset.values`.  A named tuple —
    ordering, equality, and hashing are field-tuple semantics (as with
    the earlier frozen dataclass), and construction is cheap enough to
    materialise every member handle of a multi-thousand-group base
    without showing up in the build profile.
    """

    series_index: int
    start: int
    length: int

    @property
    def stop(self) -> int:
        return self.start + self.length

    def overlaps(self, other: "SubsequenceRef") -> bool:
        """True when both refs address overlapping windows of one series."""
        if self.series_index != other.series_index:
            return False
        return self.start < other.stop and other.start < self.stop


class TimeSeriesDataset:
    """An ordered collection of uniquely named :class:`TimeSeries`."""

    def __init__(self, series: Iterable[TimeSeries] = (), *, name: str = "dataset") -> None:
        self._name = name
        self._series: list[TimeSeries] = []
        self._index_by_name: dict[str, int] = {}
        for item in series:
            self.add(item)

    # ------------------------------------------------------------------
    # Collection basics
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    def add(self, series: TimeSeries) -> None:
        """Append a series; names must be unique, channel counts uniform."""
        if not isinstance(series, TimeSeries):
            raise ValidationError(f"expected TimeSeries, got {type(series).__name__}")
        if series.name in self._index_by_name:
            raise DatasetError(f"duplicate series name: {series.name!r}")
        if self._series and series.channels != self._series[0].channels:
            raise ValidationError(
                f"series {series.name!r} has {series.channels} channel(s) "
                f"but dataset {self._name!r} holds "
                f"{self._series[0].channels}-channel series"
            )
        self._index_by_name[series.name] = len(self._series)
        self._series.append(series)

    @property
    def channels(self) -> int:
        """Channels per series (uniform across the collection; 1 if empty)."""
        return self._series[0].channels if self._series else 1

    def replace_series(self, series: TimeSeries) -> None:
        """Swap in a new version of an existing series (same name/index).

        The streaming ingestor uses this to publish a longer snapshot of a
        live series: existing :class:`SubsequenceRef` handles stay valid
        because positions keep their index and appends never rewrite old
        observations.
        """
        if not isinstance(series, TimeSeries):
            raise ValidationError(f"expected TimeSeries, got {type(series).__name__}")
        try:
            index = self._index_by_name[series.name]
        except KeyError:
            raise DatasetError(
                f"no series named {series.name!r} in {self._name!r}"
            ) from None
        if series.channels != self._series[index].channels:
            raise ValidationError(
                f"series {series.name!r}: cannot change channel count from "
                f"{self._series[index].channels} to {series.channels}"
            )
        self._series[index] = series

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __getitem__(self, key: int | str) -> TimeSeries:
        if isinstance(key, str):
            try:
                return self._series[self._index_by_name[key]]
            except KeyError:
                raise DatasetError(f"no series named {key!r} in {self._name!r}") from None
        return self._series[key]

    def __contains__(self, name: str) -> bool:
        return name in self._index_by_name

    @property
    def names(self) -> list[str]:
        return [s.name for s in self._series]

    def index_of(self, name: str) -> int:
        try:
            return self._index_by_name[name]
        except KeyError:
            raise DatasetError(f"no series named {name!r} in {self._name!r}") from None

    # ------------------------------------------------------------------
    # Values and normalisation
    # ------------------------------------------------------------------

    def values(self, ref: SubsequenceRef) -> np.ndarray:
        """Resolve a :class:`SubsequenceRef` to its (read-only view) values."""
        if ref.series_index < 0 or ref.series_index >= len(self._series):
            raise DatasetError(f"series index {ref.series_index} out of range")
        return self._series[ref.series_index].subsequence(ref.start, ref.length)

    def global_bounds(self) -> tuple[float, float]:
        """(min, max) over every observation in the collection."""
        if not self._series:
            raise DatasetError("dataset is empty")
        lo = min(float(s.values.min()) for s in self._series)
        hi = max(float(s.values.max()) for s in self._series)
        return lo, hi

    def normalized(self) -> "TimeSeriesDataset":
        """Collection-level min–max normalisation to [0, 1].

        ONEX normalises at load time with *shared* bounds so that
        cross-series comparisons remain meaningful; per-series scaling
        would erase exactly the level differences analysts look for.
        """
        lo, hi = self.global_bounds()
        out = TimeSeriesDataset(name=self._name)
        for s in self._series:
            out.add(s.with_values(minmax_normalize(s.values, lo=lo, hi=hi)))
        return out

    # ------------------------------------------------------------------
    # Subsequence enumeration
    # ------------------------------------------------------------------

    def length_range(self) -> tuple[int, int]:
        """(shortest, longest) series length in the collection."""
        if not self._series:
            raise DatasetError("dataset is empty")
        lengths = [len(s) for s in self._series]
        return min(lengths), max(lengths)

    def iter_subsequences(
        self, length: int, *, step: int = 1
    ) -> Iterator[SubsequenceRef]:
        """All windows of exactly *length*, series by series, left to right."""
        if length <= 0:
            raise ValidationError(f"length must be positive, got {length}")
        if step <= 0:
            raise ValidationError(f"step must be positive, got {step}")
        for idx, series in enumerate(self._series):
            for start in range(0, len(series) - length + 1, step):
                yield SubsequenceRef(idx, start, length)

    def count_subsequences(self, min_length: int, max_length: int, *, step: int = 1) -> int:
        """How many windows exist with lengths in [min_length, max_length].

        This is the "huge number of subsequences" of challenge 1 in §1; the
        compaction ratio of the ONEX base is measured against it.
        """
        if min_length <= 0 or max_length < min_length:
            raise ValidationError(
                f"invalid length range [{min_length}, {max_length}]"
            )
        total = 0
        for series in self._series:
            n = len(series)
            for length in range(min_length, min(max_length, n) + 1):
                total += (n - length) // step + 1
        return total

    def subsequence_matrix(self, length: int, *, step: int = 1) -> tuple[np.ndarray, list[SubsequenceRef]]:
        """Stack every window of *length* into a 2-D array.

        Returns ``(matrix, refs)`` with ``matrix[k]`` holding the values of
        ``refs[k]`` — channel-flattened to width ``length * channels`` for
        multivariate collections.  Used by the base builder for vectorised
        distance computations; the rows come from one strided
        :func:`repro.data.windows.window_view` gather per series (no
        per-window copy loop), stacked into one owned array.
        """
        from repro.data.windows import window_matrix

        refs = list(self.iter_subsequences(length, step=step))
        if not refs:
            return np.empty((0, length)), refs
        matrix, _ = window_matrix([s.values for s in self._series], length, step)
        return matrix, refs

    # ------------------------------------------------------------------
    # Convenience constructors and summaries
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        arrays: Sequence,
        *,
        names: Sequence[str] | None = None,
        name: str = "dataset",
    ) -> "TimeSeriesDataset":
        """Build a dataset from raw arrays, auto-naming ``series-<k>``."""
        out = cls(name=name)
        for k, values in enumerate(arrays):
            label = names[k] if names is not None else f"series-{k}"
            out.add(TimeSeries(label, values))
        return out

    def describe(self) -> dict:
        """Summary statistics used by the overview pane and logs."""
        if not self._series:
            return {"name": self._name, "series": 0}
        lengths = np.array([len(s) for s in self._series])
        lo, hi = self.global_bounds()
        return {
            "name": self._name,
            "series": len(self._series),
            "channels": self.channels,
            "total_points": int(lengths.sum()),
            "min_length": int(lengths.min()),
            "max_length": int(lengths.max()),
            "value_min": lo,
            "value_max": hi,
        }

    def __repr__(self) -> str:
        return f"TimeSeriesDataset({self._name!r}, series={len(self._series)})"
