"""The immutable time series record used throughout the library."""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["TimeSeries"]


class TimeSeries:
    """A named, immutable, uniformly sampled time series.

    Instances are the unit the ONEX engine ingests: heterogeneous lengths
    are expected and fine.  Values are stored as a read-only float64 array —
    1-D ``(length,)`` for the classic univariate case, or 2-D ``(length,
    channels)`` for multivariate series where each time step carries one
    observation per channel.  *metadata* carries domain attributes (state,
    indicator, units, start year, ...) that the visual layer surfaces but
    the algorithms ignore.
    """

    __slots__ = ("_name", "_values", "_metadata")

    def __init__(self, name: str, values, metadata: Mapping[str, Any] | None = None) -> None:
        if not isinstance(name, str) or not name:
            raise ValidationError("name must be a non-empty string")
        arr = np.array(values, dtype=np.float64, copy=True)
        if arr.ndim not in (1, 2):
            raise ValidationError(
                f"series {name!r}: values must be 1-D (length,) or 2-D "
                f"(length, channels), got shape {arr.shape}"
            )
        if arr.ndim == 2 and arr.shape[1] == 0:
            raise ValidationError(
                f"series {name!r}: must have at least one channel"
            )
        if arr.size == 0:
            raise ValidationError(f"series {name!r}: values must be non-empty")
        if not np.all(np.isfinite(arr)):
            raise ValidationError(f"series {name!r}: values contain NaN/inf")
        arr.flags.writeable = False
        self._name = name
        self._values = arr
        self._metadata = MappingProxyType(dict(metadata or {}))

    @classmethod
    def _wrap(cls, name: str, values: np.ndarray, metadata: Mapping[str, Any]) -> "TimeSeries":
        """Internal no-copy constructor for pre-validated snapshots.

        The streaming ingestor publishes one snapshot per append; *values*
        must be a 1-D float64 array the caller guarantees is finite and
        never mutated in range (a read-only view of a grow-only buffer
        qualifies: later appends only write past its end).
        """
        self = object.__new__(cls)
        self._name = name
        self._values = values
        self._metadata = MappingProxyType(dict(metadata))
        return self

    @property
    def name(self) -> str:
        return self._name

    @property
    def values(self) -> np.ndarray:
        """Read-only float64 array of the observations."""
        return self._values

    @property
    def metadata(self) -> Mapping[str, Any]:
        return self._metadata

    @property
    def channels(self) -> int:
        """Observations per time step (1 for classic univariate series)."""
        return 1 if self._values.ndim == 1 else self._values.shape[1]

    def __len__(self) -> int:
        return self._values.shape[0]

    def subsequence(self, start: int, length: int) -> np.ndarray:
        """Contiguous window ``values[start : start + length]`` (a view).

        Raises :class:`ValidationError` when the window falls outside the
        series, rather than silently returning a short slice.
        """
        if length <= 0:
            raise ValidationError(f"length must be positive, got {length}")
        if start < 0 or start + length > len(self):
            raise ValidationError(
                f"window [{start}, {start + length}) outside series "
                f"{self._name!r} of length {len(self)}"
            )
        return self._values[start : start + length]

    def with_values(self, values) -> "TimeSeries":
        """Copy of this series with replaced values (same name/metadata)."""
        return TimeSeries(self._name, values, self._metadata)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self._name == other._name
            and self._values.shape == other._values.shape
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:
        return hash((self._name, self._values.tobytes()))

    def __repr__(self) -> str:
        if self._values.ndim == 2:
            return (
                f"TimeSeries({self._name!r}, n={len(self)}, "
                f"channels={self.channels})"
            )
        head = ", ".join(f"{v:.3g}" for v in self._values[:4])
        ellipsis = ", ..." if len(self) > 4 else ""
        return f"TimeSeries({self._name!r}, [{head}{ellipsis}], n={len(self)})"
