"""Synthetic signal generators.

Everything here is deterministic given a seed (or an explicit
``numpy.random.Generator``), so tests, examples, and benchmarks are
reproducible.  The generators cover the signal families the paper's
datasets exhibit: trends with shocks (economic indicators), periodic loads
(electricity), and classic shape families (cylinder–bell–funnel) used to
validate shape matching, plus :func:`warped_copy` which produces
time-warped variants — the misalignment that motivates DTW over ED.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "cylinder_bell_funnel",
    "noisy_sine",
    "planted_motif_series",
    "random_walk",
    "seasonal_series",
    "trend_series",
    "warped_copy",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_length(n: int) -> None:
    if n <= 0:
        raise ValidationError(f"length must be positive, got {n}")


def random_walk(n: int, *, start: float = 0.0, step_scale: float = 1.0, seed=None) -> np.ndarray:
    """Gaussian random walk of length *n* starting at *start*."""
    _check_length(n)
    rng = _rng(seed)
    steps = rng.normal(scale=step_scale, size=n)
    steps[0] = 0.0
    return start + np.cumsum(steps)


def noisy_sine(
    n: int,
    *,
    period: float = 20.0,
    amplitude: float = 1.0,
    phase: float = 0.0,
    noise: float = 0.1,
    seed=None,
) -> np.ndarray:
    """Sine wave with additive Gaussian noise."""
    _check_length(n)
    if period <= 0:
        raise ValidationError(f"period must be positive, got {period}")
    rng = _rng(seed)
    t = np.arange(n, dtype=np.float64)
    clean = amplitude * np.sin(2.0 * np.pi * t / period + phase)
    return clean + rng.normal(scale=noise, size=n)


def trend_series(
    n: int,
    *,
    start: float = 0.0,
    slope: float = 0.1,
    noise: float = 0.05,
    shock_probability: float = 0.0,
    shock_scale: float = 1.0,
    seed=None,
) -> np.ndarray:
    """Linear trend with noise and optional rare level shocks.

    The shock mechanism mimics recessions / policy changes in economic
    indicator series: with probability *shock_probability* per step, the
    level jumps by a ``N(0, shock_scale)`` amount and stays shifted.
    """
    _check_length(n)
    if not 0.0 <= shock_probability <= 1.0:
        raise ValidationError("shock_probability must be in [0, 1]")
    rng = _rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = start + slope * t + rng.normal(scale=noise, size=n)
    if shock_probability > 0.0:
        shocks = rng.random(n) < shock_probability
        jumps = np.where(shocks, rng.normal(scale=shock_scale, size=n), 0.0)
        values = values + np.cumsum(jumps)
    return values


def seasonal_series(
    n: int,
    *,
    components: tuple[tuple[float, float], ...] = ((24.0, 1.0),),
    trend_slope: float = 0.0,
    noise: float = 0.1,
    seed=None,
) -> np.ndarray:
    """Sum of sinusoidal components ``(period, amplitude)`` plus trend/noise."""
    _check_length(n)
    rng = _rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = trend_slope * t + rng.normal(scale=noise, size=n)
    for period, amplitude in components:
        if period <= 0:
            raise ValidationError(f"component period must be positive, got {period}")
        values = values + amplitude * np.sin(2.0 * np.pi * t / period)
    return values


def cylinder_bell_funnel(kind: str, n: int = 128, *, noise: float = 0.1, seed=None) -> np.ndarray:
    """One sample from the classic cylinder–bell–funnel family.

    *kind* is ``"cylinder"``, ``"bell"``, or ``"funnel"``.  Onset and
    duration of the event are randomised as in Saito's original
    formulation; CBF is the standard sanity workload for shape-based
    similarity and is used in our accuracy experiments.
    """
    _check_length(n)
    rng = _rng(seed)
    a = int(rng.integers(int(n * 0.1), int(n * 0.35) + 1))
    b = int(rng.integers(int(n * 0.55), int(n * 0.9) + 1))
    height = 6.0 + rng.normal()
    t = np.arange(n, dtype=np.float64)
    mask = (t >= a) & (t <= b)
    span = max(b - a, 1)
    if kind == "cylinder":
        shape = np.where(mask, height, 0.0)
    elif kind == "bell":
        shape = np.where(mask, height * (t - a) / span, 0.0)
    elif kind == "funnel":
        shape = np.where(mask, height * (b - t) / span, 0.0)
    else:
        raise ValidationError(
            f"kind must be 'cylinder', 'bell' or 'funnel', got {kind!r}"
        )
    return shape + rng.normal(scale=noise, size=n)


def planted_motif_series(
    n: int,
    *,
    motif_length: int,
    occurrences: int,
    noise: float = 0.05,
    background_scale: float = 0.5,
    seed=None,
) -> tuple[np.ndarray, list[int]]:
    """Random-walk background with a recurring motif planted in it.

    Returns ``(values, start_positions)``.  Each occurrence is the same
    smooth motif plus fresh noise, at non-overlapping random positions —
    the ground truth for seasonal/recurring-pattern experiments (Fig. 4).
    """
    _check_length(n)
    if motif_length <= 1:
        raise ValidationError("motif_length must be > 1")
    if occurrences < 1:
        raise ValidationError("occurrences must be >= 1")
    if occurrences * motif_length > n:
        raise ValidationError(
            f"{occurrences} occurrences of length {motif_length} do not fit in {n}"
        )
    rng = _rng(seed)
    values = random_walk(n, step_scale=background_scale, seed=rng)
    # A smooth, distinctive motif: one period of a sine with a kink.
    t = np.linspace(0.0, 2.0 * np.pi, motif_length)
    motif = 3.0 * np.sin(t) + 1.5 * np.sin(3.0 * t)

    # Choose non-overlapping slots by sampling from the gaps left over.
    positions: list[int] = []
    attempts = 0
    while len(positions) < occurrences:
        attempts += 1
        if attempts > 10_000:
            raise ValidationError(
                "could not place non-overlapping motif occurrences; "
                "reduce occurrences or motif_length"
            )
        start = int(rng.integers(0, n - motif_length + 1))
        if all(abs(start - p) >= motif_length for p in positions):
            positions.append(start)
    positions.sort()
    for start in positions:
        local = motif + rng.normal(scale=noise, size=motif_length)
        values[start : start + motif_length] = local + values[start]
    return values, positions


def warped_copy(values, *, max_stretch: int = 2, noise: float = 0.0, seed=None) -> np.ndarray:
    """Random time-warped (locally stretched/compressed) copy of *values*.

    Each input point is repeated between 1 and ``max_stretch`` times, then
    the result is decimated back to roughly the original length.  The copy
    is close to the original under DTW but can be far under pointwise ED —
    exactly the misalignment regime where ONEX's DTW-based exploration
    beats Euclidean systems (used by the E6 accuracy experiment).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D array")
    if max_stretch < 1:
        raise ValidationError("max_stretch must be >= 1")
    rng = _rng(seed)
    repeats = rng.integers(1, max_stretch + 1, size=arr.size)
    stretched = np.repeat(arr, repeats)
    # Resample back to the original length to keep lengths comparable.
    idx = np.linspace(0, stretched.size - 1, arr.size).round().astype(int)
    out = stretched[idx]
    if noise > 0.0:
        out = out + rng.normal(scale=noise, size=out.size)
    return out
