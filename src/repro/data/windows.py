"""Strided window extraction shared by the build, ingest, and query layers.

Every consumer of "all windows of length ``L``" used to materialise them
one Python loop iteration at a time (``matrix[k] = values(ref)``).  The
helpers here replace that with :func:`numpy.lib.stride_tricks.
sliding_window_view` gathers — one O(1) strided view per series, stacked
with a single vectorised copy — and with the flat-rank arithmetic that
maps a row of the stacked matrix back to its ``(series, start)`` handle
without enumerating refs.

Row order is the canonical enumeration order everywhere in the library:
series by series (dataset order), window starts ascending on the step
grid — exactly :meth:`TimeSeriesDataset.iter_subsequences`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "window_counts",
    "window_matrix",
    "window_view",
    "rows_to_series_starts",
]


def window_view(values: np.ndarray, length: int, step: int = 1) -> np.ndarray:
    """All step-grid windows of one series as a strided view (no copy).

    ``out[i] == values[i * step : i * step + length]``.  Empty (0 rows)
    when the series is shorter than *length*.  For 1-D input the view is
    2-D ``(n_windows, length)``; for 2-D ``(n, channels)`` input it is
    3-D ``(n_windows, length, channels)`` — windows slide along the time
    axis only.  The view aliases *values*: copy before mutating (the
    library's series are read-only anyway).  Built directly with
    ``as_strided`` (shape/strides are computed here, so the construction
    is safe) — the build pipeline takes one view per (series, length)
    pair and ``sliding_window_view``'s generic argument handling is
    measurable at that call rate.
    """
    n = values.shape[0]
    if values.ndim == 2:
        channels = values.shape[1]
        if n < length:
            return np.empty((0, length, channels), dtype=values.dtype)
        s0, s1 = values.strides
        return np.lib.stride_tricks.as_strided(
            values,
            shape=((n - length) // step + 1, length, channels),
            strides=(s0 * step, s0, s1),
            writeable=False,
        )
    if n < length:
        return np.empty((0, length), dtype=values.dtype)
    stride = values.strides[0]
    return np.lib.stride_tricks.as_strided(
        values,
        shape=((n - length) // step + 1, length),
        strides=(stride * step, stride),
        writeable=False,
    )


def window_counts(series_lengths, length: int, step: int = 1) -> np.ndarray:
    """Windows per series for one subsequence length (int64 array)."""
    n = np.asarray(series_lengths, dtype=np.int64)
    return np.where(n >= length, (n - length) // step + 1, 0)


def window_matrix(
    series_values: list[np.ndarray], length: int, step: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Stack every window of every series into one owned 2-D array.

    Returns ``(matrix, counts)`` where ``counts[i]`` is how many rows
    series *i* contributed; ``matrix`` has ``counts.sum()`` rows in
    canonical enumeration order.  One strided view per series replaces
    the per-window copy loop; the stack itself is a single allocation
    filled with vectorised block copies.

    Multivariate series (2-D ``(n, channels)`` values) contribute
    channel-flattened rows of width ``length * channels`` — each window's
    C-order ``(length, channels)`` block laid out time-major, the
    canonical flattened layout the grouping and persistence layers store.
    """
    if not series_values:
        return np.empty((0, length), dtype=np.float64), np.empty(0, np.int64)
    channels = 1 if series_values[0].ndim == 1 else series_values[0].shape[1]
    counts = window_counts([v.shape[0] for v in series_values], length, step)
    total = int(counts.sum())
    matrix = np.empty((total, length * channels), dtype=np.float64)
    row = 0
    for values, count in zip(series_values, counts):
        if count:
            block = window_view(values, length, step)
            matrix[row : row + count] = block.reshape(int(count), -1)
            row += int(count)
    return matrix, counts


def rows_to_series_starts(
    rows: np.ndarray, counts: np.ndarray, step: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Map flat window-matrix row ranks back to ``(series_index, start)``.

    *rows* are ranks into the canonical enumeration whose per-series
    window counts are *counts*; both outputs are int64 arrays.  This is
    the inverse of :func:`window_matrix`'s row order, evaluated with one
    ``searchsorted`` instead of materialising any handles.
    """
    offsets = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    rows = np.asarray(rows, dtype=np.int64)
    series = np.searchsorted(offsets, rows, side="right") - 1
    starts = (rows - offsets[series]) * step
    return series, starts
