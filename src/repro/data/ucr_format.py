"""Read and write UCR-archive-style time series files.

The UCR/UEA archive format the paper's footnote 5 points at is plain text:
one series per line, first field a class label, remaining fields the
observations, separated by commas or whitespace.  Variable-length series
are supported (lines simply have different field counts); ``NaN`` padding
— used by some archive exports — is stripped from the tail.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import DatasetError

__all__ = ["load_ucr_file", "save_ucr_file"]


def _split_line(line: str) -> list[str]:
    if "," in line:
        return [field for field in line.strip().split(",") if field]
    return line.split()


def load_ucr_file(path, *, name: str | None = None, has_labels: bool = True) -> TimeSeriesDataset:
    """Load a UCR-style text file into a :class:`TimeSeriesDataset`.

    With *has_labels* (default) the first field of each line becomes the
    series' ``label`` metadata.  Series are named ``"<stem>-<lineno>"``.
    Blank lines are skipped; unparsable fields raise :class:`DatasetError`
    with the offending line number.
    """
    path = Path(path)
    dataset = TimeSeriesDataset(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            fields = _split_line(line)
            try:
                numbers = [float(field) for field in fields]
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: unparsable field ({exc})") from exc
            label: float | None = None
            if has_labels:
                if len(numbers) < 2:
                    raise DatasetError(
                        f"{path}:{lineno}: labelled line needs >= 2 fields"
                    )
                label, numbers = numbers[0], numbers[1:]
            # Strip trailing NaN padding, then reject interior NaNs.
            while numbers and math.isnan(numbers[-1]):
                numbers.pop()
            if not numbers:
                raise DatasetError(f"{path}:{lineno}: no observations")
            if any(math.isnan(v) for v in numbers):
                raise DatasetError(f"{path}:{lineno}: interior NaN values")
            metadata = {"line": lineno}
            if label is not None:
                metadata["label"] = label
            dataset.add(TimeSeries(f"{dataset.name}-{lineno}", numbers, metadata))
    if len(dataset) == 0:
        raise DatasetError(f"{path}: file contains no series")
    return dataset


def save_ucr_file(dataset: TimeSeriesDataset, path, *, with_labels: bool = True) -> None:
    """Write a dataset in UCR text format (comma separated).

    The ``label`` metadata (default ``0``) becomes the first field when
    *with_labels* is set, making round-trips through :func:`load_ucr_file`
    lossless up to series names.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for series in dataset:
            fields = []
            if with_labels:
                fields.append(repr(float(series.metadata.get("label", 0.0))))
            fields.extend(repr(float(v)) for v in series.values)
            handle.write(",".join(fields) + "\n")
