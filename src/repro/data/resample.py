"""Resampling and smoothing utilities.

Small, composable transforms the examples and experiments keep needing:
linear-interpolation resampling (comparing series recorded at different
granularities), centred moving averages, and moving-average detrending
(isolating habit shapes from seasonal level drift, as the stream
monitoring demo does).
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import as_sequence
from repro.exceptions import ValidationError

__all__ = ["detrend_moving_average", "moving_average", "resample_linear"]


def resample_linear(values, length: int) -> np.ndarray:
    """Resample *values* to exactly *length* points by linear interpolation.

    Endpoint-preserving: the first and last samples always survive.  Used
    to put series recorded at different granularities on a common grid
    before pointwise operations (DTW itself does not need this).
    """
    arr = as_sequence(values, name="values")
    if length < 1:
        raise ValidationError(f"length must be >= 1, got {length}")
    if arr.shape[0] == 1:
        return np.full(length, arr[0])
    positions = np.linspace(0.0, arr.shape[0] - 1, length)
    return np.interp(positions, np.arange(arr.shape[0]), arr)


def moving_average(values, window: int) -> np.ndarray:
    """Centred moving average with edge shrinkage (same length out).

    Near the edges the window is truncated to what exists rather than
    padded, so flat inputs stay exactly flat and no phantom values leak
    in.
    """
    arr = as_sequence(values, name="values")
    if window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")
    if window == 1:
        return arr.copy()
    half_left = (window - 1) // 2
    half_right = window - 1 - half_left
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    n = arr.shape[0]
    idx = np.arange(n)
    lo = np.maximum(idx - half_left, 0)
    hi = np.minimum(idx + half_right + 1, n)
    return (csum[hi] - csum[lo]) / (hi - lo)


def detrend_moving_average(values, window: int) -> np.ndarray:
    """Subtract the centred moving average — shape minus slow level.

    The stream-monitoring example uses this to strip the annual
    electricity swing so SPRING matches the habit's shape, not its
    seasonal level.
    """
    arr = as_sequence(values, name="values")
    return arr - moving_average(arr, window)
