"""Simulated MATTERS collection (DESIGN.md substitution S3).

The real MATTERS dashboard (matters.mhtc.org) aggregates economic, social,
and education indicators for the fifty US states; it is not downloadable in
this offline environment.  This module builds a statistically faithful
stand-in: for each indicator, states belong to a handful of regional
"archetype" clusters that share a base trajectory (trend + business-cycle
wiggle + shocks), on top of which each state gets idiosyncratic noise, a
level offset, and — crucially for ONEX — its own reporting span, so series
lengths vary and are misaligned exactly like the paper's motivating data.

Series are named ``"<STATE>/<Indicator>"`` (e.g. ``"MA/GrowthRate"``) and
carry ``state``/``indicator``/``start_year`` metadata the visual panes use.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import ValidationError

__all__ = ["DEFAULT_INDICATORS", "STATE_ABBREVIATIONS", "build_matters_collection"]

#: The fifty US states, as displayed in the Query Selection Pane.
STATE_ABBREVIATIONS = (
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
)

#: Indicator name -> (base level, annual trend, cycle amplitude, noise,
#: shock scale).  Scales deliberately differ by orders of magnitude — the
#: paper's §3.3 point about growth-rate percentages vs unemployment counts.
DEFAULT_INDICATORS = {
    "GrowthRate": (2.0, 0.02, 1.2, 0.35, 0.9),
    "Unemployment": (60_000.0, 500.0, 12_000.0, 3_000.0, 5_000.0),
    "TechEmployment": (80_000.0, 2_500.0, 8_000.0, 2_500.0, 4_000.0),
    "TaxRate": (6.0, 0.01, 0.4, 0.15, 0.5),
    "EducationSpending": (9_000.0, 180.0, 600.0, 250.0, 700.0),
}

#: Number of regional archetype clusters states are assigned to.
_N_CLUSTERS = 6


def build_matters_collection(
    *,
    years: int = 25,
    indicators: tuple[str, ...] | None = None,
    states: tuple[str, ...] = STATE_ABBREVIATIONS,
    min_years: int = 8,
    seed: int = 2013,
) -> TimeSeriesDataset:
    """Build the simulated MATTERS panel.

    Parameters
    ----------
    years:
        Maximum reporting span (yearly observations).
    indicators:
        Subset of :data:`DEFAULT_INDICATORS` names; all five by default.
    min_years:
        Shortest reporting span; states report between this and *years*
        observations, producing the variable-length, misaligned collection
        ONEX is designed for.
    seed:
        Seeds everything; identical seeds give identical collections.
    """
    if years < 4:
        raise ValidationError("years must be >= 4")
    if not 2 <= min_years <= years:
        raise ValidationError("min_years must be in [2, years]")
    chosen = tuple(DEFAULT_INDICATORS) if indicators is None else tuple(indicators)
    unknown = [ind for ind in chosen if ind not in DEFAULT_INDICATORS]
    if unknown:
        raise ValidationError(f"unknown indicators: {unknown}")
    if not states:
        raise ValidationError("states must be non-empty")

    rng = np.random.default_rng(seed)
    dataset = TimeSeriesDataset(name="MATTERS-sim")
    cluster_of = {state: int(rng.integers(_N_CLUSTERS)) for state in states}
    t = np.arange(years, dtype=np.float64)

    for indicator in chosen:
        level, trend, cycle_amp, noise, shock_scale = DEFAULT_INDICATORS[indicator]
        # Shared archetype trajectories: one per regional cluster.
        archetypes = []
        for _ in range(_N_CLUSTERS):
            period = float(rng.uniform(5.0, 11.0))  # business-cycle length
            phase = float(rng.uniform(0.0, 2.0 * np.pi))
            slope = trend * float(rng.uniform(0.5, 1.8))
            cycle = cycle_amp * np.sin(2.0 * np.pi * t / period + phase)
            shocks = np.where(
                rng.random(years) < 0.08,
                rng.normal(scale=shock_scale, size=years),
                0.0,
            )
            archetypes.append(slope * t + cycle + np.cumsum(shocks))

        for state in states:
            base = archetypes[cluster_of[state]]
            offset = level * float(rng.uniform(0.7, 1.3))
            idio = rng.normal(scale=noise, size=years)
            values = offset + base + idio
            span = int(rng.integers(min_years, years + 1))
            start_year = 2016 - span + 1
            dataset.add(
                TimeSeries(
                    f"{state}/{indicator}",
                    values[years - span :],
                    metadata={
                        "state": state,
                        "indicator": indicator,
                        "start_year": start_year,
                        "cluster": cluster_of[state],
                    },
                )
            )
    return dataset
