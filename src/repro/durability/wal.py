"""Append-only write-ahead log with CRC framing and group commit.

One :class:`WriteAheadLog` instance owns one file::

    ONEXWAL1                                  8-byte magic header
    [u32 BE payload length][u32 BE crc32(payload)][payload] ...

Each payload is one UTF-8 JSON object ``{"seq", "op", "params",
"request_id"}`` describing one acknowledged mutating operation.  Records
are written under a lock, **flushed to the OS before the append
returns** — so an acknowledged record survives SIGKILL of this process
unconditionally — and fsynced per the sync policy:

``always``
    fsync before every ack; an acknowledged record survives power loss.
``interval`` (default)
    group commit: fsync at most once per ``interval_ms`` wall-clock, on
    whichever append crosses the boundary.  SIGKILL-safe always; power
    loss can cost at most the last interval of acks (the Redis
    ``appendfsync everysec`` trade).
``never``
    leave fsync to the OS writeback cadence (benchmark baseline).

:func:`scan` replays a log file tolerantly: it stops at the first torn
record (short header, short payload, or CRC mismatch), reporting how
many trailing bytes it ignored — a crash mid-append damages at most the
final record, never an earlier one.  :meth:`WriteAheadLog.open` truncates
that torn tail so the file ends on a record boundary before new appends.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.exceptions import PersistenceError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

__all__ = ["WalRecord", "WalScanResult", "WriteAheadLog", "scan"]

MAGIC = b"ONEXWAL1"
_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

_APPENDS_TOTAL = REGISTRY.counter(
    "onex_wal_appends_total", "Records appended to write-ahead logs"
)
_BYTES_TOTAL = REGISTRY.counter(
    "onex_wal_bytes_total", "Bytes appended to write-ahead logs"
)
_FSYNCS_TOTAL = REGISTRY.counter(
    "onex_wal_fsyncs_total", "fsync calls issued by write-ahead logs"
)
_TORN_TOTAL = REGISTRY.counter(
    "onex_wal_torn_records_total", "Torn tail records dropped during WAL scans"
)

SYNC_MODES = ("always", "interval", "never")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutating operation."""

    seq: int
    op: str
    params: dict
    request_id: str | None = None

    def payload(self) -> bytes:
        return json.dumps(
            {
                "seq": self.seq,
                "op": self.op,
                "params": self.params,
                "request_id": self.request_id,
            },
            sort_keys=True,
            default=float,
        ).encode()

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        obj = json.loads(payload.decode())
        return cls(
            seq=int(obj["seq"]),
            op=str(obj["op"]),
            params=dict(obj["params"]),
            request_id=obj.get("request_id"),
        )


@dataclass(frozen=True)
class WalScanResult:
    """Outcome of a tolerant scan: valid records plus tail diagnostics."""

    records: list[WalRecord]
    valid_bytes: int
    torn_bytes: int

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def scan(path) -> WalScanResult:
    """Read every valid record of the log at *path* (torn-tail tolerant).

    Raises :class:`PersistenceError` only for damage that cannot be a
    torn tail — a missing/garbled magic header means the file is not a
    WAL at all.  Everything after the first invalid record is reported
    as ``torn_bytes`` and ignored.
    """
    path = Path(path)
    records: list[WalRecord] = []
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(
                f"{path} is not a WAL file (bad magic {magic!r})"
            )
        valid = fh.tell()
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break  # clean EOF or torn header
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or corrupt final record
            try:
                records.append(WalRecord.from_payload(payload))
            except (ValueError, KeyError, UnicodeDecodeError):
                break  # CRC passed but payload unparsable: treat as torn
            valid = fh.tell()
        fh.seek(0, os.SEEK_END)
        total = fh.tell()
    torn = total - valid
    if torn:
        _TORN_TOTAL.inc()
    return WalScanResult(records=records, valid_bytes=valid, torn_bytes=torn)


class WriteAheadLog:
    """One dataset's append-only log (see module docstring).

    Thread-safe; the serving layer already serialises mutating ops per
    dataset with an exclusive lock, but the WAL locks anyway so direct
    library use is safe too.
    """

    def __init__(
        self,
        path,
        *,
        sync: str = "interval",
        interval_ms: float = 50.0,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(f"unknown WAL sync mode {sync!r} (known: {SYNC_MODES})")
        self.path = Path(path)
        self.sync = sync
        self.interval_s = max(0.0, float(interval_ms)) / 1000.0
        self._lock = threading.Lock()
        self._fh = None
        self._last_seq = 0
        self._last_fsync = 0.0
        self._pending_fsync = False

    # -- lifecycle -----------------------------------------------------

    def open(self) -> WalScanResult:
        """Open (creating if absent), scan, truncate any torn tail.

        Returns the scan so the caller can replay; ``last_seq`` seeds
        the next append's sequence number.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            result = scan(self.path)
            if result.torn_bytes:
                with open(self.path, "r+b") as fh:
                    fh.truncate(result.valid_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        else:
            with open(self.path, "wb") as fh:
                fh.write(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            from repro.core.persist import fsync_dir

            fsync_dir(self.path.parent)
            result = WalScanResult(records=[], valid_bytes=len(MAGIC), torn_bytes=0)
        self._fh = open(self.path, "ab")
        self._last_seq = result.last_seq
        self._last_fsync = time.monotonic()
        return result

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                if self._pending_fsync:
                    try:
                        os.fsync(self._fh.fileno())
                    except OSError:
                        pass
                self._fh.close()
                self._fh = None

    @property
    def last_seq(self) -> int:
        return self._last_seq

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -- appends -------------------------------------------------------

    def append(
        self, op: str, params: dict, request_id: str | None = None
    ) -> WalRecord:
        """Durably log one operation; returns the sequenced record.

        The record's bytes are written and flushed before return in
        every sync mode (SIGKILL safety); fsync timing follows the
        policy.  On any failure the append raises and the caller must
        NOT acknowledge the operation.
        """
        with self._lock:
            if self._fh is None:
                raise PersistenceError(f"WAL {self.path} is not open")
            seq = self._last_seq + 1
            record = WalRecord(seq=seq, op=op, params=params, request_id=request_id)
            payload = record.payload()
            frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            with span("wal.append", op=op, bytes=len(frame)):
                faults.fire("wal.append", path=str(self.path), seq=seq)
                self._fh.write(frame)
                self._fh.flush()
                faults.fire("wal.written", path=str(self.path), seq=seq)
                self._maybe_fsync()
            self._last_seq = seq
            _APPENDS_TOTAL.inc()
            _BYTES_TOTAL.inc(len(frame))
            return record

    def _maybe_fsync(self) -> None:
        if self.sync == "never":
            return
        now = time.monotonic()
        if self.sync == "interval" and now - self._last_fsync < self.interval_s:
            self._pending_fsync = True
            return
        faults.fire("wal.fsync", path=str(self.path))
        os.fsync(self._fh.fileno())
        self._last_fsync = now
        self._pending_fsync = False
        _FSYNCS_TOTAL.inc()

    def sync_now(self) -> None:
        """Force an fsync regardless of policy (checkpoint barrier)."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            faults.fire("wal.fsync", path=str(self.path))
            os.fsync(self._fh.fileno())
            self._last_fsync = time.monotonic()
            self._pending_fsync = False
            _FSYNCS_TOTAL.inc()

    # -- compaction ----------------------------------------------------

    def compact(self, keep_after_seq: int) -> int:
        """Drop records with ``seq <= keep_after_seq``; returns bytes freed.

        Rewrites the surviving tail to a temp file and atomically
        replaces the log (same temp/fsync/rename/dir-fsync discipline as
        every other persistence path), then reopens for append.
        """
        from repro.core.persist import fsync_dir

        with self._lock:
            if self._fh is None:
                raise PersistenceError(f"WAL {self.path} is not open")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            before = os.path.getsize(self.path)
            survivors = [
                r for r in scan(self.path).records if r.seq > keep_after_seq
            ]
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                with open(tmp, "wb") as fh:
                    fh.write(MAGIC)
                    for record in survivors:
                        payload = record.payload()
                        fh.write(
                            _HEADER.pack(len(payload), zlib.crc32(payload))
                            + payload
                        )
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            fsync_dir(self.path.parent)
            self._fh.close()
            self._fh = open(self.path, "ab")
            return before - os.path.getsize(self.path)

    def records(self) -> Iterator[WalRecord]:
        """Iterate the log's current valid records (flushes first)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
        return iter(scan(self.path).records)
