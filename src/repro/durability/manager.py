"""Per-server durability façade: one directory per dataset.

The service layer talks to a single :class:`DurabilityManager` rooted at
``--data-dir``.  Each attached dataset owns a subdirectory::

    <data-dir>/<slug>/
        dataset.json     identity file: the (unslugged) dataset name
        wal.log          write-ahead log
        base-<seq>.npz   checkpoint artifacts (see checkpoint.py)
        data-<seq>.npz
        manifest.json

The slug is the dataset name with non-``[A-Za-z0-9._-]`` characters
replaced by ``_`` plus a short hash suffix whenever the substitution
changed anything, so distinct exotic names never collide on disk; the
``dataset.json`` identity file (written before the first WAL append)
keeps the real name recoverable without parsing any checkpoint.

Checkpoint cadence is append-count based (``checkpoint_every``); after
each committed checkpoint the WAL is compacted up to the *previous*
retained checkpoint's seq, preserving the fallback path described in
:mod:`repro.durability.checkpoint`.
"""

from __future__ import annotations

import hashlib
import re
import shutil
import threading
from pathlib import Path

from repro.core.persist import atomic_json_write
from repro.durability import checkpoint as checkpoint_mod
from repro.durability.wal import WalScanResult, WriteAheadLog
from repro.exceptions import PersistenceError
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY

__all__ = ["DatasetDurability", "DurabilityManager", "dataset_slug"]

_LOGGER = get_logger("durability")

_WAL_SIZE = REGISTRY.gauge(
    "onex_wal_size_bytes", "Current size of each dataset write-ahead log"
)

_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")
IDENTITY_NAME = "dataset.json"


def dataset_slug(name: str) -> str:
    """Filesystem-safe directory name for *name* (stable, collision-free)."""
    slug = _SLUG_UNSAFE.sub("_", name) or "_"
    if slug != name:
        slug = f"{slug}-{hashlib.sha256(name.encode()).hexdigest()[:8]}"
    return slug


class DatasetDurability:
    """WAL + checkpoint state of one attached dataset."""

    def __init__(
        self,
        name: str,
        directory: Path,
        wal: WriteAheadLog,
        checkpoint_seq: int = 0,
    ) -> None:
        self.name = name
        self.directory = directory
        self.wal = wal
        self.checkpoint_seq = checkpoint_seq
        self.appends_since_checkpoint = 0

    def log(self, op: str, params: dict, request_id: str | None = None):
        record = self.wal.append(op, params, request_id)
        self.appends_since_checkpoint += 1
        _WAL_SIZE.set(self.wal.size())
        return record

    def checkpoint(self, base, stream_state: dict | None = None) -> dict:
        """Commit a checkpoint at the current WAL position; compact.

        The WAL is fsynced first so the manifest never claims coverage
        the log cannot back; compaction keeps everything after the
        *previous* retained checkpoint (fallback path).
        """
        self.wal.sync_now()
        entry = checkpoint_mod.write_checkpoint(
            self.directory,
            base,
            wal_seq=self.wal.last_seq,
            stream_state=stream_state,
        )
        manifest = checkpoint_mod.read_manifest(self.directory)
        retained = [c["seq"] for c in (manifest or {}).get("checkpoints", [])]
        keep_after = min(retained) if retained else 0
        freed = self.wal.compact(keep_after)
        self.checkpoint_seq = entry["seq"]
        self.appends_since_checkpoint = 0
        _WAL_SIZE.set(self.wal.size())
        log_event(
            _LOGGER,
            "info",
            "checkpoint.committed",
            dataset=self.name,
            wal_seq=entry["seq"],
            compacted_bytes=freed,
        )
        return entry

    def status(self) -> dict:
        return {
            "wal_seq": self.wal.last_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "wal_bytes": self.wal.size(),
            "appends_since_checkpoint": self.appends_since_checkpoint,
        }

    def close(self) -> None:
        self.wal.close()


class DurabilityManager:
    """All attached datasets' durability state under one ``--data-dir``."""

    def __init__(
        self,
        data_dir,
        *,
        wal_sync: str = "interval",
        wal_sync_interval_ms: float = 50.0,
        checkpoint_every: int = 256,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.wal_sync = wal_sync
        self.wal_sync_interval_ms = float(wal_sync_interval_ms)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self._datasets: dict[str, DatasetDurability] = {}
        self._lock = threading.Lock()
        self.data_dir.mkdir(parents=True, exist_ok=True)

    # -- attachment ----------------------------------------------------

    def attach(self, name: str) -> tuple[DatasetDurability, WalScanResult]:
        """Open (creating if needed) the durability state for *name*.

        Returns the handle plus the WAL scan — a fresh dataset scans
        empty; an existing directory (recovery) yields the tail to
        replay.  The identity file is (re)written before any append so
        recovery can always map the directory back to its dataset.
        """
        with self._lock:
            if name in self._datasets:
                raise PersistenceError(f"dataset {name!r} already attached")
            directory = self.data_dir / dataset_slug(name)
            directory.mkdir(parents=True, exist_ok=True)
            atomic_json_write(directory / IDENTITY_NAME, {"dataset": name})
            wal = WriteAheadLog(
                directory / "wal.log",
                sync=self.wal_sync,
                interval_ms=self.wal_sync_interval_ms,
            )
            scan = wal.open()
            entry = checkpoint_mod.latest_valid_checkpoint(directory)
            handle = DatasetDurability(
                name,
                directory,
                wal,
                checkpoint_seq=entry["seq"] if entry else 0,
            )
            self._datasets[name] = handle
            return handle, scan

    def get(self, name: str) -> DatasetDurability | None:
        with self._lock:
            return self._datasets.get(name)

    def detach(self, name: str, *, delete: bool = False) -> None:
        """Close (and optionally delete) one dataset's durability state."""
        with self._lock:
            handle = self._datasets.pop(name, None)
        if handle is None:
            return
        handle.close()
        if delete:
            shutil.rmtree(handle.directory, ignore_errors=True)

    # -- hooks the service calls --------------------------------------

    def log(self, name: str, op: str, params: dict, request_id: str | None):
        handle = self.get(name)
        if handle is None:
            raise PersistenceError(f"dataset {name!r} has no durability state")
        return handle.log(op, params, request_id)

    def maybe_checkpoint(self, name: str, base, stream_state=None) -> dict | None:
        """Checkpoint when the append-count cadence says so."""
        handle = self.get(name)
        if handle is None:
            return None
        if handle.appends_since_checkpoint < self.checkpoint_every:
            return None
        return handle.checkpoint(base, stream_state)

    # -- discovery & introspection ------------------------------------

    def stored_datasets(self) -> list[tuple[str, Path]]:
        """(dataset name, directory) for every identity file on disk."""
        import json

        out: list[tuple[str, Path]] = []
        if not self.data_dir.is_dir():
            return out
        for directory in sorted(self.data_dir.iterdir()):
            identity = directory / IDENTITY_NAME
            if not identity.is_file():
                continue
            try:
                with open(identity) as fh:
                    name = json.load(fh)["dataset"]
            except (OSError, ValueError, KeyError):
                continue
            out.append((str(name), directory))
        return out

    def status(self) -> dict:
        with self._lock:
            return {
                name: handle.status()
                for name, handle in sorted(self._datasets.items())
            }

    def close(self) -> None:
        with self._lock:
            handles = list(self._datasets.values())
            self._datasets.clear()
        for handle in handles:
            handle.close()
