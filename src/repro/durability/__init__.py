"""Durable state for the ONEX server: WAL, checkpoints, recovery.

The serving layer keeps every dataset in RAM; this package makes the
mutating slice of the API survive process death (see DESIGN.md §8):

- :mod:`repro.durability.wal` — per-dataset append-only write-ahead log
  with CRC-per-record framing, group-commit fsync, and a torn-tail
  tolerant scanner;
- :mod:`repro.durability.checkpoint` — periodic atomic checkpoints that
  reuse :meth:`repro.core.base.OnexBase.save` plus a monitor/event-seq
  manifest, after which the log is compacted;
- :mod:`repro.durability.recovery` — restore each dataset from its
  latest valid checkpoint and replay the WAL tail;
- :mod:`repro.durability.manager` — the per-server façade the service
  layer talks to (attach/log/checkpoint/status);
- :mod:`repro.durability.idempotency` — the bounded request-id replay
  window that makes mutating retries safe.
"""

from repro.durability.idempotency import IdempotencyWindow
from repro.durability.manager import (
    DatasetDurability,
    DurabilityManager,
    dataset_slug,
)
from repro.durability.recovery import RecoveryReport, recover_all
from repro.durability.wal import WalRecord, WalScanResult, WriteAheadLog

__all__ = [
    "DatasetDurability",
    "DurabilityManager",
    "IdempotencyWindow",
    "RecoveryReport",
    "WalRecord",
    "WalScanResult",
    "WriteAheadLog",
    "dataset_slug",
    "recover_all",
]
