"""Bounded request-id replay window for idempotent mutating retries.

A client that times out on ``append_points`` cannot tell whether the
server executed the mutation before the connection died.  Retrying
blindly would double-append; never retrying turns every blip into data
loss.  The resolution is standard: the client mints a ``request_id``
(PR 7 already does), the server remembers the outcome of each mutating
request by id, and a duplicate id gets the *recorded* response back
instead of a second execution.

The window is a bounded LRU — a lookup refreshes its entry, so an id a
client is actively retrying stays resident while long-settled ones age
out.  Retries arrive within seconds, so a few thousand entries is a
generous horizon, and an unbounded map would be a slow leak.  Both
success and error responses are recorded — if an op half-executed and
then failed, the retry must see that failure, not silently run the
mutation again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["IdempotencyWindow"]


class IdempotencyWindow:
    """Bounded request-id → recorded-response map (thread-safe)."""

    def __init__(self, capacity: int = 1024) -> None:
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, request_id: str | None):
        """The recorded response for *request_id*, or None."""
        if not request_id:
            return None
        with self._lock:
            entry = self._entries.get(request_id)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(request_id)
            return entry

    def record(self, request_id: str | None, response) -> None:
        """Remember *response* as the outcome of *request_id*."""
        if not request_id or response is None:
            return
        with self._lock:
            self._entries[request_id] = response
            self._entries.move_to_end(request_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
