"""Restore durable datasets: latest valid checkpoint + WAL tail replay.

:func:`recover_all` walks every identity-bearing subdirectory of the
manager's data dir, and per dataset:

1. verifies and loads the newest checkpoint whose artifacts hash-check
   (falling back to the previous retained entry, then to "none");
2. re-registers the dataset with the engine via
   :meth:`~repro.core.engine.OnexEngine.restore_dataset`, reseeding
   monitors, the event sequence, and stream counters from the manifest;
3. opens the WAL (truncating any torn tail) and replays every record
   with ``seq > checkpoint_seq`` through the caller's ``apply`` hook —
   the service routes these through the very handlers that produced
   them, so replay preserves acknowledged state *and* refills the
   idempotency window.

Invariants (asserted by the chaos suite):

- every acknowledged mutating op is either inside the checkpoint or in
  the replayed tail — never lost;
- a torn final record (crash mid-append, pre-ack) is dropped, never
  "repaired" into a write nobody was promised;
- event sequence numbers continue monotonically across the restart.

A dataset whose directory holds no loadable checkpoint cannot be
replayed (the WAL stores deltas, not a base) — it is reported in
``errors`` and skipped rather than aborting the whole server start.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.durability import checkpoint as checkpoint_mod
from repro.exceptions import PersistenceError
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

__all__ = ["RecoveryReport", "recover_all"]

_LOGGER = get_logger("durability")

_REPLAYED_TOTAL = REGISTRY.counter(
    "onex_recovery_replayed_records_total", "WAL records replayed at recovery"
)
_RECOVERED_DATASETS = REGISTRY.counter(
    "onex_recovery_datasets_total", "Datasets restored at recovery"
)
_TORN_BYTES = REGISTRY.counter(
    "onex_recovery_torn_bytes_total", "Torn WAL tail bytes dropped at recovery"
)
_RECOVERY_SECONDS = REGISTRY.gauge(
    "onex_recovery_last_seconds", "Wall-clock duration of the last recovery"
)


@dataclass
class RecoveryReport:
    """What a recovery pass restored (surfaced via /health and logs)."""

    datasets: dict[str, dict] = field(default_factory=dict)
    errors: list[dict] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def replayed_records(self) -> int:
        return sum(d["replayed"] for d in self.datasets.values())

    def as_dict(self) -> dict:
        return {
            "datasets": dict(self.datasets),
            "errors": list(self.errors),
            "replayed_records": self.replayed_records,
            "duration_s": self.duration_s,
        }


def recover_all(manager, engine, apply, mark=None) -> RecoveryReport:
    """Restore every stored dataset into *engine* (see module docstring).

    *apply* is ``apply(dataset_name, record)`` — the service's replay
    hook, which must execute the record's operation without re-logging
    it.  *mark* is ``mark(dataset_name, record)``, called for WAL
    records already *covered* by the restored checkpoint (their effects
    are in the checkpoint state, so they must NOT re-execute) — the
    service uses it to reseed the idempotency window, so a client retry
    of a pre-crash request dedupes even when a checkpoint landed between
    its execution and the crash.  Datasets the engine already holds are
    skipped (their state is live, not on disk).
    """
    started = time.monotonic()
    report = RecoveryReport()
    for name, directory in manager.stored_datasets():
        if name in engine.dataset_names:
            continue
        with span("wal.recover", dataset=name):
            try:
                summary = _recover_one(manager, engine, apply, mark, name)
            except Exception as exc:  # keep serving what *can* recover
                report.errors.append({"dataset": name, "error": str(exc)})
                manager.detach(name)
                log_event(
                    _LOGGER,
                    "error",
                    "recovery.failed",
                    dataset=name,
                    error=str(exc),
                )
                continue
        report.datasets[name] = summary
        _RECOVERED_DATASETS.inc()
        _REPLAYED_TOTAL.inc(summary["replayed"])
        if summary["torn_bytes"]:
            _TORN_BYTES.inc(summary["torn_bytes"])
    report.duration_s = time.monotonic() - started
    _RECOVERY_SECONDS.set(report.duration_s)
    log_event(
        _LOGGER,
        "info",
        "recovery.replayed",
        datasets=len(report.datasets),
        records=report.replayed_records,
        errors=len(report.errors),
        duration_s=round(report.duration_s, 4),
    )
    return report


def _recover_one(manager, engine, apply, mark, name: str) -> dict:
    # Chaos hook: the recovery x serving interleaving tests stretch this
    # window (sleep) to observe /ready=false + clean 503s mid-recovery,
    # or fail one dataset (raise) to observe degraded partial recovery.
    faults.fire("recovery.dataset", dataset=name)
    handle, scan = manager.attach(name)
    entry = checkpoint_mod.latest_valid_checkpoint(handle.directory)
    if entry is None:
        raise PersistenceError(
            f"dataset {name!r} has no valid checkpoint to restore from"
        )
    dataset, base = checkpoint_mod.load_checkpoint(handle.directory, entry)
    engine.restore_dataset(
        dataset,
        base,
        monitors=entry.get("monitors", ()),
        event_seq=entry.get("event_seq", 0),
        stream_counters=entry.get("stream_counters") or None,
    )
    handle.checkpoint_seq = entry["seq"]
    tail = [r for r in scan.records if r.seq > entry["seq"]]
    if mark is not None:
        # Compaction keeps everything after the *previous* checkpoint,
        # so covered records back to one full checkpoint interval are
        # still here for idempotency reseeding.
        for record in scan.records:
            if record.seq <= entry["seq"]:
                mark(name, record)
    for record in tail:
        apply(name, record)
    handle.appends_since_checkpoint = len(tail)
    return {
        "checkpoint_seq": entry["seq"],
        "wal_seq": handle.wal.last_seq,
        "replayed": len(tail),
        "torn_bytes": scan.torn_bytes,
        # Post-replay, not the checkpoint snapshot: the chaos suite
        # compares this against the never-crashed reference.
        "fingerprint": engine.refresh_fingerprint(name),
    }
