"""Atomic per-dataset checkpoints with a manifest commit point.

One dataset's durability directory holds::

    wal.log            the write-ahead log (repro.durability.wal)
    base-<seq>.npz     OnexBase.save archive as of WAL seq <seq>
    data-<seq>.npz     raw dataset snapshot (values + metadata) at <seq>
    manifest.json      the commit point: list of checkpoint entries

A checkpoint is *committed* by the atomic replace of ``manifest.json`` —
until then the new ``base-<seq>``/``data-<seq>`` files are invisible
garbage a crash can leave behind harmlessly.  The manifest retains the
TWO newest entries: should the newest checkpoint's files turn out
unreadable (bitrot, torn by an unsynced disk), recovery falls back to
the previous entry and simply replays a longer WAL tail.  For the same
reason the WAL is compacted only up to the *previous* checkpoint's seq.

Each entry records a sha256 per artifact so recovery can *prove* an
entry valid before trusting it, the monitor/event-seq snapshot, and the
stream counters — everything :func:`repro.durability.recovery` needs to
reconstruct the serving state at that WAL position.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.base import OnexBase
from repro.core.persist import atomic_json_write, atomic_npz_write, sha256_file
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import PersistenceError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

__all__ = [
    "latest_valid_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "write_checkpoint",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1
KEEP_CHECKPOINTS = 2

_CHECKPOINTS_TOTAL = REGISTRY.counter(
    "onex_checkpoints_total", "Checkpoints committed",
)
_CHECKPOINT_SECONDS = REGISTRY.gauge(
    "onex_checkpoint_last_seconds", "Wall-clock duration of the last checkpoint"
)


def _save_dataset_snapshot(path: Path, dataset: TimeSeriesDataset) -> None:
    """Write the *raw* dataset (values + metadata) as one npz, atomically."""
    import json

    arrays = {
        f"series_{i}": series.values for i, series in enumerate(dataset)
    }
    meta = {
        "name": dataset.name,
        "series": [
            {"name": s.name, "metadata": dict(s.metadata)} for s in dataset
        ],
    }
    arrays["meta"] = np.array(json.dumps(meta, sort_keys=True))
    atomic_npz_write(path, arrays)


def _load_dataset_snapshot(path: Path) -> TimeSeriesDataset:
    import json

    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        series = [
            TimeSeries(
                entry["name"],
                archive[f"series_{i}"],
                entry.get("metadata") or None,
            )
            for i, entry in enumerate(meta["series"])
        ]
    return TimeSeriesDataset(series, name=meta["name"])


def read_manifest(directory) -> dict | None:
    """The parsed manifest of *directory*, or None when absent/garbled.

    A garbled manifest is treated as "no checkpoints" rather than an
    error: the WAL still holds the full history from seq 0 until the
    first compaction, and recovery reports the condition.
    """
    import json

    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or "checkpoints" not in manifest:
        return None
    return manifest


def write_checkpoint(
    directory,
    base: OnexBase,
    *,
    wal_seq: int,
    stream_state: dict | None = None,
) -> dict:
    """Capture *base* (and streaming state) as of *wal_seq*; commit it.

    The caller must have fsynced the WAL through *wal_seq* first (the
    manager does) so the checkpoint never claims coverage the log cannot
    back.  Returns the committed manifest entry.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    base_file = f"base-{wal_seq}.npz"
    data_file = f"data-{wal_seq}.npz"
    with span("wal.checkpoint", wal_seq=wal_seq):
        base.save(directory / base_file)
        _save_dataset_snapshot(directory / data_file, base.raw_dataset)
        entry = {
            "seq": int(wal_seq),
            "base_file": base_file,
            "data_file": data_file,
            "base_sha256": sha256_file(directory / base_file),
            "data_sha256": sha256_file(directory / data_file),
            "event_seq": int((stream_state or {}).get("event_seq", 0)),
            "monitors": list((stream_state or {}).get("monitors", [])),
            "stream_counters": dict(
                (stream_state or {}).get("stream_counters", {})
            ),
            "created": time.time(),
        }
        manifest = read_manifest(directory) or {
            "format": MANIFEST_FORMAT,
            "dataset": base.raw_dataset.name,
            "checkpoints": [],
        }
        checkpoints = [
            c for c in manifest["checkpoints"] if c["seq"] != entry["seq"]
        ]
        checkpoints.append(entry)
        checkpoints.sort(key=lambda c: c["seq"])
        retained = checkpoints[-KEEP_CHECKPOINTS:]
        dropped = checkpoints[:-KEEP_CHECKPOINTS]
        manifest["checkpoints"] = retained
        manifest_path = directory / MANIFEST_NAME
        faults.fire("checkpoint.manifest", path=str(manifest_path))
        atomic_json_write(manifest_path, manifest)
        # Only after the manifest commit are superseded artifacts garbage.
        for old in dropped:
            for name in (old.get("base_file"), old.get("data_file")):
                if name:
                    try:
                        (directory / name).unlink()
                    except OSError:
                        pass
    _CHECKPOINTS_TOTAL.inc()
    _CHECKPOINT_SECONDS.set(time.monotonic() - started)
    return entry


def latest_valid_checkpoint(directory) -> dict | None:
    """Newest manifest entry whose artifacts exist and hash-verify.

    Falls back entry by entry (newest first); None when no entry
    survives — recovery then replays the WAL from seq 0.
    """
    manifest = read_manifest(directory)
    if manifest is None:
        return None
    directory = Path(directory)
    for entry in sorted(
        manifest["checkpoints"], key=lambda c: c["seq"], reverse=True
    ):
        try:
            ok = sha256_file(directory / entry["base_file"]) == entry[
                "base_sha256"
            ] and sha256_file(directory / entry["data_file"]) == entry[
                "data_sha256"
            ]
        except OSError:
            ok = False
        if ok:
            return entry
    return None


def load_checkpoint(directory, entry: dict) -> tuple[TimeSeriesDataset, OnexBase]:
    """Materialise one verified checkpoint entry into (dataset, base)."""
    directory = Path(directory)
    dataset = _load_dataset_snapshot(directory / entry["data_file"])
    try:
        base = OnexBase.load(directory / entry["base_file"], dataset)
    except Exception as exc:
        raise PersistenceError(
            f"checkpoint {entry['base_file']} failed to load: {exc}"
        ) from exc
    return dataset, base
