"""Command-line interface: ``python -m repro <command>``.

Wraps the engine and server for shell use.  Commands mirror the service
operations so everything the HTTP API offers is scriptable:

- ``describe`` — load a source and print collection + base statistics.
- ``query`` — best matches for a brushed series window; ``--starts``
  brushes several windows and submits them as one ``query_batch``;
  ``--window`` constrains every DTW to a Sakoe-Chiba band (engaging the
  persisted centroid envelopes and the band-limited kernel);
  ``--metric`` swaps the distance metric (any registry name).
- ``seasonal`` — recurring patterns within one series.
- ``thresholds`` — data-driven similarity-threshold suggestions.
- ``recommend`` — the same recommendation with the sampling knobs
  (``--samples``, ``--sample-seed``) exposed; reads the loaded base's
  normalised value store, so it answers at serving speed.
- ``sensitivity`` — match-count curve across candidate thresholds.
- ``profile`` — the full sensitivity workflow in one command: the grid
  defaults to the recommender's data-driven quantiles and ambiguous
  members are verified exactly through the batched cascade.
- ``stream`` — replay a series as a live stream against a standing
  pattern monitor (the streaming subsystem end to end).
- ``serve`` — run the HTTP JSON API (the demo's web backend).

Sources: ``matters`` / ``electricity`` (simulated demo collections) or
``ucr:<path>`` for archive-format files.  Output is human-readable by
default; ``--json`` emits machine-readable payloads.  ``--log-level``
enables the library's structured log stream on stderr (``--log-json``
switches it to one JSON object per line); ``query --explain`` attaches
the engine's trace — span tree plus pruning-cascade counters — to the
result.
"""

from __future__ import annotations

import argparse
import json
import sys

import repro
from repro.core.config import QueryConfig
from repro.exceptions import OnexError, RemoteError
from repro.obs.logs import configure_logging
from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.protocol import Request
from repro.server.service import OnexService

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ONEX interactive time series analytics (SIGMOD 2017 reproduction)",
    )
    parser.add_argument("--json", action="store_true", help="emit raw JSON payloads")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="emit the library's structured log events to "
                             "stderr at this level (default: logging off)")
    parser.add_argument("--log-json", action="store_true",
                        help="with --log-level: one JSON object per log "
                             "line instead of key=value text")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--source", default="matters",
                       help="matters | electricity | ucr:<path>")
        p.add_argument("--st", type=float, default=None,
                       help="similarity threshold (default: data-driven)")
        p.add_argument("--min-length", type=int, default=None)
        p.add_argument("--max-length", type=int, default=None)
        p.add_argument("--seed", type=int, default=2013)
        p.add_argument("--indicators", nargs="*", default=None,
                       help="MATTERS indicator subset (e.g. GrowthRate)")
        p.add_argument("--years", type=int, default=16)
        p.add_argument("--min-years", type=int, default=10)
        p.add_argument("--window", type=int, default=None,
                       help="Sakoe-Chiba band radius for all DTW "
                            "evaluations (default: unconstrained; banded "
                            "queries engage the persisted centroid "
                            "envelopes and the band-limited kernel)")
        p.add_argument("--build-workers", type=int, default=None,
                       help="fan the per-length base-construction shards "
                            "over this many worker processes (default: 1, "
                            "in-process; results are identical at any "
                            "setting)")
        p.add_argument("--timeout-ms", type=float, default=None,
                       help="deadline for each long-running operation; an "
                            "exceeded budget yields a structured "
                            "DeadlineExceeded error with progress so far")
        p.add_argument("--allow-partial", action="store_true",
                       help="with --timeout-ms: degrade to the best "
                            "verified partial result (flagged exact=false) "
                            "instead of erroring, where supported")
        p.add_argument("--server", default=None, metavar="URL",
                       help="route every operation to a running ONEX "
                            "server at URL (e.g. http://127.0.0.1:8765) "
                            "instead of executing in-process; read-only "
                            "operations are retried with backoff when the "
                            "server sheds load")

    p = sub.add_parser("describe", help="collection and base statistics")
    add_source_options(p)

    p = sub.add_parser("query", help="best matches for a brushed window")
    add_source_options(p)
    p.add_argument("--series", required=True)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--starts", nargs="+", type=int, default=None,
                   help="brush several windows (one per start) and submit "
                        "them as a single query_batch request")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--metric", default=None,
                   help="distance metric: dtw (default), euclidean, "
                        "cityblock, chebyshev, derivative_dtw, or "
                        "weighted_dtw; non-DTW metrics answer through the "
                        "exact registry scan")
    p.add_argument("--explain", action="store_true",
                   help="trace the query and attach the span tree plus "
                        "pruning-cascade counters to the result (matches "
                        "are identical to the untraced call)")

    p = sub.add_parser("seasonal", help="recurring patterns within one series")
    add_source_options(p)
    p.add_argument("--series", required=True)
    p.add_argument("--length", type=int, required=True)
    p.add_argument("--threshold", type=float, default=None)
    p.add_argument("--step", type=int, default=1)
    p.add_argument("--remove-level", action="store_true")

    p = sub.add_parser("thresholds", help="similarity-threshold suggestions")
    add_source_options(p)
    p.add_argument("--length", type=int, required=True)

    p = sub.add_parser("recommend", help="similarity-threshold recommendation "
                                         "(thresholds + sampling knobs)")
    add_source_options(p)
    p.add_argument("--length", type=int, required=True)
    p.add_argument("--samples", type=int, default=2000,
                   help="random subsequence pairs sampled")
    p.add_argument("--sample-seed", type=int, default=0,
                   help="RNG seed of the pair sampling")

    p = sub.add_parser("sensitivity", help="match counts across thresholds")
    add_source_options(p)
    p.add_argument("--series", required=True)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--grid", nargs="+", type=float,
                   default=[0.02, 0.05, 0.1, 0.2])
    p.add_argument("--verify", action="store_true")

    p = sub.add_parser(
        "profile",
        help="verified sensitivity profile over a data-driven threshold grid",
    )
    add_source_options(p)
    p.add_argument("--series", required=True)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--length", type=int, required=True,
                   help="brushed window length (also the length the "
                        "default grid is recommended for)")
    p.add_argument("--grid", nargs="+", type=float, default=None,
                   help="explicit thresholds (default: the recommender's "
                        "quantiles for the brushed length, plus 2x the "
                        "default suggestion)")
    p.add_argument("--no-verify", action="store_true",
                   help="bounds-only curves (skip exact resolution of "
                        "ambiguous members)")

    p = sub.add_parser(
        "stream",
        help="replay a series as a live stream against a standing pattern monitor",
    )
    add_source_options(p)
    p.add_argument("--series", required=True,
                   help="series to brush the pattern from and replay live")
    p.add_argument("--pattern-start", type=int, default=0)
    p.add_argument("--pattern-length", type=int, required=True)
    p.add_argument("--epsilon", type=float, default=None,
                   help="raw warping-cost threshold (default: ST * (2m-1))")
    p.add_argument("--chunk", type=int, default=8,
                   help="points appended per simulated arrival")
    p.add_argument("--max-events", type=int, default=10,
                   help="events printed (all events are still counted)")

    p = sub.add_parser("serve", help="run the HTTP JSON API")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--workers", type=int, default=0,
                   help="pre-fork this many worker processes serving "
                        "read-only queries against mmap-shared base "
                        "snapshots; the supervisor restarts crashed "
                        "workers with backoff and sheds cleanly at zero "
                        "capacity (default: 0, single-process)")
    p.add_argument("--snapshot-dir", default=None,
                   help="with --workers: directory for the published mmap "
                        "base snapshots (default: <data-dir>/pool-snapshots, "
                        "or a temporary directory)")
    p.add_argument("--read-timeout-s", type=float, default=30.0,
                   help="per-connection socket read timeout; a client that "
                        "stalls mid-request-body gets a structured 408 "
                        "instead of pinning a handler thread")
    p.add_argument("--mode", choices=("fast", "exact"), default="fast",
                   help="query strategy the service answers with")
    p.add_argument("--window", type=int, default=None,
                   help="Sakoe-Chiba band radius for all DTW evaluations")
    p.add_argument("--build-workers", type=int, default=None,
                   help="default worker count for server-side base "
                        "builds (load_dataset requests may override)")
    p.add_argument("--max-in-flight", type=int, default=8,
                   help="requests executing concurrently before arrivals "
                        "queue (admission control)")
    p.add_argument("--max-queue", type=int, default=16,
                   help="requests waiting for a slot before arrivals are "
                        "shed with 503 + Retry-After")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   help="seconds shutdown waits for in-flight requests "
                        "before abandoning them")
    p.add_argument("--default-timeout-ms", type=float, default=None,
                   help="server-side deadline applied to long-running "
                        "operations that carry no timeout_ms of their own")
    p.add_argument("--data-dir", default=None,
                   help="durable state directory: mutating operations are "
                        "write-ahead logged and checkpointed here, and "
                        "startup recovers every stored dataset (latest "
                        "valid checkpoint + WAL tail replay) before "
                        "serving")
    p.add_argument("--wal-sync", choices=("always", "interval", "never"),
                   default="interval",
                   help="WAL fsync policy: per-append (always), group "
                        "commit (interval, default), or OS writeback "
                        "(never); every mode flushes before ack, so "
                        "acknowledged writes survive SIGKILL regardless")
    p.add_argument("--wal-sync-interval-ms", type=float, default=50.0,
                   help="group-commit window for --wal-sync interval")
    p.add_argument("--checkpoint-every", type=int, default=256,
                   help="WAL appends between checkpoints (after which the "
                        "log is compacted)")

    return parser


def _load_params(args: argparse.Namespace) -> dict:
    params: dict = {"source": args.source, "seed": args.seed}
    if args.source == "matters":
        params["years"] = args.years
        params["min_years"] = args.min_years
        if args.indicators:
            params["indicators"] = args.indicators
    if args.st is not None:
        params["similarity_threshold"] = args.st
    if args.min_length is not None:
        params["min_length"] = args.min_length
    if args.max_length is not None:
        params["max_length"] = args.max_length
    if args.build_workers is not None:
        params["num_workers"] = args.build_workers
    return params


def _deadline_options(args: argparse.Namespace) -> dict:
    """The request-level deadline parameters the flags translate to.

    Harmless on operations that ignore them (the service validates and
    applies them only where the protocol documents support).
    """
    opts: dict = {}
    if getattr(args, "timeout_ms", None) is not None:
        opts["timeout_ms"] = args.timeout_ms
        if getattr(args, "allow_partial", False):
            opts["allow_partial"] = True
    return opts


def _call(backend, op: str, params: dict) -> dict:
    """Dispatch one operation in-process or over HTTP (``--server``)."""
    if isinstance(backend, OnexClient):
        return backend.call(op, params)  # RemoteError is an OnexError
    response = backend.handle(Request(op, params))
    if not response.ok:
        raise OnexError(f"{response.error_type}: {response.error_message}")
    return response.result


def _emit(payload, args, human) -> None:
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        human(payload)


def _print_explain(payload: dict) -> None:
    """Render a result's ``explain`` block (``query --explain``)."""
    explain = payload.get("explain")
    if not explain:
        return
    print(f"explain (request {explain['request_id']}, "
          f"{explain['duration_ms']:.2f} ms):")

    def walk(node: dict, depth: int) -> None:
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(node.get("attrs", {}).items())
        )
        print(f"  {'  ' * depth}{node['name']:<24} "
              f"{node.get('duration_ms', 0.0):9.3f} ms  {attrs}")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(explain["spans"], 0)
    stats = explain.get("stats")
    if stats:
        shown = {k: v for k, v in sorted(stats.items()) if v}
        print("cascade: " + ", ".join(f"{k}={v}" for k, v in shown.items()))


def _serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: bind first, recover behind the ready gate.

    Startup failures (port already bound, unusable ``--data-dir``) are
    structured :class:`~repro.exceptions.StartupError`\\ s — ``main``
    renders them as one ``error:`` line, never a traceback.  The socket
    binds *before* recovery runs: clients racing a restart see clean
    503s (``/ready`` false, ``NotReadyError`` envelopes) instead of
    connection-refused, and never a partially replayed engine.
    """
    import os
    import shutil
    import tempfile
    from pathlib import Path

    from repro.exceptions import StartupError

    durability = None
    if args.data_dir is not None:
        data_path = Path(args.data_dir)
        if data_path.exists():
            if not data_path.is_dir():
                raise StartupError(
                    f"--data-dir {args.data_dir} is not a directory"
                )
            if not os.access(data_path, os.R_OK | os.W_OK | os.X_OK):
                raise StartupError(
                    f"--data-dir {args.data_dir} is not readable/writable"
                )
        from repro.durability import DurabilityManager

        try:
            durability = DurabilityManager(
                args.data_dir,
                wal_sync=args.wal_sync,
                wal_sync_interval_ms=args.wal_sync_interval_ms,
                checkpoint_every=args.checkpoint_every,
            )
        except OSError as exc:
            raise StartupError(
                f"cannot open --data-dir {args.data_dir}: {exc}"
            ) from exc
    service = OnexService(
        QueryConfig(mode=args.mode, window=args.window),
        default_build_workers=args.build_workers,
        default_timeout_ms=args.default_timeout_ms,
        durability=durability,
    )
    facade = service
    supervisor = None
    snapshot_tmp = None
    if args.workers and args.workers > 0:
        from repro.server.supervisor import Supervisor

        snapshot_root = args.snapshot_dir
        if snapshot_root is None:
            if args.data_dir is not None:
                snapshot_root = str(Path(args.data_dir) / "pool-snapshots")
            else:
                snapshot_root = snapshot_tmp = tempfile.mkdtemp(
                    prefix="onex-pool-"
                )
        supervisor = facade = Supervisor(
            service,
            workers=args.workers,
            snapshot_root=snapshot_root,
            query_config_kwargs={"mode": args.mode, "window": args.window},
            default_timeout_ms=args.default_timeout_ms,
        )
    # Bind before recovery so restarts never present connection-refused;
    # the ready gate keeps /api shedding structured 503s until the
    # engine is fully recovered and the pool (if any) is live.
    needs_warmup = durability is not None or supervisor is not None
    server = OnexHttpServer(
        facade,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
        read_timeout_s=args.read_timeout_s,
        ready=not needs_warmup,
    )
    print(f"ONEX server v{repro.__version__} listening on {server.url} "
          f"(Ctrl-C to stop)")
    print(f"  POST {server.url}/api      JSON protocol envelopes")
    print(f"  GET  {server.url}/health   liveness + dataset fingerprints")
    print(f"  GET  {server.url}/ready    admission-gate readiness")
    print(f"  GET  {server.url}/metrics  Prometheus text exposition")
    if durability is not None:
        print(f"  WAL  {durability.data_dir}  durable state "
              f"(sync={args.wal_sync})")
    try:
        server.start()
        if durability is not None:
            report = facade.recover()
            print(f"recovery: {len(report.datasets)} dataset(s), "
                  f"{report.replayed_records} WAL record(s) replayed in "
                  f"{report.duration_s:.3f}s"
                  + (f", {len(report.errors)} failed" if report.errors else ""))
        if supervisor is not None:
            supervisor.start()
            print(f"pool: {supervisor.pool.live_workers}/"
                  f"{supervisor.pool.size} worker(s) live "
                  f"(snapshots in {supervisor._root})")
        if needs_warmup:
            server.set_ready(True)
        server._thread.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        server.stop()
    finally:
        facade.close()
        if snapshot_tmp is not None:
            shutil.rmtree(snapshot_tmp, ignore_errors=True)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level, json_mode=args.log_json)
    try:
        return _dispatch(args)
    except OnexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "serve":
        return _serve(args)

    if args.server:
        service = OnexClient(args.server)
    else:
        service = OnexService(
            QueryConfig(mode="fast", refine_groups=3, window=args.window)
        )
    deadline_opts = _deadline_options(args)
    try:
        loaded = _call(
            service, "load_dataset", {**_load_params(args), **deadline_opts}
        )
        dataset = loaded["dataset"]
    except RemoteError as exc:
        # A shared server may already hold this dataset — reuse it (the
        # engine quotes the name in the error message).
        if (
            exc.error_type != "DatasetError"
            or "already loaded" not in exc.error_message
        ):
            raise
        dataset = exc.error_message.split("'")[1]

    if args.command == "describe":
        info = _call(service, "describe", {"dataset": dataset})

        def human(payload):
            print(f"{payload['name']}: {payload['series']} series, "
                  f"{payload['total_points']} points, lengths "
                  f"{payload['min_length']}..{payload['max_length']}")
            print(f"base: {payload['groups']} groups, "
                  f"{payload['compaction_ratio']:.1f}x compaction "
                  f"({payload['build_seconds']:.3f}s build)")
            per_length = payload.get("per_length") or []
            if per_length:
                print("per-length build breakdown:")
                for entry in per_length:
                    print(f"  len {entry['length']:>3}: "
                          f"{entry['subsequences']:>6} windows -> "
                          f"{entry['groups']:>5} groups "
                          f"in {entry['seconds'] * 1e3:7.1f} ms")

        _emit(info, args, human)
        return 0

    if args.command == "query":
        explain_opts = {"explain": True} if args.explain else {}
        if args.metric is not None:
            explain_opts["metric"] = args.metric
        if args.starts is not None:
            # One request answers every brushed window (query_batch).
            result = _call(
                service,
                "query_batch",
                {
                    "dataset": dataset,
                    "queries": [
                        {"series": args.series, "start": start,
                         "length": args.length}
                        for start in args.starts
                    ],
                    "k": args.k,
                    **deadline_opts,
                    **explain_opts,
                },
            )

            def human(payload):
                for start, entry in zip(args.starts, payload["results"]):
                    print(f"top {len(entry['matches'])} matches for "
                          f"{args.series}[{start}:]:")
                    for m in entry["matches"]:
                        print(f"  {m['match_series']:<24} "
                              f"start={m['match_start']:<4}"
                              f" dist={m['distance']:.4f}")
                _print_explain(payload)

            _emit(result, args, human)
            return 0
        result = _call(
            service,
            "k_best",
            {
                "dataset": dataset,
                "query": {"series": args.series, "start": args.start,
                          "length": args.length},
                "k": args.k,
                **deadline_opts,
                **explain_opts,
            },
        )

        def human(payload):
            print(f"top {len(payload['matches'])} matches for "
                  f"{args.series}[{args.start}:]:")
            for m in payload["matches"]:
                print(f"  {m['match_series']:<24} start={m['match_start']:<4}"
                      f" dist={m['distance']:.4f}")
            _print_explain(payload)

        _emit(result, args, human)
        return 0

    if args.command == "seasonal":
        params = {
            "dataset": dataset,
            "series": args.series,
            "length": args.length,
            "step": args.step,
            "remove_level": args.remove_level,
            **deadline_opts,
        }
        if args.threshold is not None:
            params["threshold"] = args.threshold
        result = _call(service, "seasonal", params)

        def human(payload):
            print(f"{len(payload['patterns'])} recurring pattern(s) in "
                  f"{payload['series']}:")
            for p in payload["patterns"]:
                starts = [s["start"] for s in p["segments"]]
                print(f"  {len(starts)} occurrences at {starts} "
                      f"(max pairwise DTW {p['max_pairwise_dtw']:.4f})")

        _emit(result, args, human)
        return 0

    if args.command in ("thresholds", "recommend"):
        params = {"dataset": dataset, "length": args.length}
        if args.command == "recommend":
            params["samples"] = args.samples
            params["seed"] = args.sample_seed
        result = _call(service, "thresholds", params)

        def human(payload):
            print(f"suggested thresholds for length {payload['length']} "
                  f"({payload['samples']} sampled pairs):")
            for label, value in payload["suggestions"].items():
                print(f"  {label:>4}: {value:.5f}")
            print(f"default: {payload['default']:.5f}")

        _emit(result, args, human)
        return 0

    if args.command == "stream":
        replay_name = f"{args.series}/live"
        monitor = _call(
            service,
            "register_monitor",
            {
                "dataset": dataset,
                "pattern": {"series": args.series, "start": args.pattern_start,
                            "length": args.pattern_length},
                "series": replay_name,
                **({"epsilon": args.epsilon} if args.epsilon is not None else {}),
            },
        )
        preview = _call(
            service, "query_preview", {"dataset": dataset, "series": args.series}
        )
        values = preview["values"]
        appended = 0
        windows = 0
        for i in range(0, len(values), max(1, args.chunk)):
            summary = _call(
                service,
                "append_points",
                {
                    "dataset": dataset,
                    "series": replay_name,
                    "values": values[i : i + max(1, args.chunk)],
                },
            )
            appended += summary["points"]
            windows += summary["windows"]
        # The replay is finite: flush the matchers' pending candidates so
        # a match ending on the last sample is reported too.
        _call(service, "flush_monitors", {"dataset": dataset})
        polled = _call(service, "poll_events", {"dataset": dataset})
        result = {
            "monitor": next(
                m for m in polled["monitors"] if m["monitor"] == monitor["monitor"]
            ),
            "replayed_series": replay_name,
            "points_appended": appended,
            "windows_indexed": windows,
            "events": polled["events"],
        }

        def human(payload):
            mon = payload["monitor"]
            print(f"replayed {payload['points_appended']} points of "
                  f"{args.series} as {payload['replayed_series']} "
                  f"({payload['windows_indexed']} windows indexed)")
            print(f"monitor {mon['monitor']}: pattern length "
                  f"{mon['pattern_length']}, epsilon {mon['epsilon']:.4f}, "
                  f"prefilter pruned {mon['windows_pruned']}/"
                  f"{mon['windows_checked']} windows")
            events = payload["events"]
            print(f"{len(events)} event(s):")
            for e in events[: args.max_events]:
                print(f"  #{e['seq']:<4} {e['kind']:<6} "
                      f"[{e['start']}, {e['end']}] dist={e['distance']:.4f}")
            if len(events) > args.max_events:
                print(f"  ... {len(events) - args.max_events} more")

        _emit(result, args, human)
        return 0

    if args.command in ("sensitivity", "profile"):
        if args.command == "profile":
            grid = args.grid
            if grid is None:
                # Data-driven default: the recommender's quantiles for the
                # brushed length, widened by 2x the default suggestion so
                # the flood-in region is visible too.
                rec = _call(
                    service,
                    "thresholds",
                    {"dataset": dataset, "length": args.length},
                )
                grid = sorted(
                    set(rec["suggestions"].values()) | {2 * rec["default"]}
                )
            verify = not args.no_verify
        else:
            grid, verify = args.grid, args.verify
        result = _call(
            service,
            "sensitivity",
            {
                "dataset": dataset,
                "query": {"series": args.series, "start": args.start,
                          "length": args.length},
                "thresholds": grid,
                "verify": verify,
                **deadline_opts,
            },
        )

        def human(payload):
            print(f"match counts over {payload['candidates']} candidates:")
            for i, st in enumerate(payload["thresholds"]):
                exact = payload["exact"][i]
                exact_txt = f" exact={exact}" if exact is not None else ""
                print(f"  ST={st:<6g} certain={payload['certain'][i]:<6}"
                      f" possible={payload['possible'][i]:<6}{exact_txt}")
            print(f"knee: ST={payload['knee']}")

        _emit(result, args, human)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
