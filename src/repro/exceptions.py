"""Exception hierarchy for the ONEX reproduction.

All library errors derive from :class:`OnexError` so callers can catch one
type at the API boundary.  Subclasses distinguish user mistakes (bad input,
unknown names) from internal invariant violations.
"""

from __future__ import annotations


class OnexError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(OnexError, ValueError):
    """Raised when user-supplied input fails validation.

    Examples: empty sequences, NaN values, mismatched lengths where equal
    lengths are required, or out-of-range parameters.
    """


class DatasetError(OnexError):
    """Raised for dataset-level problems (unknown series, bad files)."""


class NotBuiltError(OnexError):
    """Raised when querying an ONEX base that has not been constructed."""


class InvariantError(OnexError):
    """Raised when an internal ONEX invariant is violated.

    Seeing this exception indicates a bug in the library, not bad input:
    the similarity-group construction guarantees (member-to-representative
    distance within ``ST/2``) are checked at runtime in debug paths.
    """


class ProtocolError(OnexError):
    """Raised for malformed client/server requests or responses."""
