"""Exception hierarchy for the ONEX reproduction.

All library errors derive from :class:`OnexError` so callers can catch one
type at the API boundary.  Subclasses distinguish user mistakes (bad input,
unknown names) from internal invariant violations.
"""

from __future__ import annotations


class OnexError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(OnexError, ValueError):
    """Raised when user-supplied input fails validation.

    Examples: empty sequences, NaN values, mismatched lengths where equal
    lengths are required, or out-of-range parameters.
    """


class DatasetError(OnexError):
    """Raised for dataset-level problems (unknown series, bad files)."""


class NotBuiltError(OnexError):
    """Raised when querying an ONEX base that has not been constructed."""


class InvariantError(OnexError):
    """Raised when an internal ONEX invariant is violated.

    Seeing this exception indicates a bug in the library, not bad input:
    the similarity-group construction guarantees (member-to-representative
    distance within ``ST/2``) are checked at runtime in debug paths.
    """


class ProtocolError(OnexError):
    """Raised for malformed client/server requests or responses."""


class DeadlineExceeded(OnexError):
    """Raised when a cooperative deadline or cancellation fires mid-operation.

    Carries what the operation accomplished before the budget ran out:
    *stage* names the chunk boundary that observed the expiry, *progress*
    holds the work counters accumulated so far (groups pruned, DTW calls
    done, ...), and *best* is the best *verified* candidate at that point
    (``None`` when nothing was verified yet).  Searches run with
    ``allow_partial=True`` return that candidate as a degraded result
    (``Match.exact == False``) instead of raising.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        progress: dict | None = None,
        best: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.progress = dict(progress) if progress else {}
        self.best = best

    def details(self) -> dict:
        """Structured payload for error envelopes (JSON-safe)."""
        return {"stage": self.stage, "progress": self.progress, "best": self.best}


class PersistenceError(OnexError):
    """Raised when a persisted base archive is truncated, tampered with,
    or otherwise unreadable.

    Wraps the varied zipfile/numpy surface of a corrupt ``.npz`` into one
    typed error; a checksum mismatch (content tampering the zip layer
    cannot see) raises it too.  A missing file stays ``FileNotFoundError``.
    """


class BuildWorkerError(OnexError):
    """Raised when a build shard fails in a worker *and* in the serial
    re-execution the build pipeline falls back to.

    A crashed pool worker alone never surfaces this: the failed shard is
    re-run in-process automatically and the build proceeds.
    """


class ShutdownTimeoutError(OnexError):
    """Raised when the HTTP server's serve thread fails to terminate
    within the shutdown drain budget (a leaked thread, previously silent).
    """


class RemoteError(OnexError):
    """A server-reported failure relayed by the HTTP client.

    ``error_type`` preserves the server-side exception class name (so
    callers can dispatch without string-parsing the message) and
    ``details`` the structured payload when the server sent one — e.g. a
    remote ``DeadlineExceeded``'s stage/progress/best snapshot.
    """

    def __init__(
        self, error_type: str, message: str, details: dict | None = None
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.error_message = message
        self.details = details


class OverloadedError(OnexError):
    """Raised client-side when the server sheds load (HTTP 503) and the
    retry budget is exhausted.  ``retry_after`` echoes the server's last
    ``Retry-After`` hint in seconds, when one was given.

    The server raises it too — out of the worker pool when no live
    worker can take a dispatch — and the HTTP front end maps it to a
    503 + ``Retry-After`` envelope exactly like an admission-gate shed.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class WorkerCrashedError(OnexError):
    """A pool worker died (crash or hang-kill) while holding a request.

    Read-only operations never surface this — the pool re-dispatches
    them transparently to a surviving worker.  Mutating operations do:
    the caller cannot know whether the op executed, so the error is
    *retryable* (HTTP 503 + ``Retry-After``) and the client's stable
    ``request_id`` lets the server's idempotency window absorb the
    retry without double execution.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class NotReadyError(OnexError):
    """The server is up but not yet (or no longer) able to serve ``/api``
    — e.g. checkpoint+WAL recovery is still replaying, or snapshot
    publication is mid-flight at startup.  Maps to a clean 503 +
    ``Retry-After``: clients must retry, never read partially-replayed
    state.
    """

    def __init__(
        self, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StartupError(OnexError):
    """A structured ``serve`` startup failure (port already bound,
    unreadable ``--data-dir``, ...): the CLI prints it as one
    ``error:`` line and exits non-zero instead of dumping a traceback.
    """


class ReadOnlyBaseError(OnexError):
    """A mutation was attempted on a read-only (mmap-attached) base.

    Worker processes open bases with ``read_only=True``; every write
    path belongs to the supervisor, which republishes a fresh snapshot
    after mutating.
    """
