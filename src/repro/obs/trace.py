"""Zero-dependency span tracer with a null fast path when disabled.

A :class:`Trace` is a tree of :class:`Span` nodes rooted at the request
(or CLI invocation) being explained.  Activation is **thread-local** and
explicit: nothing records until a caller enters :func:`tracing`, so the
instrumentation scattered through the cascade costs one attribute probe
and a singleton return when disabled — measured in the load benchmark at
well under 2% of headline query latency (EXPERIMENTS.md E20).

Usage at an instrumentation site::

    with span("cascade.rep_dtw", length=bucket.length) as sp:
        ...
        sp.add(batch=int(take.size))

and at an activation site (the service layer's ``explain=True`` path)::

    with tracing(request_id) as trace:
        result = run_query()
    payload["explain"] = {"spans": trace.as_dict(), ...}

Spans started on *other* threads (the build pool, fast-mode batch
workers) do not attach to the activating thread's trace — the fan-out
layers therefore aggregate worker telemetry at their join points, which
is also where the deadline layer already observes them.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any

__all__ = [
    "Span",
    "Trace",
    "span",
    "tracing",
    "current_trace",
    "new_request_id",
    "NULL_SPAN",
]

_STATE = threading.local()


def new_request_id() -> str:
    """A fresh 16-hex-char request ID (uuid4-derived)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node in a trace tree.

    ``attrs`` holds the static attributes given at entry; :meth:`add`
    accumulates numeric attributes discovered while the span is open
    (batch sizes, prune counts).  Durations come from
    ``time.perf_counter`` — monotonic, so children never outlast their
    parents by clock skew.
    """

    __slots__ = ("name", "attrs", "children", "_start", "duration_ms")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self._start = 0.0
        self.duration_ms: float | None = None

    def add(self, **attrs: Any) -> None:
        """Accumulate numeric attributes; non-numeric values overwrite."""
        for key, value in attrs.items():
            old = self.attrs.get(key)
            if isinstance(old, (int, float)) and isinstance(
                value, (int, float)
            ):
                self.attrs[key] = old + value
            else:
                self.attrs[key] = value

    def as_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {"name": self.name}
        if self.duration_ms is not None:
            node["duration_ms"] = round(self.duration_ms, 4)
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [c.as_dict() for c in self.children]
        return node

    # Spans are context-managed only through the owning trace's stack;
    # see _LiveSpan below.


class _NullSpan:
    """Shared do-nothing span returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def add(self, **attrs: Any) -> None:
        return None


#: The singleton every ``span()`` call returns while tracing is off.
NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager binding a :class:`Span` to its trace's stack."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", node: Span) -> None:
        self._trace = trace
        self._span = node

    def __enter__(self) -> Span:
        node = self._span
        stack = self._trace._stack
        stack[-1].children.append(node)
        stack.append(node)
        node._start = time.perf_counter()
        return node

    def __exit__(self, *exc: object) -> None:
        node = self._span
        node.duration_ms = (time.perf_counter() - node._start) * 1000.0
        stack = self._trace._stack
        # Pop back to the parent even if an inner span leaked open
        # (exceptions unwind in __exit__ order, so this is just a guard).
        while stack and stack[-1] is not node:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:  # never drop the root
            stack.append(self._trace.root)


class Trace:
    """A request-scoped span tree plus its identity."""

    def __init__(self, request_id: str | None = None) -> None:
        self.request_id = request_id or new_request_id()
        self.root = Span("trace", {})
        self._stack: list[Span] = [self.root]
        self._start = time.perf_counter()

    def finish(self) -> None:
        self.root.duration_ms = (time.perf_counter() - self._start) * 1000.0

    def span_count(self) -> int:
        def walk(node: Span) -> int:
            return 1 + sum(walk(c) for c in node.children)

        return walk(self.root) - 1  # the synthetic root doesn't count

    def as_dict(self) -> dict[str, Any]:
        return self.root.as_dict()


def current_trace() -> Trace | None:
    """The trace active on this thread, if any."""
    return getattr(_STATE, "trace", None)


def span(name: str, **attrs: Any):
    """A context manager recording one span — or :data:`NULL_SPAN`.

    This is the hot-path entry point: when no trace is active on the
    calling thread it allocates nothing and returns the shared null
    singleton.
    """
    trace = getattr(_STATE, "trace", None)
    if trace is None:
        return NULL_SPAN
    return _LiveSpan(trace, Span(name, attrs))


class tracing:
    """Activate a :class:`Trace` on this thread for the ``with`` body.

    Nests: the previous trace (if any) is restored on exit, so an
    explained request arriving mid-explained-request (in-process reuse)
    keeps each trace's spans separate.
    """

    __slots__ = ("_trace", "_previous")

    def __init__(self, request_id: str | None = None) -> None:
        self._trace = Trace(request_id)
        self._previous: Trace | None = None

    def __enter__(self) -> Trace:
        self._previous = getattr(_STATE, "trace", None)
        _STATE.trace = self._trace
        return self._trace

    def __exit__(self, *exc: object) -> None:
        self._trace.finish()
        _STATE.trace = self._previous
