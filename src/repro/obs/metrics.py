"""Process-wide metrics registry with Prometheus text exposition.

Three instrument kinds, all label-aware and thread-safe:

- :class:`Counter` — monotone float accumulator (``inc``);
- :class:`Gauge` — last-write-wins value (``set`` / ``inc``);
- :class:`Histogram` — fixed-bucket cumulative histogram (``observe``)
  with ``_bucket{le=...}`` / ``_sum`` / ``_count`` exposition and
  bucket-interpolated quantile estimates.

The module-level :data:`REGISTRY` is the single process-wide instance
that the query cascade, base build, stream layer, and HTTP server all
publish into; ``GET /metrics`` renders it with :func:`render`.  The
pre-existing telemetry silos (``QueryStats``, the server latency ring,
``LengthBuildStats``) remain as per-call *views* — their totals are
folded into this registry at operation boundaries.

A small exposition parser (:func:`parse_exposition`) lives here too so
tests and the load benchmark can round-trip the text format without an
external Prometheus client.

Cardinality rules (see DESIGN.md §7): label values must come from small
closed sets (operation names, outcome classes, stage names).  Dataset
names, request IDs, and anything user-controlled never become labels.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "render",
    "parse_exposition",
    "histogram_quantile",
]

# Default buckets suit millisecond-scale request latencies.
DEFAULT_BUCKETS = (
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in pairs
    )
    return "{%s}" % body


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared plumbing: a name, help text, and per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict[_LabelKey, object] = {}

    def labels_seen(self) -> list[dict[str, str]]:
        with self._lock:
            return [dict(key) for key in sorted(self._series)]


class Counter(_Metric):
    """Monotonically increasing accumulator."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        with self._lock:
            return float(sum(self._series.values()))

    def _render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            yield f"{self.name}{_format_labels(key)} {_format_value(value)}"


class Gauge(_Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def dec(self, value: float = 1.0, **labels: str) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._series.items())
        for key, value in items:
            yield f"{self.name}{_format_labels(key)} {_format_value(value)}"


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram; buckets are upper bounds, +Inf implied."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(
            not math.isfinite(b) for b in bounds
        ):
            raise ValueError("histogram buckets must be finite and non-empty")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        key = _label_key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            series.counts[idx] += 1
            series.sum += value
            series.count += 1

    def snapshot(self, **labels: str) -> dict:
        """Cumulative bucket counts plus sum/count for one label set."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"buckets": [], "sum": 0.0, "count": 0}
            counts = list(series.counts)
            total, n = series.sum, series.count
        cumulative, running = [], 0
        for bound, c in zip(self.buckets + (math.inf,), counts):
            running += c
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": total, "count": n}

    def quantile(self, q: float, **labels: str) -> float:
        snap = self.snapshot(**labels)
        return histogram_quantile(snap["buckets"], q)

    def _render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(
                (key, list(s.counts), s.sum, s.count)
                for key, s in self._series.items()
            )
        for key, counts, total, n in items:
            running = 0
            for bound, c in zip(self.buckets + (math.inf,), counts):
                running += c
                le = (("le", _format_value(bound)),)
                yield (
                    f"{self.name}_bucket{_format_labels(key, le)} "
                    f"{running}"
                )
            yield f"{self.name}_sum{_format_labels(key)} {_format_value(total)}"
            yield f"{self.name}_count{_format_labels(key)} {n}"


def histogram_quantile(
    buckets: Iterable[tuple[float, float]], q: float
) -> float:
    """Estimate a quantile from cumulative ``(le, count)`` buckets.

    Linear interpolation inside the winning bucket, Prometheus-style;
    values in the +Inf bucket clamp to the largest finite bound.  NaN
    when the histogram is empty.
    """
    pairs = sorted((float(le), float(c)) for le, c in buckets)
    if not pairs or pairs[-1][1] <= 0:
        return float("nan")
    total = pairs[-1][1]
    rank = max(0.0, min(1.0, float(q))) * total
    prev_bound, prev_count = 0.0, 0.0
    for bound, count in pairs:
        if count >= rank:
            if bound == math.inf:
                return prev_bound
            if count == prev_count:
                return bound
            frac = (rank - prev_count) / (count - prev_count)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return prev_bound


class MetricsRegistry:
    """Creates-or-returns instruments by name; renders the whole set.

    Re-registering an existing name returns the existing instrument
    (histogram bucket layouts must match); registering the same name as
    a different kind raises ``ValueError`` — silent shadowing would make
    exposition ambiguous.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                if existing.buckets != tuple(sorted(float(b) for b in buckets)):
                    raise ValueError(
                        f"histogram {name!r} re-registered with different "
                        "buckets"
                    )
                return existing
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name: str, help: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument (tests only — not thread-drain safe)."""
        with self._lock:
            self._metrics.clear()


def parse_exposition(text: str) -> dict[str, dict[_LabelKey, float]]:
    """Parse Prometheus text format into ``{name: {label_key: value}}``.

    Handles the subset :func:`MetricsRegistry.render` emits (no escapes
    beyond ``\\\\`` and ``\\"``, no exemplars/timestamps) — enough for the
    round-trip tests and the load benchmark's scrape.
    """
    out: dict[str, dict[_LabelKey, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            raise ValueError(f"unparseable exposition line: {line!r}")
        if body.endswith("}"):
            name, _, label_body = body.partition("{")
            labels = _parse_labels(label_body[:-1])
        else:
            name, labels = body, ()
        value = float(raw_value.replace("+Inf", "inf"))
        out.setdefault(name, {})[labels] = value
    return out


def _parse_labels(body: str) -> _LabelKey:
    pairs: list[tuple[str, str]] = []
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        j = eq + 2
        chunk: list[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                j += 1
            chunk.append(body[j])
            j += 1
        pairs.append((key, "".join(chunk)))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return tuple(sorted(pairs))


#: The process-wide registry every layer publishes into.
REGISTRY = MetricsRegistry()


def render() -> str:
    """Render :data:`REGISTRY` as Prometheus text."""
    return REGISTRY.render()
