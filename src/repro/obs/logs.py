"""Structured logging for the ONEX stack (stdlib ``logging`` only).

Every logger lives under the ``repro`` root, which carries a
``NullHandler`` by default — importing the library never prints.  The
CLI (and the test-suite) opt in with :func:`configure_logging`, choosing
between a human ``key=value`` line format and one-JSON-object-per-line
(``--log-json``).

Events are emitted through :func:`log_event` so that structured fields
(request IDs, shed counts, deadline stages) survive both formats::

    log_event(logger, "warning", "server.shed", request_id=rid, op=op)

renders as ``server.shed op=k_best request_id=ab12...`` or as
``{"event": "server.shed", "op": "k_best", "request_id": "ab12..."}``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any

__all__ = ["configure_logging", "get_logger", "log_event", "JsonFormatter"]

ROOT_LOGGER = "repro"
_FIELDS_ATTR = "onex_fields"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(
    logger: logging.Logger, level: str, event: str, **fields: Any
) -> None:
    """Emit one structured event with attached fields."""
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    if logger.isEnabledFor(numeric):
        logger.log(numeric, event, extra={_FIELDS_ATTR: fields})


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, then fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
        return json.dumps(payload, default=str, sort_keys=True)


class KeyValueFormatter(logging.Formatter):
    """Human format: ``HH:MM:SS LEVEL logger event k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname:<7} {record.name} "
            f"{record.getMessage()}"
        )
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            rendered = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            line = f"{line} {rendered}"
        return line


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: Any = None,
) -> logging.Logger:
    """Wire the ``repro`` root logger to *stream* (default stderr).

    Replaces any handler a previous call installed, so the CLI and
    tests can reconfigure freely.  Returns the root ``repro`` logger.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
