"""Unified observability layer: tracing, metrics, structured logs.

Three cooperating pieces, all stdlib-only:

- :mod:`repro.obs.trace` — request-scoped span trees with a thread-local
  activation model and a null fast path when disabled (the EXPLAIN
  backbone);
- :mod:`repro.obs.metrics` — the process-wide counter/gauge/histogram
  registry behind ``GET /metrics`` (Prometheus text exposition);
- :mod:`repro.obs.logs` — structured ``logging`` with JSON or key=value
  formatting, silent until the CLI opts in.

See DESIGN.md §7 for the span taxonomy, metric names, and cardinality
rules.
"""

from repro.obs.logs import configure_logging, get_logger, log_event
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    parse_exposition,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Trace,
    current_trace,
    new_request_id,
    span,
    tracing,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "log_event",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "parse_exposition",
    "NULL_SPAN",
    "Span",
    "Trace",
    "current_trace",
    "new_request_id",
    "span",
    "tracing",
]
