"""ONEX online query processor (§3.2/§3.3).

Queries run DTW against the compact base instead of the raw data.  Two
strategies are provided (:class:`repro.core.config.QueryConfig`):

``fast`` (the paper's demo behaviour)
    Rank every group representative by length-normalised DTW to the query,
    then exhaustively refine only the best ``refine_groups`` groups.  The
    transfer upper bound guarantees the returned match's DTW is within the
    group radius slack of the representative-level optimum.

``exact``
    Never skip a group unless a *provable* lower bound shows it cannot
    contain a better match.  Returns the true DTW best match over all
    indexed subsequences, usually still far cheaper than a raw scan.

The search is a **two-layer pruning cascade**, cheap bounds first at both
layers:

**Representative layer** (``use_rep_prefilter``, the default): each
bucket's persisted summaries (:class:`repro.core.base.RepresentativeSummary`
— centroid Keogh envelopes, endpoint and min/max summaries) yield batched
LB_Kim / LB_Keogh lower bounds on ``DTW(query, representative)`` without
any DTW kernel call; combined with the ED→DTW transfer bound they
lower-bound every *member* of the group.  Representatives are then visited
best-first with **lazy exact DTW**: a representative's exact distance is
only computed (in chunked batches, so the kernel stays amortised) when its
cheap bound undercuts the current cutoff — representatives whose bound
exceeds the running k-th best distance never get a DTW call at all.

**Member layer** (both strategies, and the threshold query): surviving
groups are refined through a batched pruning cascade over their stacked
member rows (:attr:`repro.core.base.LengthBucket.member_matrix`); in exact
mode whole *chunks* of verified groups refine through one stacked kernel
call:

1. ``lb_kim_batch`` — constant-time endpoint bound, every member at once;
2. ``lb_keogh_batch`` — envelope bound (equal-length candidates), with
   the query envelope computed once per (length, window) and cached;
3. ``dtw_distance_batch(..., with_path_length=True)`` — exact DTW for all
   surviving members in one anti-diagonal dynamic program, with the
   optimal warping-path length tracked alongside so normalised distances
   need no per-member traceback;
4. ``dtw_path`` — warping-path traceback deferred to the handful of
   matches actually returned to the caller.

Refinement units smaller than ``QueryConfig.batch_min_members`` rows run
the legacy scalar early-abandon scan instead — below that size the batched
kernels' fixed dispatch overhead exceeds the whole computation.

Every stage is provably result-preserving, so the cascade returns exactly
the matches the legacy one-member-at-a-time scan
(``QueryConfig(use_member_batching=False)``) returns — the ablation
benchmarks cross-check this, as they do with the representative prefilter
toggled off.  :class:`QueryStats` counts the work each stage actually
performed, at both layers.

:meth:`QueryProcessor.batch_matches` answers many queries in one call:
shared read-only state (member matrices, representative summaries) is
prepared once, then the queries fan out over a thread pool — the numpy
kernels release the GIL — with results identical to per-query submission.

Distances reported to callers are **normalised DTW** (cost divided by
warping-path length), the unit in which ONEX similarity thresholds are
expressed; ``raw_distance`` carries the unnormalised sum.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.base import LengthBucket, OnexBase
from repro.core.config import QueryConfig
from repro.core.deadline import Deadline
from repro.data.dataset import SubsequenceRef
from repro.distances.dtw import (
    dtw_distance_batch,
    dtw_distance_early_abandon,
    dtw_path,
    effective_band,
)
from repro.distances.envelope import QueryEnvelopeCache
from repro.distances.lower_bounds import lb_keogh_batch, lb_kim, lb_kim_batch
from repro.distances.metrics import as_sequence
from repro.distances.normalize import minmax_normalize
from repro.distances.registry import MetricSpec, get_metric
from repro.exceptions import DeadlineExceeded, ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

__all__ = ["Match", "QueryProcessor", "QueryStats"]

_INF = math.inf

#: Representatives evaluated (lazy exact DTW) or drained (refinement) per
#: round of the representative cascade.  Grows geometrically within one
#: query, so adversarial bound distributions cost O(log groups) rounds
#: while the first rounds stay small enough to establish a cutoff before
#: most representatives are touched.
_REP_CHUNK = 16


@dataclass(frozen=True)
class Match:
    """One retrieved subsequence with its similarity to the query.

    ``exact`` is ``True`` for every match a search ran to completion —
    the usual case.  A search that hit its deadline with
    ``allow_partial=True`` returns its best *verified* candidates with
    ``exact=False``: each distance is a true DTW distance, but a better
    match may exist in the unexplored remainder.
    """

    ref: SubsequenceRef
    series_name: str
    distance: float
    raw_distance: float
    path: tuple[tuple[int, int], ...]
    group: tuple[int, int]
    exact: bool = True

    @property
    def start(self) -> int:
        return self.ref.start

    @property
    def length(self) -> int:
        return self.ref.length


@dataclass
class QueryStats:
    """Work counters for one query — the ablation benchmarks read these.

    Representative layer: ``rep_lb_prunes`` counts groups eliminated with
    only the cheap (no-DTW) representative bound, ``rep_dtw_skipped`` the
    representatives whose exact DTW never ran (pruned or left unranked by
    the lazy cascade), ``rep_dtw_calls`` those whose exact DTW did run.
    ``groups_pruned`` totals the provable group-level prunes of either
    kind.  ``batch_queries`` is the number of queries merged into this
    record by :meth:`QueryProcessor.batch_matches` (0 for single queries).
    """

    representatives_total: int = 0
    rep_lb_prunes: int = 0
    rep_dtw_calls: int = 0
    rep_dtw_skipped: int = 0
    groups_pruned: int = 0
    groups_refined: int = 0
    members_scanned: int = 0
    member_lb_prunes: int = 0
    member_dtw_calls: int = 0
    batch_queries: int = 0
    partial_results: int = 0

    def merge(self, other: "QueryStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict:
        return dict(vars(self))


# Registry-backed totals: every completed query folds its QueryStats in,
# so ``last_stats`` stays the per-call view while /metrics exposes the
# process-wide accumulation (DESIGN.md §7).  ``event`` label values are
# the closed set of QueryStats field names.
_QUERIES_TOTAL = REGISTRY.counter(
    "onex_queries_total",
    "Completed query-layer operations by op, mode, and metric",
)
_QUERY_MS = REGISTRY.histogram(
    "onex_query_ms", "Query-layer wall time per operation (milliseconds)"
)
_CASCADE_TOTAL = REGISTRY.counter(
    "onex_query_cascade_total",
    "Pruning-cascade work counters summed over queries "
    "(event = QueryStats field)",
)


def _publish_query(
    op: str, mode: str, stats: QueryStats, started: float, metric: str = "dtw"
) -> None:
    # ``metric`` label values are the registry's closed name set, so the
    # DESIGN.md §7 cardinality rule holds.
    _QUERIES_TOTAL.inc(op=op, mode=mode, metric=metric)
    _QUERY_MS.observe((time.perf_counter() - started) * 1000.0, op=op)
    for name, value in vars(stats).items():
        if value:
            _CASCADE_TOTAL.inc(float(value), event=name)


@dataclass(order=True)
class _Candidate:
    """Heap entry; ordered by (distance, ref) for deterministic ties."""

    distance: float
    ref: SubsequenceRef = field(compare=True)
    raw: float = field(compare=False)
    path: tuple = field(compare=False)
    group: tuple = field(compare=False)


class QueryProcessor:
    """Executes similarity queries against a built :class:`OnexBase`."""

    def __init__(self, base: OnexBase, config: QueryConfig | None = None) -> None:
        base.stats  # raises NotBuiltError early when unbuilt
        self._base = base
        self._config = config or QueryConfig()
        self._spec: MetricSpec = get_metric(self._config.metric)
        if base.channels > 1 and not self._spec.multivariate:
            raise ValidationError(
                f"metric {self._spec.name!r} supports univariate series "
                f"only; this base indexes {base.channels}-channel series"
            )
        # The classic DTW cascade serves only its original contract:
        # univariate base + metric="dtw" (bit-identical to the
        # pre-registry engine).  Everything else — any other metric, or
        # any metric over a multivariate base — runs the metric scan
        # (DESIGN.md §9), which answers exactly in either query mode.
        self._metric_scan = self._config.metric != "dtw" or base.channels > 1
        self.last_stats = QueryStats()

    @property
    def config(self) -> QueryConfig:
        return self._config

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------

    def best_match(
        self,
        query,
        *,
        lengths=None,
        normalize: bool = True,
        deadline: Deadline | None = None,
    ) -> Match:
        """The most similar indexed subsequence to *query* (§3.3).

        *query* is an array of raw-unit values (normalised into the base's
        value space when the base was built normalised, unless *normalize*
        is false) or a :class:`SubsequenceRef` into the indexed dataset.
        *lengths* optionally restricts candidate subsequence lengths.
        *deadline* bounds the search cooperatively (default: the config's
        deadline); see :meth:`k_best_matches`.
        """
        matches = self.k_best_matches(
            query, 1, lengths=lengths, normalize=normalize, deadline=deadline
        )
        return matches[0]

    def k_best_matches(
        self,
        query,
        k: int,
        *,
        lengths=None,
        normalize: bool = True,
        deadline: Deadline | None = None,
    ) -> list[Match]:
        """The *k* most similar indexed subsequences, best first.

        With a *deadline*, the cascade checks the budget at every chunk
        boundary: an in-budget search is bit-identical to an unbounded
        one; an exceeded budget raises
        :class:`~repro.exceptions.DeadlineExceeded` reporting partial
        progress — unless the deadline allows partial results, in which
        case the best candidates verified so far return with
        ``Match.exact == False``.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        q = self._resolve_query(query, normalize)
        buckets = self._select_buckets(lengths)
        stats = QueryStats()
        with span(
            "query.k_best", k=k, mode=self._config.mode, qlen=int(q.shape[0])
        ) as sp:
            matches = self._run_search(
                q, buckets, k, stats, deadline=self._deadline(deadline)
            )
            sp.add(
                groups_pruned=stats.groups_pruned,
                rep_dtw_calls=stats.rep_dtw_calls,
                member_dtw_calls=stats.member_dtw_calls,
            )
        self.last_stats = stats
        _publish_query(
            "k_best", self._config.mode, stats, started, self._config.metric
        )
        return matches

    def batch_matches(
        self,
        queries,
        k: int = 1,
        *,
        lengths=None,
        normalize: bool = True,
        max_workers: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[list[Match]]:
        """The *k* best matches for every query of a batch, in one call.

        The multi-query execution layer.  Shared read-only state — each
        bucket's stacked member matrix and representative summaries — is
        prepared once up front.  Exact-mode batches then run the shared
        planner (:meth:`_batch_search_exact`): the heavy kernel stages of
        *all* queries stack into paired batch-DTW calls, per length
        bucket, and those per-bucket kernel jobs fan out over a thread
        pool (the numpy kernels release the GIL, so buckets genuinely
        overlap on multicore hosts).  Fast-mode batches fan whole queries
        out over the pool instead — their per-query work is dominated by
        the ranked refinement walk, which does not stack.  Results are
        identical to submitting each query through
        :meth:`k_best_matches`, in input order; ``last_stats`` afterwards
        holds the merged work counters with ``batch_queries`` set.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        deadline = self._deadline(deadline)
        resolved = [self._resolve_query(query, normalize) for query in queries]
        stats = QueryStats()
        stats.batch_queries = len(resolved)
        if not resolved:
            self.last_stats = stats
            return []
        buckets = self._select_buckets(lengths)
        # Pre-warm everything worker threads would otherwise build
        # concurrently; afterwards the searches only read shared state.
        for bucket in buckets:
            bucket.ensure_member_matrix(self._base.dataset)
            if self._config.use_rep_prefilter and not self._metric_scan:
                bucket.rep_summary
        if max_workers is None:
            max_workers = min(len(resolved), os.cpu_count() or 1)

        if self._config.mode == "exact" and not self._metric_scan:
            # One executor serves every kernel wave of the planner.
            pool = (
                ThreadPoolExecutor(max_workers=max_workers)
                if max_workers > 1
                else None
            )
            try:
                with span(
                    "query.batch", queries=len(resolved), k=k, mode="exact"
                ):
                    results, per_query = self._batch_search_exact(
                        resolved, buckets, k, pool, deadline
                    )
            finally:
                if pool is not None:
                    pool.shutdown(wait=True)
            for one in per_query:
                stats.merge(one)
            self.last_stats = stats
            _publish_query("batch", "exact", stats, started, self._config.metric)
            return results

        def run_one(q: np.ndarray) -> tuple[list[Match], QueryStats]:
            one = QueryStats()
            return self._run_search(q, buckets, k, one, deadline=deadline), one

        # Per-query fan-out (fast mode, and every metric-scan batch):
        # worker threads never see the caller's thread-local trace, so
        # only this enclosing span records — per-query telemetry still
        # merges through the stats objects.
        with span(
            "query.batch", queries=len(resolved), k=k, mode=self._config.mode
        ):
            if max_workers > 1 and len(resolved) > 1:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    outcomes = list(pool.map(run_one, resolved))
            else:
                outcomes = [run_one(q) for q in resolved]
        for _, one in outcomes:
            stats.merge(one)
        self.last_stats = stats
        _publish_query(
            "batch", self._config.mode, stats, started, self._config.metric
        )
        return [matches for matches, _ in outcomes]

    def _batch_search_exact(
        self,
        qs: list[np.ndarray],
        buckets: list[LengthBucket],
        k: int,
        pool: ThreadPoolExecutor | None,
        deadline: Deadline | None = None,
    ) -> tuple[list[list[Match]], list[QueryStats]]:
        """Shared exact-mode planner: one set of kernel calls for a batch.

        Three rounds, all provably result-preserving:

        1. **Seed** — each query refines its single most-promising group
           (smallest cheap representative bound), establishing a finite
           pruning cutoff before any representative DTW runs.
        2. **Representative DTW** — every (query, group) pair whose cheap
           bound survives its query's cutoff is verified exactly, with all
           pairs of a (bucket, query-length) class stacked into one paired
           kernel call; pairs over the cutoff are pruned with no DTW.
        3. **Bulk refinement** — surviving pairs' member rows run the
           lower-bound cascade per query, then one paired DTW call per
           (bucket, class) covers every query's survivors at once.

        Compared to the single-query lazy cascade this trades one round of
        cutoff tightening for cross-query kernel stacking — the per-call
        dispatch cost is paid per *batch* instead of per query.  The
        stacked kernel jobs of rounds 2/3 are pure numpy (GIL released)
        and fan out over a thread pool; every heap update happens on the
        calling thread, so results are deterministic and identical to
        sequential submission.
        """
        cfg = self._config
        Q = len(qs)
        stats = [QueryStats() for _ in qs]
        heaps: list[list[_Negated]] = [[] for _ in qs]
        envs = [QueryEnvelopeCache(q) for q in qs]
        for one in stats:
            for bucket in buckets:
                one.representatives_total += bucket.group_count
        live = [b for b in buckets if b.group_count]
        classes: dict[int, list[int]] = {}
        for qi, q in enumerate(qs):
            classes.setdefault(q.shape[0], []).append(qi)

        def run_jobs(jobs: list) -> list:
            """Run paired-DTW jobs, fanned over the shared pool if any."""
            if pool is not None and len(jobs) > 1:
                return list(pool.map(lambda j: j(), jobs))
            return [job() for job in jobs]

        def assemble(partial: bool) -> tuple[list[list[Match]], list[QueryStats]]:
            results: list[list[Match]] = []
            for qi, heap in enumerate(heaps):
                if not heap:
                    if partial:
                        # This query had no verified candidate when the
                        # budget fired; partial mode degrades it to empty.
                        results.append([])
                        continue
                    raise ValidationError(
                        "no indexed subsequences matched the query"
                    )
                candidates = sorted(wrapper.candidate for wrapper in heap)
                results.append(
                    [self._to_match(c, qs[qi], exact=not partial) for c in candidates]
                )
            return results, stats

        def barrier(stage: str) -> bool:
            """Deadline check between planner rounds (True = stop, partial)."""
            faults.fire("query.rep_chunk")
            if deadline is None or not deadline.expired:
                return False
            if deadline.allow_partial and any(heaps):
                for one in stats:
                    one.partial_results += 1
                return True
            merged = QueryStats()
            for one in stats:
                merged.merge(one)
            best = None
            for heap in heaps:
                if heap:
                    c = min(wrapper.candidate for wrapper in heap)
                    if best is None or c.distance < best["distance"]:
                        best = self._best_summary(c)
            self._raise_deadline(deadline, stage, merged, best)
            return True  # unreachable

        # Cheap group lower bounds per (query, bucket): (Q, G_b) tables,
        # one broadcasted evaluation per (bucket, query-length class).
        glb: list[np.ndarray] = []
        refined: list[np.ndarray] = []
        for bucket in live:
            refined.append(np.zeros((Q, bucket.group_count), dtype=bool))
            table = np.zeros((Q, bucket.group_count))
            if cfg.use_rep_prefilter:
                for qlen, members in classes.items():
                    band = effective_band(qlen, bucket.length, cfg.window)
                    cheap = bucket.rep_summary.cheap_bounds_multi(
                        np.vstack([qs[qi] for qi in members]), band
                    )
                    max_path = qlen + bucket.length - 1
                    table[members] = (
                        np.maximum(cheap - max_path * bucket.cheb_radii, 0.0)
                        / max_path
                    )
            glb.append(table)

        # Round 1: seed each query's cutoff from its best-bound group,
        # all seed refinements stacked like a bulk round.
        if cfg.use_rep_prefilter and live:
            plan: dict[tuple[int, int], list[tuple[int, list[int]]]] = {}
            for qi, q in enumerate(qs):
                b_best = min(
                    range(len(live)), key=lambda b_i: float(glb[b_i][qi].min())
                )
                g_best = int(np.argmin(glb[b_best][qi]))
                refined[b_best][qi, g_best] = True
                plan.setdefault((b_best, q.shape[0]), []).append((qi, [g_best]))
            with span("batch.seed", queries=Q):
                self._batch_refine_stacked(
                    plan, live, qs, k, heaps, stats, envs, run_jobs
                )
        if barrier("batch seed refinement"):
            return assemble(True)

        # Round 2: paired representative DTW for pairs under the cutoff.
        tight: list[np.ndarray] = [
            np.full((Q, b.group_count), _INF) for b in live
        ]
        jobs = []
        job_meta = []
        for b_i, bucket in enumerate(live):
            for qlen, members in classes.items():
                max_path = qlen + bucket.length - 1
                xs, mats, owner_q, owner_g = [], [], [], []
                for qi in members:
                    mask = ~refined[b_i][qi]
                    if cfg.use_rep_prefilter and cfg.use_group_pruning:
                        cutoff = self._cutoff(heaps[qi], k)
                        if math.isfinite(cutoff):
                            passing = mask & (glb[b_i][qi] <= cutoff)
                            pruned = int(mask.sum()) - int(passing.sum())
                            stats[qi].rep_lb_prunes += pruned
                            stats[qi].rep_dtw_skipped += pruned
                            stats[qi].groups_pruned += pruned
                            mask = passing
                    sel = np.nonzero(mask)[0]
                    if not sel.size:
                        continue
                    xs.append(np.broadcast_to(qs[qi], (sel.size, qlen)))
                    mats.append(bucket.centroids[sel])
                    owner_q.append(np.full(sel.size, qi, dtype=np.int64))
                    owner_g.append(sel)
                    stats[qi].rep_dtw_calls += sel.size
                if not xs:
                    continue
                X = np.concatenate(xs)
                M = np.concatenate(mats)
                jobs.append(
                    lambda X=X, M=M: dtw_distance_batch(X, M, window=cfg.window)
                )
                job_meta.append(
                    (b_i, max_path, np.concatenate(owner_q), np.concatenate(owner_g))
                )
        with span("batch.rep_dtw", jobs=len(jobs)) as sp:
            for raws, (b_i, max_path, oq, og) in zip(run_jobs(jobs), job_meta):
                bucket = live[b_i]
                tight[b_i][oq, og] = (
                    np.maximum(raws - max_path * bucket.cheb_radii[og], 0.0)
                    / max_path
                )
                sp.add(pairs=int(oq.size))
        if barrier("batch representative DTW"):
            return assemble(True)

        # Round 3: bulk member refinement — surviving pairs grouped into
        # one stacked cascade per (bucket, class).
        plan = {}
        for b_i, bucket in enumerate(live):
            for qlen, members in classes.items():
                for qi in members:
                    candidates = ~refined[b_i][qi] & np.isfinite(tight[b_i][qi])
                    cutoff = self._cutoff(heaps[qi], k)
                    if cfg.use_group_pruning and math.isfinite(cutoff):
                        passing = candidates & (tight[b_i][qi] <= cutoff)
                        stats[qi].groups_pruned += int(candidates.sum()) - int(
                            passing.sum()
                        )
                        candidates = passing
                    g_list = [int(g) for g in np.nonzero(candidates)[0]]
                    if g_list:
                        plan.setdefault((b_i, qlen), []).append((qi, g_list))
        with span(
            "batch.refine", units=sum(len(v) for v in plan.values())
        ):
            self._batch_refine_stacked(
                plan, live, qs, k, heaps, stats, envs, run_jobs
            )
        return assemble(False)

    def _batch_refine_stacked(
        self,
        plan: dict[tuple[int, int], list[tuple[int, list[int]]]],
        live: list[LengthBucket],
        qs: list[np.ndarray],
        k: int,
        heaps: list[list["_Negated"]],
        stats: list[QueryStats],
        envs: list[QueryEnvelopeCache],
        run_jobs,
    ) -> None:
        """Run one wave of member refinements stacked across queries.

        *plan* maps ``(bucket position, query length)`` to the queries
        refining there and their group lists.  The lower-bound stages run
        per query slice (each against its own cached envelope and
        cutoff); the exact member DTW of every query in a (bucket, class)
        is one paired kernel call, dispatched through *run_jobs* so
        independent buckets can overlap on multicore hosts.  Heap updates
        happen on the calling thread only.
        """
        cfg = self._config
        jobs = []
        job_meta = []
        for (b_i, qlen), entries in plan.items():
            bucket = live[b_i]
            max_path = qlen + bucket.length - 1
            seg_rows: list[tuple[np.ndarray, np.ndarray]] = []
            seg_meta = []
            for qi, g_list in entries:
                if self._scalar_unit(bucket, g_list):
                    # Tiny unit: the scalar path beats any stacking.
                    self._refine_members(
                        qs[qi], bucket, g_list, k, heaps[qi], stats[qi], envs[qi]
                    )
                    continue
                cutoff = self._cutoff(heaps[qi], k)
                stats[qi].groups_refined += len(g_list)
                rows, refs, group_of = self._stacked_members(bucket, g_list)
                survivors = self._member_bound_filter(
                    qs[qi], bucket, rows, stats[qi], envs[qi],
                    cut=cutoff, scale=max_path,
                )
                if not survivors.size:
                    continue
                stats[qi].member_dtw_calls += survivors.size
                seg_rows.append((qs[qi], rows[survivors]))
                seg_meta.append((qi, refs, group_of, survivors, cutoff))
            if not seg_rows:
                continue
            X = np.concatenate(
                [np.broadcast_to(q, (r.shape[0], q.shape[0])) for q, r in seg_rows]
            )
            M = np.concatenate([r for _, r in seg_rows])
            jobs.append(
                lambda X=X, M=M: dtw_distance_batch(
                    X, M, window=cfg.window, with_path_length=True
                )
            )
            job_meta.append((bucket.length, seg_meta))
        for (raws, plens), (length, seg_meta) in zip(run_jobs(jobs), job_meta):
            offset = 0
            for qi, refs, group_of, survivors, cutoff in seg_meta:
                part = slice(offset, offset + survivors.size)
                offset += survivors.size
                self._push_batch_candidates(
                    heaps[qi], k, cutoff, length, refs, group_of,
                    survivors, raws[part], plens[part],
                )

    def _run_search(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        deadline: Deadline | None = None,
    ) -> list[Match]:
        before = stats.partial_results
        if self._metric_scan:
            heap = self._metric_search(q, buckets, k, stats, deadline)
        else:
            envelopes = QueryEnvelopeCache(q)
            if self._config.mode == "fast":
                heap = self._search_fast(q, buckets, k, stats, envelopes, deadline)
            else:
                heap = self._search_exact(q, buckets, k, stats, envelopes, deadline)
        if not heap:
            raise ValidationError("no indexed subsequences matched the query")
        partial = stats.partial_results > before
        candidates = sorted(wrapper.candidate for wrapper in heap)
        return [self._to_match(c, q, exact=not partial) for c in candidates]

    def matches_within(
        self,
        query,
        threshold: float,
        *,
        lengths=None,
        normalize: bool = True,
        deadline: Deadline | None = None,
    ) -> list[Match]:
        """Every indexed subsequence with normalised DTW <= *threshold*.

        Uses the transfer bounds in both directions, on both layers:
        groups whose *cheap* representative bound already exceeds the
        threshold are skipped without any DTW at all, groups whose exact
        representative bound exceeds it are skipped without member work,
        and every surviving member is verified exactly.  A fired
        *deadline* with ``allow_partial`` returns the (complete) matches
        of the buckets scanned so far, flagged ``exact=False``.
        """
        if not threshold > 0:
            raise ValidationError(f"threshold must be > 0, got {threshold}")
        started = time.perf_counter()
        deadline = self._deadline(deadline)
        q = self._resolve_query(query, normalize)
        stats = QueryStats()
        with span(
            "query.threshold", threshold=float(threshold), mode=self._config.mode
        ):
            out, partial = self._threshold_scan(
                q, threshold, stats, self._select_buckets(lengths), deadline
            )
        self.last_stats = stats
        _publish_query(
            "threshold", self._config.mode, stats, started, self._config.metric
        )
        if partial:
            out = [replace(m, exact=False) for m in out]
        return sorted(out, key=lambda m: (m.distance, m.ref))

    def _threshold_scan(
        self,
        q: np.ndarray,
        threshold: float,
        stats: QueryStats,
        buckets: list[LengthBucket],
        deadline: Deadline | None,
    ) -> tuple[list[Match], bool]:
        """The per-bucket threshold sweep behind :meth:`matches_within`."""
        if self._metric_scan:
            return self._metric_threshold_scan(
                q, threshold, stats, buckets, deadline
            )
        qlen = q.shape[0]
        cfg = self._config
        envelopes = QueryEnvelopeCache(q)
        out: list[Match] = []
        partial = False
        for bucket in buckets:
            faults.fire("query.refine_unit")
            if deadline is not None and deadline.expired:
                if deadline.allow_partial and out:
                    stats.partial_results += 1
                    partial = True
                    break
                best = None
                if out:
                    m = min(out, key=lambda m: (m.distance, m.ref))
                    best = {
                        "series": m.series_name,
                        "start": m.start,
                        "length": m.length,
                        "distance": m.distance,
                        "exact": False,
                    }
                self._raise_deadline(deadline, "threshold scan", stats, best)
            count = bucket.group_count
            stats.representatives_total += count
            if not count:
                continue
            max_path = qlen + bucket.length - 1
            if cfg.use_rep_prefilter:
                band = effective_band(qlen, bucket.length, cfg.window)
                cheap = bucket.rep_summary.cheap_bounds(q, band)
                alive = (cheap - max_path * bucket.cheb_radii) / max_path <= threshold
                skipped = count - int(alive.sum())
                stats.rep_lb_prunes += skipped
                stats.rep_dtw_skipped += skipped
                stats.groups_pruned += skipped
                candidates = np.nonzero(alive)[0]
            else:
                candidates = np.arange(count)
            if not candidates.size:
                continue
            rep_raws = dtw_distance_batch(
                q, bucket.centroids[candidates], window=cfg.window
            )
            stats.rep_dtw_calls += candidates.size
            lower = (rep_raws - max_path * bucket.cheb_radii[candidates]) / max_path
            keep = lower <= threshold
            stats.groups_pruned += int(candidates.size - keep.sum())
            g_list = [int(g) for g in candidates[keep]]
            if g_list:
                with span(
                    "cascade.threshold_bucket",
                    length=bucket.length,
                    groups=len(g_list),
                ):
                    out.extend(
                        self._threshold_refine(
                            q, bucket, g_list, threshold, stats, envelopes
                        )
                    )
        return out, partial

    # ------------------------------------------------------------------
    # Deadline handling
    # ------------------------------------------------------------------

    def _deadline(self, deadline: Deadline | None) -> Deadline | None:
        """The effective deadline: the per-call one, else the config default."""
        if deadline is None:
            return self._config.deadline
        if not isinstance(deadline, Deadline):
            raise ValidationError(
                f"deadline must be a Deadline, got {type(deadline).__name__}"
            )
        return deadline

    def _best_summary(self, candidate: _Candidate) -> dict:
        """The best-so-far candidate as the dict DeadlineExceeded reports."""
        series = self._base.dataset[candidate.ref.series_index]
        return {
            "series": series.name,
            "start": candidate.ref.start,
            "length": candidate.ref.length,
            "distance": candidate.distance,
            "exact": False,
        }

    def _deadline_fired(
        self,
        deadline: Deadline | None,
        stage: str,
        stats: QueryStats,
        heap: list["_Negated"],
    ) -> bool:
        """Handle an expired deadline at a chunk boundary.

        ``False`` while budget remains (or there is no deadline).  With
        ``allow_partial`` and at least one verified candidate on the
        heap, counts a partial result and returns ``True`` — the caller
        breaks and returns its best-so-far heap.  Otherwise raises
        :class:`DeadlineExceeded` carrying the work counters and the
        best verified candidate, if any.
        """
        if deadline is None or not deadline.expired:
            return False
        if deadline.allow_partial and heap:
            stats.partial_results += 1
            return True
        best = (
            self._best_summary(min(wrapper.candidate for wrapper in heap))
            if heap
            else None
        )
        self._raise_deadline(deadline, stage, stats, best)
        return True  # unreachable

    @staticmethod
    def _raise_deadline(
        deadline: Deadline, stage: str, stats: QueryStats, best: dict | None
    ) -> None:
        """Raise the enriched :class:`DeadlineExceeded` for a fired deadline."""
        progress = {
            "groups_pruned": stats.groups_pruned,
            "groups_refined": stats.groups_refined,
            "rep_dtw_calls": stats.rep_dtw_calls,
            "member_dtw_calls": stats.member_dtw_calls,
            "members_scanned": stats.members_scanned,
        }
        try:
            deadline.check(stage, progress)
        except DeadlineExceeded as exc:
            exc.best = best
            raise
        raise DeadlineExceeded(  # pragma: no cover - expired deadlines raise above
            f"deadline exceeded during {stage}",
            stage=stage,
            progress=progress,
            best=best,
        )

    # ------------------------------------------------------------------
    # Member-layer refinement
    # ------------------------------------------------------------------

    def _scalar_unit(self, bucket: LengthBucket, g_list: list[int]) -> bool:
        """Whether a refinement unit takes the scalar member path.

        The single home of the tiny-unit routing rule: the legacy scalar
        scan when member batching is off, or when the unit's combined
        member count is under ``batch_min_members`` (below which the
        batched kernels' fixed dispatch overhead exceeds the work).
        """
        cfg = self._config
        if not cfg.use_member_batching:
            return True
        return (
            sum(bucket.groups[g].cardinality for g in g_list)
            < cfg.batch_min_members
        )

    def _threshold_refine(
        self, q, bucket, g_list, threshold, stats, envelopes
    ) -> list[Match]:
        """Refine surviving groups of one bucket against the threshold."""
        stats.groups_refined += len(g_list)
        if self._scalar_unit(bucket, g_list):
            out: list[Match] = []
            for g_idx in g_list:
                out.extend(
                    self._threshold_refine_scalar(q, bucket, g_idx, threshold, stats)
                )
            return out
        return self._threshold_refine_batched(
            q, bucket, g_list, threshold, stats, envelopes
        )

    def _threshold_refine_scalar(
        self, q, bucket, g_idx, threshold, stats
    ) -> list[Match]:
        """Legacy per-member threshold refinement (scalar early-abandon DTW)."""
        group = bucket.groups[g_idx]
        max_path = q.shape[0] + bucket.length - 1
        raw_cut = threshold * max_path
        out: list[Match] = []
        for ref in group.members:
            stats.members_scanned += 1
            values = self._base.member_values(ref)
            raw = dtw_distance_early_abandon(
                q, values, raw_cut, window=self._config.window
            )
            if math.isinf(raw):
                stats.member_lb_prunes += 1
                continue
            stats.member_dtw_calls += 1
            res = dtw_path(q, values, window=self._config.window)
            if res.normalized_distance <= threshold:
                out.append(
                    self._to_match(
                        _Candidate(
                            distance=res.normalized_distance,
                            ref=ref,
                            raw=res.distance,
                            path=res.path,
                            group=(bucket.length, g_idx),
                        )
                    )
                )
        return out

    def _threshold_refine_batched(
        self, q, bucket, g_list, threshold, stats, envelopes
    ) -> list[Match]:
        """Batched threshold refinement: one stacked cascade per bucket."""
        rows, refs, group_of = self._stacked_members(bucket, g_list)
        max_path = q.shape[0] + bucket.length - 1
        raw_cut = threshold * max_path
        survivors, raws, plens = self._cascade_rows(
            q, bucket, rows, stats, envelopes, cut=raw_cut, scale=1.0
        )
        out: list[Match] = []
        for pos in np.nonzero(raws <= raw_cut)[0]:
            normalized = raws[pos] / plens[pos]
            if normalized <= threshold:
                row = survivors[pos]
                out.append(
                    self._to_match(
                        _Candidate(
                            distance=float(normalized),
                            ref=refs[row],
                            raw=float(raws[pos]),
                            path=None,
                            group=(bucket.length, group_of[row]),
                        ),
                        q,
                    )
                )
        return out

    def _stacked_members(
        self, bucket: LengthBucket, g_list: list[int]
    ) -> tuple[np.ndarray, list[SubsequenceRef], list[int]]:
        """Member rows of several groups stacked, with per-row provenance."""
        bucket.ensure_member_matrix(self._base.dataset)
        refs: list[SubsequenceRef] = []
        group_of: list[int] = []
        for g_idx in g_list:
            members = bucket.groups[g_idx].members
            refs.extend(members)
            group_of.extend([g_idx] * len(members))
        if len(g_list) == 1:
            rows = bucket.member_rows(g_list[0])
        else:
            rows = np.vstack([bucket.member_rows(g) for g in g_list])
        return rows, refs, group_of

    def _cascade_rows(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        rows: np.ndarray,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
        cut: float,
        scale: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the lower-bound cascade and batched DTW over stacked rows.

        A row is pruned when ``bound / scale > cut`` — the k-best path
        passes the normalised-distance cutoff with ``scale = max_path``
        (dividing the bound down is conservative in floats, so a tie the
        legacy path kept is never over-pruned), the threshold path passes
        its raw-cost cut with ``scale = 1``.  Returns ``(survivor_indices,
        raw_distances, path_lengths)`` with counters updated for the work
        performed.
        """
        survivors = self._member_bound_filter(
            q, bucket, rows, stats, envelopes, cut, scale
        )
        if not survivors.size:
            return survivors, np.empty(0), np.empty(0, dtype=np.int64)
        raws, plens = dtw_distance_batch(
            q, rows[survivors], window=self._config.window, with_path_length=True
        )
        stats.member_dtw_calls += survivors.size
        return survivors, raws, plens

    def _member_bound_filter(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        rows: np.ndarray,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
        cut: float,
        scale: float,
    ) -> np.ndarray:
        """Indices of *rows* surviving the LB_Kim → LB_Keogh stages."""
        cfg = self._config
        count = rows.shape[0]
        stats.members_scanned += count
        alive = np.ones(count, dtype=bool)
        if cfg.use_lower_bounds and math.isfinite(cut):
            alive &= lb_kim_batch(q, rows) / scale <= cut
            idx = np.nonzero(alive)[0]
            keogh = self._keogh_bounds(q, bucket, rows, idx, envelopes)
            if keogh is not None:
                alive[idx[keogh / scale > cut]] = False
            stats.member_lb_prunes += count - int(alive.sum())
        return np.nonzero(alive)[0]

    def _refine_members(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_list: list[int],
        k: int,
        heap: list["_Negated"],
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
    ) -> None:
        """Refine the members of *g_list* (one bucket) against the heap.

        One stacked cascade across all the groups' members when the
        combined row count clears ``batch_min_members`` (and member
        batching is on); the legacy scalar early-abandon scan otherwise.
        Either path yields identical heap contents — the scalar twin is
        also the ablation reference.
        """
        stats.groups_refined += len(g_list)
        members = sum(len(bucket.groups[g].members) for g in g_list)
        with span(
            "cascade.refine",
            length=bucket.length,
            groups=len(g_list),
            members=members,
        ):
            if self._scalar_unit(bucket, g_list):
                for g_idx in g_list:
                    self._refine_group_scalar(q, bucket, g_idx, k, heap, stats)
                return
            rows, refs, group_of = self._stacked_members(bucket, g_list)
            max_path = q.shape[0] + bucket.length - 1
            cutoff = self._cutoff(heap, k)  # cascade never touches the heap
            survivors, raws, plens = self._cascade_rows(
                q, bucket, rows, stats, envelopes, cut=cutoff, scale=max_path
            )
            if not survivors.size:
                return
            self._push_batch_candidates(
                heap,
                k,
                cutoff,
                bucket.length,
                refs,
                group_of,
                survivors,
                raws,
                plens,
            )

    @staticmethod
    def _push_batch_candidates(
        heap: list["_Negated"],
        k: int,
        cutoff: float,
        length: int,
        refs: list[SubsequenceRef],
        group_of: list[int],
        survivors: np.ndarray,
        raws: np.ndarray,
        plens: np.ndarray,
    ) -> None:
        """Fold one refinement batch's exact distances into the k-best heap.

        Normalised distances come straight out of the batch kernel (the
        tracked path length makes them bit-identical to ``dtw_path``'s),
        so heap maintenance is pure comparisons; a candidate above the
        cutoff can never displace a heap entry and is skipped outright.
        """
        norms = raws / plens
        viable = (
            np.nonzero(norms <= cutoff)[0]
            if math.isfinite(cutoff)
            else np.arange(survivors.size)
        )
        if viable.size > k:
            # Only the k best of this batch can enter the global k-best;
            # keeping everything tied with the k-th smallest distance
            # preserves the deterministic (distance, ref) tie-break.
            kth = np.partition(norms[viable], k - 1)[k - 1]
            viable = viable[norms[viable] <= kth]
        for pos in viable:
            row = survivors[pos]
            candidate = _Candidate(
                distance=float(norms[pos]),
                ref=refs[row],
                raw=float(raws[pos]),
                path=None,
                group=(length, group_of[row]),
            )
            if len(heap) < k:
                heapq.heappush(heap, _Negated(candidate))
            elif candidate < heap[0].candidate:
                heapq.heapreplace(heap, _Negated(candidate))

    def _refine_group_scalar(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_idx: int,
        k: int,
        heap: list["_Negated"],
        stats: QueryStats,
    ) -> None:
        """Legacy one-member-at-a-time refinement (scalar early-abandon DTW).

        Kept as the cross-check twin of the batched cascade — ablation
        benchmarks assert both return identical matches — and as the
        cheaper path for tiny refinement units (``batch_min_members``).
        """
        cfg = self._config
        group = bucket.groups[g_idx]
        qlen = q.shape[0]
        max_path = qlen + bucket.length - 1
        for ref in group.members:
            stats.members_scanned += 1
            cutoff = self._cutoff(heap, k)
            values = self._base.member_values(ref)
            if cfg.use_lower_bounds and math.isfinite(cutoff):
                if lb_kim(q, values) / max_path > cutoff:
                    stats.member_lb_prunes += 1
                    continue
            if math.isfinite(cutoff):
                raw = dtw_distance_early_abandon(
                    q, values, cutoff * max_path, window=cfg.window
                )
                if math.isinf(raw):
                    stats.member_lb_prunes += 1
                    continue
            stats.member_dtw_calls += 1
            res = dtw_path(q, values, window=cfg.window)
            candidate = _Candidate(
                distance=res.normalized_distance,
                ref=ref,
                raw=res.distance,
                path=res.path,
                group=(bucket.length, g_idx),
            )
            if len(heap) < k:
                heapq.heappush(heap, _Negated(candidate))
            elif candidate < heap[0].candidate:
                heapq.heapreplace(heap, _Negated(candidate))

    def _keogh_bounds(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        rows: np.ndarray,
        idx: np.ndarray,
        envelopes: QueryEnvelopeCache,
    ) -> np.ndarray | None:
        """LB_Keogh of the *idx* rows against the cached query envelope.

        Returns ``None`` when the bound does not apply (candidate length
        differs from the query's).  The envelope radius covers the
        effective DTW band — the full length when DTW is unconstrained —
        which is what makes the bound provable.
        """
        qlen = q.shape[0]
        if qlen != bucket.length or not idx.size:
            return None
        band = effective_band(qlen, bucket.length, self._config.window)
        radius = band if band is not None else bucket.length - 1
        lower, upper = envelopes.get(radius)
        return lb_keogh_batch(rows[idx], lower, upper)

    # ------------------------------------------------------------------
    # Representative-layer search strategies
    # ------------------------------------------------------------------

    def _rep_bound_table(
        self,
        q: np.ndarray,
        live: list[LengthBucket],
        stats: QueryStats,
        *,
        eager: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-representative bound vectors, concatenated across buckets.

        Returns ``(bounds, owners, gids)`` where ``owners``/``gids``
        locate each entry's (bucket position in *live*, group index).
        With ``eager=True`` the bounds are exact representative DTW raws
        (counted in ``rep_dtw_calls``); otherwise the cheap summary
        bounds, no kernel call at all.
        """
        qlen = q.shape[0]
        cfg = self._config
        bound_vecs: list[np.ndarray] = []
        with span("cascade.rep_bounds", eager=eager, buckets=len(live)):
            for bucket in live:
                if eager:
                    raw = dtw_distance_batch(
                        q, bucket.centroids, window=cfg.window
                    )
                    stats.rep_dtw_calls += bucket.group_count
                    bound_vecs.append(raw)
                else:
                    band = effective_band(qlen, bucket.length, cfg.window)
                    bound_vecs.append(bucket.rep_summary.cheap_bounds(q, band))
        bounds = np.concatenate(bound_vecs)
        owners = np.concatenate(
            [np.full(b.group_count, i, dtype=np.int64) for i, b in enumerate(live)]
        )
        gids = np.concatenate(
            [np.arange(b.group_count, dtype=np.int64) for b in live]
        )
        return bounds, owners, gids

    def _search_exact(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
        deadline: Deadline | None = None,
    ) -> list["_Negated"]:
        cfg = self._config
        qlen = q.shape[0]
        heap: list[_Negated] = []
        for bucket in buckets:
            stats.representatives_total += bucket.group_count
        live = [b for b in buckets if b.group_count]
        if not live:
            return heap
        max_paths = np.array([qlen + b.length - 1 for b in live], dtype=np.float64)

        if not cfg.use_rep_prefilter:
            # PR-1 eager path: exact DTW for every representative up
            # front, groups visited in ascending transfer lower bound.
            raws, owners, gids = self._rep_bound_table(q, live, stats, eager=True)
            bounds = np.maximum(
                raws
                - max_paths[owners]
                * np.concatenate([b.cheb_radii for b in live]),
                0.0,
            ) / max_paths[owners]
            order = np.argsort(bounds, kind="stable")
            for pos in range(order.size):
                faults.fire("query.refine_unit")
                if self._deadline_fired(
                    deadline, "eager representative refinement", stats, heap
                ):
                    return heap
                idx = order[pos]
                cutoff = self._cutoff(heap, k)
                if cfg.use_group_pruning and bounds[idx] > cutoff:
                    stats.groups_pruned += order.size - pos
                    break
                self._refine_members(
                    q, live[owners[idx]], [int(gids[idx])], k, heap, stats, envelopes
                )
            return heap

        # Two-layer lazy cascade: cheap summary bounds rank every group,
        # exact representative DTW runs in chunked batches only for groups
        # whose cheap bound undercuts the running cutoff, and verified
        # groups drain into stacked member refinements.
        cheap, owners, gids = self._rep_bound_table(q, live, stats, eager=False)
        bounds = np.maximum(
            cheap
            - max_paths[owners] * np.concatenate([b.cheb_radii for b in live]),
            0.0,
        ) / max_paths[owners]
        order = np.argsort(bounds, kind="stable")
        ordered_bounds = bounds[order]
        total = order.size
        ptr = 0
        chunk = _REP_CHUNK
        exact_heap: list[tuple[float, int, int]] = []
        while ptr < total or exact_heap:
            faults.fire("query.rep_chunk")
            if self._deadline_fired(
                deadline, "representative cascade", stats, heap
            ):
                return heap
            cutoff = self._cutoff(heap, k)
            next_cheap = float(ordered_bounds[ptr]) if ptr < total else _INF
            next_exact = exact_heap[0][0] if exact_heap else _INF
            if cfg.use_group_pruning and min(next_cheap, next_exact) > cutoff:
                remaining = total - ptr
                stats.rep_lb_prunes += remaining
                stats.rep_dtw_skipped += remaining
                stats.groups_pruned += remaining + len(exact_heap)
                break
            if next_cheap <= next_exact:
                take = order[ptr : ptr + chunk]
                if cfg.use_group_pruning and math.isfinite(cutoff):
                    # The chunk is sorted by bound: only the prefix at or
                    # under the cutoff can still matter this round.
                    viable = int(
                        np.searchsorted(
                            ordered_bounds[ptr : ptr + take.size],
                            cutoff,
                            side="right",
                        )
                    )
                    take = take[: max(viable, 1)]
                ptr += take.size
                chunk *= 2
                take_owners = owners[take]
                with span("cascade.rep_dtw", batch=int(take.size)):
                    for b_i in np.unique(take_owners):
                        sel = gids[take[take_owners == b_i]]
                        bucket = live[b_i]
                        raws = dtw_distance_batch(
                            q, bucket.centroids[sel], window=cfg.window
                        )
                        stats.rep_dtw_calls += sel.size
                        tight = (
                            np.maximum(
                                raws - max_paths[b_i] * bucket.cheb_radii[sel],
                                0.0,
                            )
                            / max_paths[b_i]
                        )
                        for pos in range(sel.size):
                            heapq.heappush(
                                exact_heap,
                                (float(tight[pos]), int(b_i), int(sel[pos])),
                            )
            else:
                # Drain verified groups (tight bound within the cutoff and
                # under every unevaluated cheap bound) into one stacked
                # refinement per bucket.  The top entry is always
                # drainable here: this branch implies next_exact <
                # next_cheap, and the prune check above (same guard, same
                # cutoff) would have stopped the loop were it over the
                # cutoff.
                _, b_i, g_idx = heapq.heappop(exact_heap)
                drained: dict[int, list[int]] = {b_i: [g_idx]}
                count = 1
                while exact_heap and count < chunk:
                    tight, b_i, g_idx = exact_heap[0]
                    if tight > next_cheap:
                        break
                    if cfg.use_group_pruning and tight > cutoff:
                        break
                    heapq.heappop(exact_heap)
                    drained.setdefault(b_i, []).append(g_idx)
                    count += 1
                for b_i, g_list in drained.items():
                    faults.fire("query.refine_unit")
                    if self._deadline_fired(
                        deadline, "member refinement", stats, heap
                    ):
                        return heap
                    self._refine_members(
                        q, live[b_i], g_list, k, heap, stats, envelopes
                    )
        return heap

    def _search_fast(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
        deadline: Deadline | None = None,
    ) -> list["_Negated"]:
        cfg = self._config
        qlen = q.shape[0]
        heap: list[_Negated] = []
        for bucket in buckets:
            stats.representatives_total += bucket.group_count
        live = [b for b in buckets if b.group_count]
        if not live:
            return heap
        # The ranking estimate divides raw DTW by the minimum possible
        # warping-path length — a consistent estimator, exact whenever the
        # optimal path takes no detours.
        scales = np.array([max(qlen, b.length) for b in live], dtype=np.float64)

        if not cfg.use_rep_prefilter:
            # Eager ranking: exact DTW to every representative, then
            # refine in ascending estimate order.
            raws, owners, gids = self._rep_bound_table(q, live, stats, eager=True)
            order = np.argsort(raws / scales[owners], kind="stable")
            for rank in range(order.size):
                faults.fire("query.refine_unit")
                if self._deadline_fired(
                    deadline, "eager representative refinement", stats, heap
                ):
                    return heap
                if rank >= cfg.refine_groups and len(heap) >= k:
                    break
                idx = order[rank]
                self._refine_members(
                    q, live[owners[idx]], [int(gids[idx])], k, heap, stats, envelopes
                )
            return heap

        # Lazy ranking: cheap bounds on the estimate order the queue; a
        # representative's exact DTW runs (chunk-batched) only while its
        # bound could still place it among the refined groups.
        cheap, owners, gids = self._rep_bound_table(q, live, stats, eager=False)
        bounds = cheap / scales[owners]
        order = np.argsort(bounds, kind="stable")
        ordered_bounds = bounds[order]
        total = order.size
        ptr = 0
        chunk = _REP_CHUNK
        exact_heap: list[tuple[float, int, int]] = []
        refined = 0
        while ptr < total or exact_heap:
            faults.fire("query.rep_chunk")
            if self._deadline_fired(
                deadline, "representative ranking", stats, heap
            ):
                break
            if refined >= cfg.refine_groups and len(heap) >= k:
                break
            # An exact entry is the true next-best only once no
            # unevaluated bound can undercut or tie it.
            while ptr < total and (
                not exact_heap or ordered_bounds[ptr] <= exact_heap[0][0]
            ):
                take = order[ptr : ptr + chunk]
                ptr += take.size
                chunk *= 2
                take_owners = owners[take]
                with span("cascade.rep_dtw", batch=int(take.size)):
                    for b_i in np.unique(take_owners):
                        sel = gids[take[take_owners == b_i]]
                        bucket = live[b_i]
                        raws = dtw_distance_batch(
                            q, bucket.centroids[sel], window=cfg.window
                        )
                        stats.rep_dtw_calls += sel.size
                        est = raws / scales[b_i]
                        for pos in range(sel.size):
                            heapq.heappush(
                                exact_heap,
                                (float(est[pos]), int(b_i), int(sel[pos])),
                            )
            if not exact_heap:
                break
            _, b_i, g_idx = heapq.heappop(exact_heap)
            self._refine_members(q, live[b_i], [g_idx], k, heap, stats, envelopes)
            refined += 1
        stats.rep_dtw_skipped += total - ptr
        return heap

    @staticmethod
    def _cutoff(heap: list, k: int) -> float:
        """Current k-th best normalised distance (inf until k found)."""
        if len(heap) < k:
            return _INF
        return heap[0].candidate.distance

    # ------------------------------------------------------------------
    # Metric scan (non-DTW metrics, and any metric over multivariate)
    # ------------------------------------------------------------------

    def _metric_buckets(
        self, q: np.ndarray, buckets: list[LengthBucket], stats: QueryStats
    ) -> list[LengthBucket]:
        """Buckets the active metric can scan for this query.

        Elastic metrics (the DTW family) compare across lengths and scan
        everything; the Lp family requires candidates of the query's own
        length, and an unindexed query length is a clear caller error
        rather than an empty result.
        """
        for bucket in buckets:
            stats.representatives_total += bucket.group_count
        if self._spec.elastic:
            return [b for b in buckets if b.group_count]
        qlen = q.shape[0] // self._base.channels
        live = [b for b in buckets if b.group_count and b.length == qlen]
        if not live:
            lengths = self._base.lengths
            raise ValidationError(
                f"metric {self._spec.name!r} compares equal lengths only; "
                f"query length {qlen} is not among the {len(lengths)} "
                f"indexed lengths ({lengths[0]}..{lengths[-1]})"
            )
        return live

    def _metric_distances(
        self, q: np.ndarray, rows: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(raw, normalized)`` metric distances from *q* to stacked rows.

        One vectorised kernel call when the registered metric has a batch
        kernel for this shape; otherwise a scalar ``pair`` loop — the
        brute-force-verified fallback every metric is guaranteed to have.
        """
        spec = self._spec
        channels = self._base.channels
        window = self._config.window
        if spec.batch is not None:
            out = spec.batch(q, rows, length, channels, window)
            if out is not None:
                return out
        count = rows.shape[0]
        raws = np.empty(count)
        norms = np.empty(count)
        for i in range(count):
            raws[i], norms[i] = spec.pair_shaped(
                q, rows[i], length, channels, window
            )
        return raws, norms

    def _metric_group_bounds(
        self, q: np.ndarray, bucket: LengthBucket, stats: QueryStats
    ) -> np.ndarray:
        """Per-group lower bounds from representative distances and radii.

        The registered bound family maps the normalized distance from the
        query to each representative, plus the stored ``ed_radius`` /
        ``cheb_radius`` (which are exactly the flattened-row mean-abs and
        max-abs member radii, for any channel count), to a provable lower
        bound on the distance to *any* member of the group.
        """
        _, rep_norms = self._metric_distances(q, bucket.centroids, bucket.length)
        stats.rep_dtw_calls += bucket.group_count
        return self._spec.lower_bound(
            rep_norms, bucket.ed_radii, bucket.cheb_radii
        )

    def _metric_refine(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_list: list[int],
        k: int,
        heap: list["_Negated"],
        stats: QueryStats,
    ) -> None:
        """Verify every member of *g_list* exactly and fold into the heap."""
        stats.groups_refined += len(g_list)
        rows, refs, group_of = self._stacked_members(bucket, g_list)
        stats.members_scanned += rows.shape[0]
        raws, norms = self._metric_distances(q, rows, bucket.length)
        stats.member_dtw_calls += rows.shape[0]
        cutoff = self._cutoff(heap, k)
        viable = (
            np.nonzero(norms <= cutoff)[0]
            if math.isfinite(cutoff)
            else np.arange(norms.size)
        )
        if viable.size > k:
            kth = np.partition(norms[viable], k - 1)[k - 1]
            viable = viable[norms[viable] <= kth]
        for pos in viable:
            candidate = _Candidate(
                distance=float(norms[pos]),
                ref=refs[pos],
                raw=float(raws[pos]),
                # Non-DTW metrics (and the multivariate scan) define no
                # warping path; matches carry an empty one.
                path=(),
                group=(bucket.length, group_of[pos]),
            )
            if len(heap) < k:
                heapq.heappush(heap, _Negated(candidate))
            elif candidate < heap[0].candidate:
                heapq.heapreplace(heap, _Negated(candidate))

    def _metric_search(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        deadline: Deadline | None = None,
    ) -> list["_Negated"]:
        """k-best scan under the registry metric — exact in either mode.

        Per bucket: when the metric registers a lower-bound family, the
        best-bounded group is refined first to establish a finite cutoff,
        then every group whose bound exceeds the running cutoff is pruned
        with no member work; metrics without a bound verify every member
        (the brute-force-verified path).  Deadlines behave exactly as in
        the DTW cascade: checked at bucket boundaries, partial results
        only when the deadline allows them.
        """
        cfg = self._config
        heap: list[_Negated] = []
        with span(
            "cascade.metric_scan", metric=self._spec.name, buckets=len(buckets)
        ):
            for bucket in self._metric_buckets(q, buckets, stats):
                faults.fire("query.refine_unit")
                if self._deadline_fired(deadline, "metric scan", stats, heap):
                    return heap
                bucket.ensure_member_matrix(self._base.dataset)
                if self._spec.lower_bound is not None and cfg.use_group_pruning:
                    lbs = self._metric_group_bounds(q, bucket, stats)
                    order = np.argsort(lbs, kind="stable")
                    self._metric_refine(
                        q, bucket, [int(order[0])], k, heap, stats
                    )
                    rest = order[1:]
                    cutoff = self._cutoff(heap, k)
                    if math.isfinite(cutoff):
                        keep = rest[lbs[rest] <= cutoff]
                        pruned = int(rest.size - keep.size)
                        stats.rep_lb_prunes += pruned
                        stats.groups_pruned += pruned
                        rest = keep
                    g_list = [int(g) for g in rest]
                else:
                    g_list = list(range(bucket.group_count))
                if g_list:
                    self._metric_refine(q, bucket, g_list, k, heap, stats)
        return heap

    def _metric_threshold_scan(
        self,
        q: np.ndarray,
        threshold: float,
        stats: QueryStats,
        buckets: list[LengthBucket],
        deadline: Deadline | None,
    ) -> tuple[list[Match], bool]:
        """Threshold sweep under the registry metric (exact matches).

        Group-level pruning against the *threshold* itself where the
        metric registers a bound family; full member verification
        everywhere else.  Partial-deadline semantics match
        :meth:`_threshold_scan`: completed buckets' matches return
        flagged inexact.
        """
        cfg = self._config
        out: list[Match] = []
        partial = False
        for bucket in self._metric_buckets(q, buckets, stats):
            faults.fire("query.refine_unit")
            if deadline is not None and deadline.expired:
                if deadline.allow_partial and out:
                    stats.partial_results += 1
                    partial = True
                    break
                best = None
                if out:
                    m = min(out, key=lambda m: (m.distance, m.ref))
                    best = {
                        "series": m.series_name,
                        "start": m.start,
                        "length": m.length,
                        "distance": m.distance,
                        "exact": False,
                    }
                self._raise_deadline(deadline, "metric threshold scan", stats, best)
            bucket.ensure_member_matrix(self._base.dataset)
            candidates = np.arange(bucket.group_count)
            if self._spec.lower_bound is not None and cfg.use_group_pruning:
                lbs = self._metric_group_bounds(q, bucket, stats)
                keep = lbs <= threshold
                pruned = int(candidates.size - keep.sum())
                stats.rep_lb_prunes += pruned
                stats.groups_pruned += pruned
                candidates = candidates[keep]
            if not candidates.size:
                continue
            g_list = [int(g) for g in candidates]
            stats.groups_refined += len(g_list)
            rows, refs, group_of = self._stacked_members(bucket, g_list)
            stats.members_scanned += rows.shape[0]
            raws, norms = self._metric_distances(q, rows, bucket.length)
            stats.member_dtw_calls += rows.shape[0]
            for pos in np.nonzero(norms <= threshold)[0]:
                out.append(
                    self._to_match(
                        _Candidate(
                            distance=float(norms[pos]),
                            ref=refs[pos],
                            raw=float(raws[pos]),
                            path=(),
                            group=(bucket.length, group_of[pos]),
                        )
                    )
                )
        return out, partial

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve_query(self, query, normalize: bool) -> np.ndarray:
        channels = self._base.channels
        if isinstance(query, SubsequenceRef):
            values = self._base.dataset.values(query)
            # Multivariate refs resolve to (length, channels) blocks; the
            # search works on the channel-flattened row layout.
            return values.ravel() if channels > 1 else values
        if channels > 1:
            q = np.asarray(query, dtype=np.float64)
            if q.ndim != 2 or q.shape[1] != channels:
                raise ValidationError(
                    f"query for a {channels}-channel base must be 2-D "
                    f"(length, {channels}), got shape {q.shape}"
                )
            if q.shape[0] < 2:
                raise ValidationError(
                    f"query must have at least 2 time steps, got {q.shape[0]}"
                )
            if not np.all(np.isfinite(q)):
                raise ValidationError("query contains NaN or infinite entries")
            bounds = self._base.normalization_bounds
            if normalize and bounds is not None:
                q = minmax_normalize(q, lo=bounds[0], hi=bounds[1])
            return np.ascontiguousarray(q).ravel()
        q = as_sequence(query, name="query")
        bounds = self._base.normalization_bounds
        if normalize and bounds is not None:
            q = minmax_normalize(q, lo=bounds[0], hi=bounds[1])
        return q

    def _select_buckets(self, lengths) -> list[LengthBucket]:
        if lengths is None:
            return self._base.buckets()
        chosen = sorted(set(int(n) for n in lengths))
        return [self._base.bucket(n) for n in chosen]

    def _to_match(
        self, candidate, q: np.ndarray | None = None, *, exact: bool = True
    ) -> Match:
        inner = candidate.candidate if isinstance(candidate, _Negated) else candidate
        series = self._base.dataset[inner.ref.series_index]
        path = inner.path
        if path is None:
            # Batched refinement defers the warping-path traceback to the
            # few matches actually returned; resolve it here.
            path = dtw_path(
                q, self._base.member_values(inner.ref), window=self._config.window
            ).path
        return Match(
            ref=inner.ref,
            series_name=series.name,
            distance=inner.distance,
            raw_distance=inner.raw,
            path=path,
            group=inner.group,
            exact=exact,
        )


class _Negated:
    """Max-heap adapter so ``heap[0]`` is the *worst* kept candidate."""

    __slots__ = ("candidate",)

    def __init__(self, candidate: _Candidate) -> None:
        self.candidate = candidate

    def __lt__(self, other: "_Negated") -> bool:
        return other.candidate < self.candidate
