"""ONEX online query processor (§3.2/§3.3).

Queries run DTW against the compact base instead of the raw data.  Two
strategies are provided (:class:`repro.core.config.QueryConfig`):

``fast`` (the paper's demo behaviour)
    Rank every group representative by length-normalised DTW to the query,
    then exhaustively refine only the best ``refine_groups`` groups.  The
    transfer upper bound guarantees the returned match's DTW is within the
    group radius slack of the representative-level optimum.

``exact``
    Never skip a group unless a *provable* lower bound (LB_Kim on the
    representative, or the ED→DTW transfer lower bound fed by the group's
    Chebyshev radius) shows it cannot contain a better match.  Returns the
    true DTW best match over all indexed subsequences, usually still far
    cheaper than a raw scan.

**Member refinement** (both strategies, and the threshold query) runs a
batched pruning cascade over each group's stacked member matrix
(:attr:`repro.core.base.LengthBucket.member_matrix`), cheapest bound
first:

1. ``lb_kim_batch`` — constant-time endpoint bound, every member at once;
2. ``lb_keogh_batch`` — envelope bound (equal-length candidates), with
   the query envelope computed once per (length, window) and cached;
3. ``dtw_distance_batch(..., with_path_length=True)`` — exact DTW for all
   surviving members in one anti-diagonal dynamic program, with the
   optimal warping-path length tracked alongside so normalised distances
   need no traceback;
4. ``dtw_path`` — warping-path traceback deferred to the handful of
   matches actually returned to the caller.

Every stage is provably result-preserving, so the cascade returns exactly
the matches the legacy one-member-at-a-time scan
(``QueryConfig(use_member_batching=False)``) returns — the ablation
benchmarks cross-check this.  :class:`QueryStats` counts the work each
stage actually performed: ``member_lb_prunes`` are members eliminated by
stages 1–2 without any DTW, ``member_dtw_calls`` are members whose exact
DTW was computed (stage 3 rows, or scalar DTW calls on the legacy path).

Distances reported to callers are **normalised DTW** (cost divided by
warping-path length), the unit in which ONEX similarity thresholds are
expressed; ``raw_distance`` carries the unnormalised sum.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import LengthBucket, OnexBase
from repro.core.config import QueryConfig
from repro.data.dataset import SubsequenceRef
from repro.distances.dtw import (
    dtw_distance_batch,
    dtw_distance_early_abandon,
    dtw_path,
    effective_band,
)
from repro.distances.envelope import QueryEnvelopeCache
from repro.distances.lower_bounds import lb_keogh_batch, lb_kim, lb_kim_batch
from repro.distances.metrics import as_sequence
from repro.distances.normalize import minmax_normalize
from repro.exceptions import ValidationError

__all__ = ["Match", "QueryProcessor", "QueryStats"]

_INF = math.inf


@dataclass(frozen=True)
class Match:
    """One retrieved subsequence with its similarity to the query."""

    ref: SubsequenceRef
    series_name: str
    distance: float
    raw_distance: float
    path: tuple[tuple[int, int], ...]
    group: tuple[int, int]

    @property
    def start(self) -> int:
        return self.ref.start

    @property
    def length(self) -> int:
        return self.ref.length


@dataclass
class QueryStats:
    """Work counters for one query — the ablation benchmarks read these."""

    representatives_total: int = 0
    rep_lb_prunes: int = 0
    rep_dtw_calls: int = 0
    groups_pruned: int = 0
    groups_refined: int = 0
    members_scanned: int = 0
    member_lb_prunes: int = 0
    member_dtw_calls: int = 0

    def merge(self, other: "QueryStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(order=True)
class _Candidate:
    """Heap entry; ordered by (distance, ref) for deterministic ties."""

    distance: float
    ref: SubsequenceRef = field(compare=True)
    raw: float = field(compare=False)
    path: tuple = field(compare=False)
    group: tuple = field(compare=False)


class QueryProcessor:
    """Executes similarity queries against a built :class:`OnexBase`."""

    def __init__(self, base: OnexBase, config: QueryConfig | None = None) -> None:
        base.stats  # raises NotBuiltError early when unbuilt
        self._base = base
        self._config = config or QueryConfig()
        self.last_stats = QueryStats()

    @property
    def config(self) -> QueryConfig:
        return self._config

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------

    def best_match(self, query, *, lengths=None, normalize: bool = True) -> Match:
        """The most similar indexed subsequence to *query* (§3.3).

        *query* is an array of raw-unit values (normalised into the base's
        value space when the base was built normalised, unless *normalize*
        is false) or a :class:`SubsequenceRef` into the indexed dataset.
        *lengths* optionally restricts candidate subsequence lengths.
        """
        matches = self.k_best_matches(query, 1, lengths=lengths, normalize=normalize)
        return matches[0]

    def k_best_matches(
        self, query, k: int, *, lengths=None, normalize: bool = True
    ) -> list[Match]:
        """The *k* most similar indexed subsequences, best first."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        q = self._resolve_query(query, normalize)
        buckets = self._select_buckets(lengths)
        stats = QueryStats()
        envelopes = QueryEnvelopeCache(q)
        if self._config.mode == "fast":
            heap = self._search_fast(q, buckets, k, stats, envelopes)
        else:
            heap = self._search_exact(q, buckets, k, stats, envelopes)
        self.last_stats = stats
        if not heap:
            raise ValidationError("no indexed subsequences matched the query")
        candidates = sorted(wrapper.candidate for wrapper in heap)
        return [self._to_match(c, q) for c in candidates]

    def matches_within(
        self, query, threshold: float, *, lengths=None, normalize: bool = True
    ) -> list[Match]:
        """Every indexed subsequence with normalised DTW <= *threshold*.

        Uses the transfer bounds in both directions: groups whose lower
        bound exceeds the threshold are skipped without any member DTW, and
        every surviving member is verified exactly.
        """
        if not threshold > 0:
            raise ValidationError(f"threshold must be > 0, got {threshold}")
        q = self._resolve_query(query, normalize)
        qlen = q.shape[0]
        stats = QueryStats()
        envelopes = QueryEnvelopeCache(q)
        out: list[Match] = []
        for bucket in self._select_buckets(lengths):
            max_path = qlen + bucket.length - 1
            stats.representatives_total += bucket.group_count
            rep_raws = dtw_distance_batch(
                q, bucket.centroids, window=self._config.window
            )
            stats.rep_dtw_calls += bucket.group_count
            for g_idx, group in enumerate(bucket.groups):
                lower = (rep_raws[g_idx] - max_path * group.cheb_radius) / max_path
                if lower > threshold:
                    stats.groups_pruned += 1
                    continue
                stats.groups_refined += 1
                if self._config.use_member_batching:
                    out.extend(
                        self._threshold_refine_batched(
                            q, bucket, g_idx, threshold, stats, envelopes
                        )
                    )
                else:
                    out.extend(
                        self._threshold_refine_scalar(
                            q, bucket, g_idx, threshold, stats
                        )
                    )
        self.last_stats = stats
        return sorted(out, key=lambda m: (m.distance, m.ref))

    def _threshold_refine_scalar(
        self, q, bucket, g_idx, threshold, stats
    ) -> list[Match]:
        """Legacy per-member threshold refinement (scalar early-abandon DTW)."""
        group = bucket.groups[g_idx]
        max_path = q.shape[0] + bucket.length - 1
        raw_cut = threshold * max_path
        out: list[Match] = []
        for ref in group.members:
            stats.members_scanned += 1
            values = self._base.member_values(ref)
            raw = dtw_distance_early_abandon(
                q, values, raw_cut, window=self._config.window
            )
            if math.isinf(raw):
                stats.member_lb_prunes += 1
                continue
            stats.member_dtw_calls += 1
            res = dtw_path(q, values, window=self._config.window)
            if res.normalized_distance <= threshold:
                out.append(
                    self._to_match(
                        _Candidate(
                            distance=res.normalized_distance,
                            ref=ref,
                            raw=res.distance,
                            path=res.path,
                            group=(bucket.length, g_idx),
                        )
                    )
                )
        return out

    def _cascade_members(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_idx: int,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
        cut: float,
        scale: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the lower-bound cascade and batched DTW over one group.

        A member is pruned when ``bound / scale > cut`` — the k-best path
        passes the normalised-distance cutoff with ``scale = max_path``
        (dividing the bound down is conservative in floats, so a tie the
        legacy path kept is never over-pruned), the threshold path passes
        its raw-cost cut with ``scale = 1``.  Returns ``(survivor_indices,
        raw_distances, path_lengths)`` with counters updated for the work
        performed.
        """
        cfg = self._config
        bucket.ensure_member_matrix(self._base.dataset)
        rows = bucket.member_rows(g_idx)
        count = rows.shape[0]
        stats.members_scanned += count
        alive = np.ones(count, dtype=bool)
        if cfg.use_lower_bounds and math.isfinite(cut):
            alive &= lb_kim_batch(q, rows) / scale <= cut
            idx = np.nonzero(alive)[0]
            keogh = self._keogh_bounds(q, bucket, rows, idx, envelopes)
            if keogh is not None:
                alive[idx[keogh / scale > cut]] = False
            stats.member_lb_prunes += count - int(alive.sum())
        survivors = np.nonzero(alive)[0]
        if not survivors.size:
            return survivors, np.empty(0), np.empty(0, dtype=np.int64)
        raws, plens = dtw_distance_batch(
            q, rows[survivors], window=cfg.window, with_path_length=True
        )
        stats.member_dtw_calls += survivors.size
        return survivors, raws, plens

    def _threshold_refine_batched(
        self, q, bucket, g_idx, threshold, stats, envelopes
    ) -> list[Match]:
        """Batched threshold refinement: LB cascade, then one DTW batch."""
        refs = bucket.groups[g_idx].members
        max_path = q.shape[0] + bucket.length - 1
        raw_cut = threshold * max_path
        survivors, raws, plens = self._cascade_members(
            q, bucket, g_idx, stats, envelopes, cut=raw_cut, scale=1.0
        )
        out: list[Match] = []
        for pos in np.nonzero(raws <= raw_cut)[0]:
            normalized = raws[pos] / plens[pos]
            if normalized <= threshold:
                out.append(
                    self._to_match(
                        _Candidate(
                            distance=float(normalized),
                            ref=refs[survivors[pos]],
                            raw=float(raws[pos]),
                            path=None,
                            group=(bucket.length, g_idx),
                        ),
                        q,
                    )
                )
        return out

    def _keogh_bounds(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        rows: np.ndarray,
        idx: np.ndarray,
        envelopes: QueryEnvelopeCache,
    ) -> np.ndarray | None:
        """LB_Keogh of the *idx* rows against the cached query envelope.

        Returns ``None`` when the bound does not apply (candidate length
        differs from the query's).  The envelope radius covers the
        effective DTW band — the full length when DTW is unconstrained —
        which is what makes the bound provable.
        """
        qlen = q.shape[0]
        if qlen != bucket.length or not idx.size:
            return None
        band = effective_band(qlen, bucket.length, self._config.window)
        radius = band if band is not None else bucket.length - 1
        lower, upper = envelopes.get(radius)
        return lb_keogh_batch(rows[idx], lower, upper)

    # ------------------------------------------------------------------
    # Search strategies
    # ------------------------------------------------------------------

    def _search_fast(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
    ) -> list[_Negated]:
        cfg = self._config
        qlen = q.shape[0]
        # Phase 1: rank representatives by (estimated) normalised DTW.
        # The batched anti-diagonal kernel evaluates the query against
        # every representative of a length at once; the normaliser is the
        # minimum possible warping-path length, a consistent estimator
        # that is exact whenever the optimal path takes no detours.
        ranked: list[tuple[float, LengthBucket, int]] = []
        for bucket in buckets:
            stats.representatives_total += bucket.group_count
            raw = dtw_distance_batch(q, bucket.centroids, window=cfg.window)
            stats.rep_dtw_calls += bucket.group_count
            est = raw / max(qlen, bucket.length)
            ranked.extend(
                (float(est[g_idx]), bucket, g_idx)
                for g_idx in range(bucket.group_count)
            )
        ranked.sort(key=lambda item: item[0])
        # Phase 2: exhaustively refine the selected groups; keep refining
        # past `refine_groups` only while fewer than k matches were found.
        heap: list[_Negated] = []
        for rank, (_, bucket, g_idx) in enumerate(ranked):
            if rank >= cfg.refine_groups and len(heap) >= k:
                break
            self._refine_group(q, bucket, g_idx, k, heap, stats, envelopes)
        return heap

    def _search_exact(
        self,
        q: np.ndarray,
        buckets: list[LengthBucket],
        k: int,
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
    ) -> list[_Candidate]:
        cfg = self._config
        qlen = q.shape[0]
        heap: list[_Candidate] = []

        # Evaluate every representative with the batched kernel, then
        # visit groups in ascending transfer-inequality lower bound so the
        # pruning cutoff tightens as quickly as possible.
        order: list[tuple[float, LengthBucket, int]] = []
        for bucket in buckets:
            stats.representatives_total += bucket.group_count
            max_path = qlen + bucket.length - 1
            rep_raw = dtw_distance_batch(q, bucket.centroids, window=cfg.window)
            stats.rep_dtw_calls += bucket.group_count
            lower = np.maximum(rep_raw - max_path * bucket.cheb_radii, 0.0) / max_path
            order.extend(
                (float(lower[g_idx]), bucket, g_idx)
                for g_idx in range(bucket.group_count)
            )
        order.sort(key=lambda item: item[0])

        for lower, bucket, g_idx in order:
            cutoff = self._cutoff(heap, k)
            if cfg.use_group_pruning and lower > cutoff:
                stats.groups_pruned += 1
                continue
            self._refine_group(q, bucket, g_idx, k, heap, stats, envelopes)
        return heap

    def _refine_group(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_idx: int,
        k: int,
        heap: list[_Negated],
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
    ) -> None:
        stats.groups_refined += 1
        if self._config.use_member_batching:
            self._refine_group_batched(q, bucket, g_idx, k, heap, stats, envelopes)
        else:
            self._refine_group_scalar(q, bucket, g_idx, k, heap, stats)

    def _refine_group_batched(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_idx: int,
        k: int,
        heap: list[_Negated],
        stats: QueryStats,
        envelopes: QueryEnvelopeCache,
    ) -> None:
        """Refine one group through the vectorised pruning cascade.

        Stages (cheapest first, each provably result-preserving): LB_Kim
        over the whole member stack, LB_Keogh against the cached query
        envelope, then exact batched DTW over the survivors with the
        optimal warping-path length tracked alongside, so normalised
        distances — bit-identical to ``dtw_path``'s — come out of the
        batch and no per-member traceback runs at all.
        """
        refs = bucket.groups[g_idx].members
        max_path = q.shape[0] + bucket.length - 1
        cutoff = self._cutoff(heap, k)  # cascade never touches the heap
        survivors, raws, plens = self._cascade_members(
            q, bucket, g_idx, stats, envelopes, cut=cutoff, scale=max_path
        )
        if not survivors.size:
            return

        # Normalised distances come straight out of the batch kernel (the
        # tracked path length makes them bit-identical to ``dtw_path``'s),
        # so heap maintenance is pure comparisons; a candidate above the
        # cutoff can never displace a heap entry and is skipped outright.
        norms = raws / plens
        viable = (
            np.nonzero(norms <= cutoff)[0]
            if math.isfinite(cutoff)
            else np.arange(survivors.size)
        )
        for pos in viable:
            candidate = _Candidate(
                distance=float(norms[pos]),
                ref=refs[survivors[pos]],
                raw=float(raws[pos]),
                path=None,
                group=(bucket.length, g_idx),
            )
            if len(heap) < k:
                heapq.heappush(heap, _Negated(candidate))
            elif candidate < heap[0].candidate:
                heapq.heapreplace(heap, _Negated(candidate))

    def _refine_group_scalar(
        self,
        q: np.ndarray,
        bucket: LengthBucket,
        g_idx: int,
        k: int,
        heap: list[_Negated],
        stats: QueryStats,
    ) -> None:
        """Legacy one-member-at-a-time refinement (scalar early-abandon DTW).

        Kept as the cross-check twin of :meth:`_refine_group_batched` —
        ablation benchmarks assert both return identical matches — and as
        the reference implementation of the pre-cascade behaviour.
        """
        cfg = self._config
        group = bucket.groups[g_idx]
        qlen = q.shape[0]
        max_path = qlen + bucket.length - 1
        for ref in group.members:
            stats.members_scanned += 1
            cutoff = self._cutoff(heap, k)
            values = self._base.member_values(ref)
            if cfg.use_lower_bounds and math.isfinite(cutoff):
                if lb_kim(q, values) / max_path > cutoff:
                    stats.member_lb_prunes += 1
                    continue
            if math.isfinite(cutoff):
                raw = dtw_distance_early_abandon(
                    q, values, cutoff * max_path, window=cfg.window
                )
                if math.isinf(raw):
                    stats.member_lb_prunes += 1
                    continue
            stats.member_dtw_calls += 1
            res = dtw_path(q, values, window=cfg.window)
            candidate = _Candidate(
                distance=res.normalized_distance,
                ref=ref,
                raw=res.distance,
                path=res.path,
                group=(bucket.length, g_idx),
            )
            if len(heap) < k:
                heapq.heappush(heap, _Negated(candidate))
            elif candidate < heap[0].candidate:
                heapq.heapreplace(heap, _Negated(candidate))

    @staticmethod
    def _cutoff(heap: list, k: int) -> float:
        """Current k-th best normalised distance (inf until k found)."""
        if len(heap) < k:
            return _INF
        return heap[0].candidate.distance

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve_query(self, query, normalize: bool) -> np.ndarray:
        if isinstance(query, SubsequenceRef):
            return self._base.dataset.values(query)
        q = as_sequence(query, name="query")
        bounds = self._base.normalization_bounds
        if normalize and bounds is not None:
            q = minmax_normalize(q, lo=bounds[0], hi=bounds[1])
        return q

    def _select_buckets(self, lengths) -> list[LengthBucket]:
        if lengths is None:
            return self._base.buckets()
        chosen = sorted(set(int(n) for n in lengths))
        return [self._base.bucket(n) for n in chosen]

    def _to_match(self, candidate, q: np.ndarray | None = None) -> Match:
        inner = candidate.candidate if isinstance(candidate, _Negated) else candidate
        series = self._base.dataset[inner.ref.series_index]
        path = inner.path
        if path is None:
            # Batched refinement defers the warping-path traceback to the
            # few matches actually returned; resolve it here.
            path = dtw_path(
                q, self._base.member_values(inner.ref), window=self._config.window
            ).path
        return Match(
            ref=inner.ref,
            series_name=series.name,
            distance=inner.distance,
            raw_distance=inner.raw,
            path=path,
            group=inner.group,
        )


class _Negated:
    """Max-heap adapter so ``heap[0]`` is the *worst* kept candidate."""

    __slots__ = ("candidate",)

    def __init__(self, candidate: _Candidate) -> None:
        self.candidate = candidate

    def __lt__(self, other: "_Negated") -> bool:
        return other.candidate < self.candidate
