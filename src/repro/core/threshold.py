"""Data-driven similarity-threshold recommendation (§3.3).

"Threshold recommendations help analysts to select appropriate parameter
settings in a data-driven fashion" — growth-rate percentages need tiny
thresholds while unemployment counts need huge ones.  ONEX recommends
thresholds by sampling the distribution of pairwise subsequence distances
in the (normalised) collection and reporting low quantiles: a threshold at
the q-th quantile makes roughly a q fraction of random subsequence pairs
"similar", which is the operational meaning analysts care about.

When a built :class:`~repro.core.base.OnexBase` over the same collection
is supplied, the sampler reuses the base's already-normalised value store
instead of re-normalising the whole dataset and materialising every
window: only the sampled windows are gathered (window offsets are pure
arithmetic over the per-series window counts), which is what makes the
served ``thresholds`` operation cheap at collection scale.  The sampled
pairs, and therefore the recommendation, are bit-identical to the
standalone path — the property suite cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.validation import as_int_arg
from repro.data.dataset import TimeSeriesDataset
from repro.distances.normalize import RunningStats
from repro.exceptions import DatasetError, ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span

_ANALYTICS_TOTAL = REGISTRY.counter(
    "onex_analytics_total", "Completed analytics operations by op"
)

__all__ = ["ThresholdRecommendation", "recommend_thresholds"]

#: Quantiles reported as candidate similarity thresholds, tightest first.
_DEFAULT_QUANTILES = (0.01, 0.05, 0.10, 0.25)


@dataclass(frozen=True)
class ThresholdRecommendation:
    """Suggested similarity thresholds for one dataset/length regime."""

    length: int
    samples: int
    quantiles: tuple[float, ...]
    thresholds: tuple[float, ...]
    mean_distance: float
    std_distance: float

    @property
    def default(self) -> float:
        """The recommended starting point (5% quantile when available)."""
        if 0.05 in self.quantiles:
            return self.thresholds[self.quantiles.index(0.05)]
        return self.thresholds[0]

    def as_dict(self) -> dict:
        return {
            "length": self.length,
            "samples": self.samples,
            "suggestions": {
                f"{int(q * 100)}%": t
                for q, t in zip(self.quantiles, self.thresholds)
            },
            "mean_distance": self.mean_distance,
            "std_distance": self.std_distance,
            "default": self.default,
        }


def _base_value_source(dataset: TimeSeriesDataset, normalize: bool, base):
    """The base's normalised dataset when it can stand in for the slow path.

    Valid only when *base* indexes exactly this dataset object and was
    normalised the same way with the same bounds the standalone path would
    derive right now — then every window it serves is bitwise the window
    ``dataset.normalized()`` would produce.  Returns ``None`` otherwise
    (the caller falls back to materialising the windows itself).
    """
    if base is None or dataset is not getattr(base, "raw_dataset", None):
        return None
    if not base.is_built or normalize != base.config.normalize:
        return None
    if normalize and base.normalization_bounds != dataset.global_bounds():
        return None
    return base.dataset


class _WindowSampler:
    """Random access to every length-*n* window of a collection, by rank.

    Flat window index ``k`` (the rank in ``iter_subsequences`` order) maps
    to a (series, start) pair through the cumulative per-series window
    counts; the series values are stitched into one array once, so a batch
    of sampled windows resolves as a single strided gather — no window
    other than the sampled ones is ever materialised.
    """

    def __init__(self, source: TimeSeriesDataset, length: int) -> None:
        sizes = [len(s) for s in source]
        counts = np.array([max(0, size - length + 1) for size in sizes])
        self.total = int(counts.sum())
        self._win_offsets = np.concatenate([[0], np.cumsum(counts)])
        self._val_offsets = np.concatenate([[0], np.cumsum(sizes)])
        self._concat = np.concatenate([s.values for s in source])
        self._length = length

    def rows(self, idx: np.ndarray) -> np.ndarray:
        s_of = np.searchsorted(self._win_offsets, idx, side="right") - 1
        starts = self._val_offsets[s_of] + (idx - self._win_offsets[s_of])
        view = np.lib.stride_tricks.sliding_window_view(self._concat, self._length)
        return view[starts]


def recommend_thresholds(
    dataset: TimeSeriesDataset,
    length: int,
    *,
    samples: int = 2000,
    quantiles: tuple[float, ...] = _DEFAULT_QUANTILES,
    normalize: bool = True,
    seed: int = 0,
    base=None,
) -> ThresholdRecommendation:
    """Recommend similarity thresholds for windows of *length*.

    Samples up to *samples* random pairs of distinct length-*length*
    subsequences, computes their length-normalised L1 distances, and
    returns the requested distribution *quantiles* as candidate thresholds.
    *base* optionally supplies a built :class:`~repro.core.base.OnexBase`
    over the same collection whose normalised value store answers the
    sampling without re-normalising or materialising every window
    (bit-identical results; ignored when it cannot stand in).
    """
    length = as_int_arg(length, "length")
    samples = as_int_arg(samples, "samples")
    if length < 2:
        raise ValidationError(f"length must be >= 2, got {length}")
    if samples < 10:
        raise ValidationError(f"samples must be >= 10, got {samples}")
    if not quantiles or any(not 0.0 < q < 1.0 for q in quantiles):
        raise ValidationError("quantiles must lie strictly inside (0, 1)")

    source = _base_value_source(dataset, normalize, base)
    sampler = None
    if source is None:
        if normalize:
            dataset = dataset.normalized()
        matrix, refs = dataset.subsequence_matrix(length)
        n = len(refs)
    else:
        sampler = _WindowSampler(source, length)
        n = sampler.total
    if n < 2:
        raise DatasetError(
            f"need >= 2 subsequences of length {length} to sample distances"
        )

    rng = np.random.default_rng(seed)
    count = min(samples, n * (n - 1) // 2)
    left = rng.integers(0, n, size=count)
    right = rng.integers(0, n - 1, size=count)
    right = np.where(right >= left, right + 1, right)  # distinct partner
    with span("threshold.sample", pairs=int(count), length=length):
        if sampler is None:
            distances = np.abs(matrix[left] - matrix[right]).mean(axis=1)
        else:
            distances = np.abs(
                sampler.rows(left) - sampler.rows(right)
            ).mean(axis=1)
    _ANALYTICS_TOTAL.inc(op="thresholds")

    stats = RunningStats()
    stats.extend(distances)
    ordered = tuple(sorted(quantiles))
    values = tuple(float(v) for v in np.quantile(distances, ordered))
    return ThresholdRecommendation(
        length=length,
        samples=count,
        quantiles=ordered,
        thresholds=values,
        mean_distance=stats.mean,
        std_distance=stats.std,
    )
