"""Data-driven similarity-threshold recommendation (§3.3).

"Threshold recommendations help analysts to select appropriate parameter
settings in a data-driven fashion" — growth-rate percentages need tiny
thresholds while unemployment counts need huge ones.  ONEX recommends
thresholds by sampling the distribution of pairwise subsequence distances
in the (normalised) collection and reporting low quantiles: a threshold at
the q-th quantile makes roughly a q fraction of random subsequence pairs
"similar", which is the operational meaning analysts care about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TimeSeriesDataset
from repro.distances.normalize import RunningStats
from repro.exceptions import DatasetError, ValidationError

__all__ = ["ThresholdRecommendation", "recommend_thresholds"]

#: Quantiles reported as candidate similarity thresholds, tightest first.
_DEFAULT_QUANTILES = (0.01, 0.05, 0.10, 0.25)


@dataclass(frozen=True)
class ThresholdRecommendation:
    """Suggested similarity thresholds for one dataset/length regime."""

    length: int
    samples: int
    quantiles: tuple[float, ...]
    thresholds: tuple[float, ...]
    mean_distance: float
    std_distance: float

    @property
    def default(self) -> float:
        """The recommended starting point (5% quantile when available)."""
        if 0.05 in self.quantiles:
            return self.thresholds[self.quantiles.index(0.05)]
        return self.thresholds[0]

    def as_dict(self) -> dict:
        return {
            "length": self.length,
            "samples": self.samples,
            "suggestions": {
                f"{int(q * 100)}%": t
                for q, t in zip(self.quantiles, self.thresholds)
            },
            "mean_distance": self.mean_distance,
            "std_distance": self.std_distance,
            "default": self.default,
        }


def recommend_thresholds(
    dataset: TimeSeriesDataset,
    length: int,
    *,
    samples: int = 2000,
    quantiles: tuple[float, ...] = _DEFAULT_QUANTILES,
    normalize: bool = True,
    seed: int = 0,
) -> ThresholdRecommendation:
    """Recommend similarity thresholds for windows of *length*.

    Samples up to *samples* random pairs of distinct length-*length*
    subsequences, computes their length-normalised L1 distances, and
    returns the requested distribution *quantiles* as candidate thresholds.
    """
    if length < 2:
        raise ValidationError(f"length must be >= 2, got {length}")
    if samples < 10:
        raise ValidationError(f"samples must be >= 10, got {samples}")
    if not quantiles or any(not 0.0 < q < 1.0 for q in quantiles):
        raise ValidationError("quantiles must lie strictly inside (0, 1)")

    if normalize:
        dataset = dataset.normalized()
    matrix, refs = dataset.subsequence_matrix(length)
    if len(refs) < 2:
        raise DatasetError(
            f"need >= 2 subsequences of length {length} to sample distances"
        )

    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    count = min(samples, n * (n - 1) // 2)
    left = rng.integers(0, n, size=count)
    right = rng.integers(0, n - 1, size=count)
    right = np.where(right >= left, right + 1, right)  # distinct partner
    distances = np.abs(matrix[left] - matrix[right]).mean(axis=1)

    stats = RunningStats()
    stats.extend(distances)
    ordered = tuple(sorted(quantiles))
    values = tuple(float(v) for v in np.quantile(distances, ordered))
    return ThresholdRecommendation(
        length=length,
        samples=count,
        quantiles=ordered,
        thresholds=values,
        mean_distance=stats.mean,
        std_distance=stats.std,
    )
