"""Raw, mmap-able on-disk layout of a built ONEX base.

The ``.npz`` archive (:meth:`OnexBase.save`) is compact but *copies* on
load: every array is decompressed into fresh private pages per process.
The worker pool needs the opposite trade — N processes serving the same
base should share one page-cache copy of the big stacks.  This module
persists a base as a **directory of raw ``.npy`` files plus one
``meta.json``**, so ``np.load(..., mmap_mode="r")`` maps each array
directly:

- cold start is an ``mmap(2)`` per array — no decompression, no copy;
- every worker's member/centroid/summary stacks are views over the same
  physical pages (the kernel shares the page cache across processes);
- the mapping is write-protected, so an accidental in-place mutation in
  a worker raises instead of corrupting sibling processes.

Layout of one snapshot directory::

    meta.json                   config, stats, dataset names/metadata,
                                fingerprints, per-length radii
    raw_<i>.npy                 raw series values, one file per series
    norm_<i>.npy                normalised values (only when the base
                                normalises; else raw_<i> is shared)
    len<L>_centroids.npy        stacked group representatives
    len<L>_ed_radii.npy         per-group ED_n radii
    len<L>_cheb_radii.npy       per-group Chebyshev radii
    len<L>_members.npy          (M, 2) int64 member handles
    len<L>_offsets.npy          (G+1,) int64 group row offsets
    len<L>_member_matrix.npy    stacked member values, group-contiguous
    len<L>_rep_env_lo.npy       persisted representative summaries
    len<L>_rep_env_hi.npy
    len<L>_rep_endpoints.npy
    len<L>_rep_minmax.npy

Snapshots are written to a ``<dir>.tmp`` sibling and ``os.replace``\\ d
into place, so a crash mid-write never publishes a half-written
directory; :func:`clean_stale_snapshots` sweeps leftover ``*.tmp``
debris (and superseded epochs) at supervisor start.

Loading with ``mmap_mode="r"`` produces a **read-only** base: the
mutation paths (:meth:`OnexBase.add_series`, streaming ingestion) raise
:class:`~repro.exceptions.ReadOnlyBaseError`.  The attach path copies
nothing — buckets and summaries adopt the mapped arrays via
``LengthBucket.attached`` / ``RepresentativeSummary.attached``, and the
dataset wraps them through ``TimeSeries._wrap``.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.core import persist
from repro.core.base import (
    BaseStats,
    LengthBucket,
    LengthBuildStats,
    OnexBase,
    RepresentativeSummary,
)
from repro.core.config import BuildConfig
from repro.core.grouping import SimilarityGroup
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.exceptions import PersistenceError
from repro.obs.logs import get_logger, log_event

__all__ = [
    "SNAPSHOT_FORMAT",
    "clean_stale_snapshots",
    "load_base_snapshot",
    "save_base_snapshot",
]

_LOG = get_logger("mmap")

#: Version tag written into ``meta.json`` and checked on load.
SNAPSHOT_FORMAT = 1


def _write_array(directory: Path, name: str, array: np.ndarray) -> None:
    np.save(directory / f"{name}.npy", np.ascontiguousarray(array))


def save_base_snapshot(base: OnexBase, directory: str | Path) -> Path:
    """Persist *base* (and its dataset) as an mmap-able snapshot directory.

    Written atomically: everything lands in ``<directory>.tmp`` first and
    is renamed into place, so *directory* either does not exist or holds
    a complete snapshot.  *directory* must not already exist (publishers
    use a fresh epoch directory per publication).  Returns the final
    path.
    """
    final = Path(directory)
    if final.exists():
        raise PersistenceError(f"snapshot directory {final} already exists")
    base._require_built()
    tmp = final.with_name(final.name + ".tmp")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        raw = base.raw_dataset
        norm = base.dataset
        normalized_stored = norm is not raw
        for i, series in enumerate(raw):
            _write_array(tmp, f"raw_{i}", series.values)
        if normalized_stored:
            for i, series in enumerate(norm):
                _write_array(tmp, f"norm_{i}", series.values)
        rep_radius: dict[str, int] = {}
        for length in base.lengths:
            bucket = base.bucket(length)
            prefix = f"len{length}"
            _write_array(tmp, f"{prefix}_centroids", bucket.centroids)
            _write_array(tmp, f"{prefix}_ed_radii", bucket.ed_radii)
            _write_array(tmp, f"{prefix}_cheb_radii", bucket.cheb_radii)
            members = np.array(
                [
                    (m.series_index, m.start)
                    for g in bucket.groups
                    for m in g.members
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
            _write_array(tmp, f"{prefix}_members", members)
            _write_array(tmp, f"{prefix}_offsets", bucket.member_offsets)
            _write_array(
                tmp,
                f"{prefix}_member_matrix",
                bucket.stacked_member_matrix(norm),
            )
            summary = bucket.rep_summary
            _write_array(tmp, f"{prefix}_rep_env_lo", summary.env_lo)
            _write_array(tmp, f"{prefix}_rep_env_hi", summary.env_hi)
            _write_array(tmp, f"{prefix}_rep_endpoints", summary.endpoints)
            _write_array(tmp, f"{prefix}_rep_minmax", summary.minmax)
            rep_radius[str(length)] = summary.radius
        stats = base.stats
        meta = {
            "format": SNAPSHOT_FORMAT,
            "config": {
                "similarity_threshold": base.config.similarity_threshold,
                "min_length": base.config.min_length,
                "max_length": base.config.max_length,
                "step": base.config.step,
                "normalize": base.config.normalize,
            },
            "stats": {
                "subsequences": stats.subsequences,
                "groups": stats.groups,
                "lengths": stats.lengths,
                "build_seconds": stats.build_seconds,
                "per_length": [s.as_dict() for s in stats.per_length],
            },
            "dataset": {
                "name": raw.name,
                "series": [
                    {"name": s.name, "metadata": dict(s.metadata)} for s in raw
                ],
            },
            "channels": base.channels,
            "norm_bounds": (
                list(base.normalization_bounds)
                if base.normalization_bounds is not None
                else None
            ),
            "normalized_stored": normalized_stored,
            "lengths": list(base.lengths),
            "rep_radius": rep_radius,
            "structure_fingerprint": base.structure_fingerprint(),
        }
        with open(tmp / "meta.json", "w") as fh:
            json.dump(meta, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    persist.fsync_dir(final.parent)
    return final


def _load_array(
    directory: Path, name: str, mmap_mode: str | None
) -> np.ndarray:
    path = directory / f"{name}.npy"
    try:
        return np.load(path, mmap_mode=mmap_mode, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise PersistenceError(
            f"snapshot array {path} is missing or unreadable: {exc}"
        ) from exc


def load_base_snapshot(
    directory: str | Path,
    mmap_mode: str | None = "r",
    *,
    verify: bool = False,
) -> tuple[OnexBase, dict]:
    """Open a snapshot directory; returns ``(base, meta)``.

    With the default ``mmap_mode="r"`` every array is a write-protected
    memory map and the base is **read-only** (mutations raise); pass
    ``mmap_mode=None`` to materialise private writable copies instead.
    *verify* recomputes the structure fingerprint against the stored one
    — it touches every page, so it is off by default (cold start stays
    an mmap) and turned on by tests and offline integrity checks.
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, ValueError) as exc:
        raise PersistenceError(
            f"snapshot meta {meta_path} is missing or unreadable: {exc}"
        ) from exc
    if meta.get("format") != SNAPSHOT_FORMAT:
        raise PersistenceError(
            f"snapshot {directory} has format {meta.get('format')!r}, "
            f"expected {SNAPSHOT_FORMAT}"
        )
    ds_meta = meta["dataset"]
    raw_series = [
        TimeSeries._wrap(
            entry["name"],
            _load_array(directory, f"raw_{i}", mmap_mode),
            entry.get("metadata") or {},
        )
        for i, entry in enumerate(ds_meta["series"])
    ]
    raw_dataset = TimeSeriesDataset(raw_series, name=ds_meta["name"])
    if meta["normalized_stored"]:
        norm_series = [
            TimeSeries._wrap(
                entry["name"],
                _load_array(directory, f"norm_{i}", mmap_mode),
                entry.get("metadata") or {},
            )
            for i, entry in enumerate(ds_meta["series"])
        ]
        norm_dataset = TimeSeriesDataset(norm_series, name=ds_meta["name"])
    else:
        norm_dataset = raw_dataset
    channels = int(meta.get("channels", 1))
    buckets: dict[int, LengthBucket] = {}
    for length in meta["lengths"]:
        length = int(length)
        prefix = f"len{length}"
        centroids = _load_array(directory, f"{prefix}_centroids", mmap_mode)
        ed_radii = _load_array(directory, f"{prefix}_ed_radii", mmap_mode)
        cheb_radii = _load_array(directory, f"{prefix}_cheb_radii", mmap_mode)
        # Handles and offsets are small and drive python-level group
        # reconstruction anyway — materialise them outright.
        members = np.asarray(_load_array(directory, f"{prefix}_members", None))
        offsets = np.asarray(
            _load_array(directory, f"{prefix}_offsets", None)
        ).tolist()
        groups = []
        for g in range(len(offsets) - 1):
            chunk = members[offsets[g] : offsets[g + 1]]
            refs = tuple(
                SubsequenceRef(int(si), int(st), length) for si, st in chunk
            )
            groups.append(
                SimilarityGroup(
                    length=length,
                    centroid=centroids[g],
                    members=refs,
                    ed_radius=float(ed_radii[g]),
                    cheb_radius=float(cheb_radii[g]),
                )
            )
        bucket = LengthBucket.attached(
            length,
            groups,
            _load_array(directory, f"{prefix}_member_matrix", mmap_mode),
            centroids,
            ed_radii,
            cheb_radii,
            channels=channels,
        )
        bucket.attach_rep_summary(
            RepresentativeSummary.attached(
                length,
                int(meta["rep_radius"][str(length)]),
                _load_array(directory, f"{prefix}_rep_env_lo", mmap_mode),
                _load_array(directory, f"{prefix}_rep_env_hi", mmap_mode),
                _load_array(directory, f"{prefix}_rep_endpoints", mmap_mode),
                _load_array(directory, f"{prefix}_rep_minmax", mmap_mode),
            )
        )
        buckets[length] = bucket
    stats_meta = meta["stats"]
    stats = BaseStats(
        subsequences=stats_meta["subsequences"],
        groups=stats_meta["groups"],
        lengths=stats_meta["lengths"],
        build_seconds=stats_meta["build_seconds"],
        per_length=tuple(
            LengthBuildStats(**entry)
            for entry in stats_meta.get("per_length", ())
        ),
    )
    norm_bounds = meta.get("norm_bounds")
    base = OnexBase.from_attached(
        raw_dataset,
        norm_dataset,
        BuildConfig(**meta["config"]),
        tuple(norm_bounds) if norm_bounds is not None else None,
        buckets,
        stats,
        read_only=(mmap_mode == "r"),
    )
    if verify:
        actual = base.structure_fingerprint()
        if actual != meta["structure_fingerprint"]:
            raise PersistenceError(
                f"snapshot {directory} failed its structure fingerprint "
                "(truncated or tampered with)"
            )
    return base, meta


def clean_stale_snapshots(root: str | Path, *, keep_latest: int = 1) -> list[str]:
    """Sweep debris under snapshot root *root*; returns removed paths.

    Removes every ``*.tmp`` directory (a publish that crashed mid-write)
    and, per dataset directory, every ``epoch-<n>`` but the newest
    *keep_latest* — the shared-memory leftovers of a previous crashed
    run that nothing will ever map again.  Missing *root* is a no-op.
    """
    root = Path(root)
    removed: list[str] = []
    if not root.is_dir():
        return removed
    for dataset_dir in sorted(root.iterdir()):
        if not dataset_dir.is_dir():
            continue
        if dataset_dir.name.endswith(".tmp"):
            shutil.rmtree(dataset_dir, ignore_errors=True)
            removed.append(str(dataset_dir))
            continue
        epochs = []
        for entry in sorted(dataset_dir.iterdir()):
            if not entry.is_dir():
                continue
            if entry.name.endswith(".tmp"):
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(str(entry))
            elif entry.name.startswith("epoch-"):
                try:
                    epochs.append((int(entry.name[len("epoch-") :]), entry))
                except ValueError:
                    continue
        epochs.sort()
        for _, entry in epochs[: max(0, len(epochs) - keep_latest)]:
            shutil.rmtree(entry, ignore_errors=True)
            removed.append(str(entry))
    if removed:
        log_event(_LOG, "info", "snapshot.cleaned", removed=len(removed))
    return removed
